#!/usr/bin/env python3
"""Operational use of the inferred map: facility outage blast radius.

One of the paper's motivations is resilience assessment — knowing which
interconnections share a building tells you what a facility outage (or a
natural disaster hitting a metro) takes down.  This example runs CFS,
picks the facility carrying the most *inferred* interconnections, and
reports the affected networks and links — then checks the prediction
against ground truth.

Usage::

    python examples/facility_outage.py [--seed N] [--metro NAME]
"""

from __future__ import annotations

import argparse

from repro.api import CriticalityIndex
from repro.api import build_environment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=23, help="master seed")
    parser.add_argument(
        "--metro",
        default=None,
        help="restrict the outage candidate to this metro",
    )
    args = parser.parse_args()

    env = build_environment(seed=args.seed, scale="small")
    topology = env.topology
    print("running campaign + CFS ...")
    corpus = env.run_campaign()
    result = env.run_cfs(corpus)

    index = CriticalityIndex(result, env.facility_db)
    ranked = [
        row
        for row in index.ranked()
        if args.metro is None or row.metro == args.metro
    ]
    if not ranked:
        raise SystemExit("no facility inferences matched the filter")

    top = ranked[0]
    facility_id = top.facility_id
    facility = topology.facilities[facility_id]
    print(
        f"\nhighest-load facility: {facility.name} ({facility.metro}) "
        f"with {top.link_endpoints} inferred link endpoints"
    )

    radius = index.blast_radius({facility_id})
    affected_asns = radius.asns_affected
    print(f"networks with interconnections there: {len(affected_asns)}")
    print("affected link types:")
    for name, count in sorted(
        radius.types_affected.items(), key=lambda item: -item[1]
    ):
        print(f"  {name:>15}: {count}")
    exchanges = [
        topology.ixps[ixp_id].name
        for ixp_id in facility.ixp_ids
    ]
    if exchanges:
        print(f"exchange switches in the building: {', '.join(exchanges)}")

    # Omniscient check: how much of the true blast radius did we find?
    truly_affected = {
        asn
        for link in topology.interconnections.values()
        for asn in (link.asn_a, link.asn_b)
        if facility_id in (link.facility_a, link.facility_b)
    }
    found = len(affected_asns & truly_affected)
    print(
        f"\nground truth: {len(truly_affected)} networks actually terminate "
        f"links there; the inferred map identified {found} of them "
        f"({found / len(truly_affected):.0%})"
    )


if __name__ == "__main__":
    main()
