#!/usr/bin/env python3
"""Scored facility-outage experiment over the temporal map service.

One of the paper's motivations is resilience assessment — knowing
which interconnections share a building tells you what a facility
outage takes down.  This example makes that operational end to end: it
picks the facility carrying the most ground-truth interconnection
endpoints, injects a power loss there into a hand-built churn plan,
streams the churned epochs through :class:`MapService`, and scores the
disruption detector's alarm log against the injected event — detection
latency in epochs, localisation, and the clear after power returns.

Usage::

    python examples/facility_outage.py [--seed N] [--epochs N]
"""

from __future__ import annotations

import argparse

from repro.api import (
    ChurnConfig,
    ChurnEvent,
    ChurnPlan,
    MapService,
    PipelineConfig,
    apply_events,
)
from repro.serve.outage import score_detection
from repro.topology.churn import FACILITY_POWER_LOSS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=23, help="master seed")
    parser.add_argument(
        "--epochs", type=int, default=8, help="stream length in epochs"
    )
    args = parser.parse_args()
    if args.epochs < 6:
        raise SystemExit("need at least 6 epochs: outage at 3, recovery after")

    config = PipelineConfig.for_scale("small", seed=args.seed)
    service = MapService(config, progress=print)
    topology = service.environment.topology

    # The outage target: the facility with the most ground-truth
    # interconnection endpoints — the building whose loss hurts most.
    counts: dict[int, int] = {}
    for link in topology.interconnections.values():
        for facility in (link.facility_a, link.facility_b):
            if facility is not None:
                counts[facility] = counts.get(facility, 0) + 1
    target = max(sorted(counts), key=lambda f: counts[f])
    facility = topology.facilities[target]
    print(
        f"target: {facility.name} ({facility.metro}) — "
        f"{counts[target]} ground-truth link endpoints"
    )

    # A hand-built plan: one power loss, epochs 3-4, nothing else.
    events = (
        ChurnEvent(
            kind=FACILITY_POWER_LOSS, epoch=3, duration=2, facility_id=target
        ),
    )
    views = tuple(
        apply_events(topology, events, epoch) for epoch in range(args.epochs)
    )
    plan = ChurnPlan(
        seed=args.seed,
        epochs=args.epochs,
        config=ChurnConfig.zero(),
        events=events,
        views=views,
    )

    print(f"\nstreaming {args.epochs} churned epochs ...")
    service.run_stream(args.epochs, churn=plan)
    assert service.detector is not None

    print("\ndetector log:")
    for report in service.detector.reports:
        print(
            f"  epoch {report.epoch}: {report.kind} facility "
            f"{report.facility_id} (score {report.score:.2f}, "
            f"baseline {report.baseline}, observed {report.observed})"
        )
    if not service.detector.reports:
        print("  (empty)")

    scores = score_detection(plan, service.detector.reports, grace=3)
    detected = scores["detected"] == scores["power_losses"] == 1
    localized = all(
        r.facility_id == target for r in service.detector.reports
    )
    print(
        f"\nscore: detected {scores['detected']}/{scores['power_losses']} "
        f"injected power losses, {scores['false_alarms']} false alarms, "
        f"latency {scores['mean_latency']} epochs, "
        f"{scores['clears']} clears"
    )
    if detected and localized and scores["false_alarms"] == 0:
        print("outage detected, localized, and cleared — experiment passed")
    else:
        raise SystemExit("experiment failed: see detector log above")


if __name__ == "__main__":
    main()
