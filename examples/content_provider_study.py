#!/usr/bin/env python3
"""Peering-engineering study of a content provider (the Figure 10 cut).

The paper's motivating scenario: where, and by which technical approach,
does a large CDN interconnect?  This example targets the biggest content
network of the generated Internet, maps its interconnections with CFS,
and prints the public/private mix per region plus the multi-role router
findings of Section 5.

Usage::

    python examples/content_provider_study.py [--seed N]
"""

from __future__ import annotations

import argparse
from collections import Counter

from repro.api import build_environment
from repro.api import PeeringKind
from repro.api import run_fig10, run_multirole_census
from repro.api import ASRole


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=11, help="master seed")
    args = parser.parse_args()

    env = build_environment(seed=args.seed, scale="small")
    topology = env.topology
    cdn_asn = next(
        asn
        for asn in env.target_asns
        if topology.ases[asn].role is ASRole.CONTENT
    )
    cdn = topology.ases[cdn_asn]
    print(f"study target: {cdn.name} (AS{cdn.asn})")
    print(
        f"ground truth footprint: {len(cdn.facility_ids)} facilities, "
        f"{len(cdn.ixp_ids)} local + {len(cdn.remote_ixp_ids)} remote IXPs"
    )

    print("\nrunning campaign + CFS ...")
    corpus = env.run_campaign()
    result = env.run_cfs(corpus)

    fig10 = run_fig10(env, result)
    print("\npeering interfaces by inferred engineering type:")
    for region in ("total", "Europe", "North America", "Asia"):
        row = fig10.row(cdn_asn, region)
        if row is None or row.total == 0:
            continue
        mix = ", ".join(
            f"{name}={count}" for name, count in sorted(row.counts.items())
        )
        print(f"  {region:>14}: {row.total:3d}  ({mix})")
    total_row = fig10.row(cdn_asn, "total")
    if total_row is not None and total_row.total:
        print(f"  public-fabric share: {total_row.public_fraction:.1%}")

    print("\nexchanges carrying the CDN's public peerings:")
    per_ixp = Counter(
        link.ixp_id
        for link in result.links
        if link.kind is PeeringKind.PUBLIC and cdn_asn in (link.near_asn, link.far_asn)
    )
    for ixp_id, sessions in per_ixp.most_common(6):
        print(f"  {topology.ixps[ixp_id].name:>22}: {sessions} sessions observed")

    census = run_multirole_census(env, result)
    print(f"\n{census.format()}")


if __name__ == "__main__":
    main()
