#!/usr/bin/env python3
"""Quickstart: run Constrained Facility Search end to end.

Builds a small synthetic Internet, runs the measurement campaign of the
paper's Section 5 toward the content/transit study targets, executes the
CFS loop, and prints what it inferred — with an omniscient accuracy
check the real paper could only approximate through operator feedback.

Usage::

    python examples/quickstart.py [--seed N]
"""

from __future__ import annotations

import argparse

from repro.api import run_pipeline
from repro.api import InterfaceStatus
from repro.api import int_to_ip
from repro.api import score_interfaces


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7, help="master seed")
    args = parser.parse_args()

    print("Building the environment and running the study campaign...")
    result = run_pipeline(seed=args.seed, scale="small")
    cfs = result.cfs_result
    env = result.environment
    topology = env.topology

    print(f"\ntopology: {topology.summary()}")
    print(f"targets: {[topology.ases[a].name for a in env.target_asns]}")
    print(f"traceroutes collected: {len(result.corpus)}")
    print(
        f"peering interfaces seen: {cfs.peering_interfaces_seen}, "
        f"CFS iterations: {cfs.iterations_run}, "
        f"follow-up traces: {cfs.followup_traces}"
    )
    print(f"resolved to a single facility: {cfs.resolved_fraction():.1%}")
    for status in InterfaceStatus:
        print(f"  {status.value:>18}: {len(cfs.states_with_status(status))}")

    report = score_interfaces(topology, cfs)
    print(
        f"\nomniscient check - facility accuracy: "
        f"{report.facility_accuracy:.1%}, city accuracy: {report.city_accuracy:.1%}"
    )

    print("\nSample inferences (interface -> facility, vs ground truth):")
    shown = 0
    for address, facility in sorted(cfs.resolved_interfaces().items()):
        if address not in topology.interfaces:
            continue
        truth = topology.true_facility_of_address(address)
        mark = "OK " if facility == truth else "MISS"
        state = cfs.interfaces[address]
        print(
            f"  [{mark}] {int_to_ip(address):>15}  AS{state.owner_asn:<6} "
            f"-> {topology.facilities[facility].name}"
            f"  ({state.inferred_type.value})"
        )
        shown += 1
        if shown >= 12:
            break


if __name__ == "__main__":
    main()
