#!/usr/bin/env python3
"""Remote-peering audit of an exchange (Castro et al. via CFS Step 2).

About 20% of AMS-IX members peered remotely in 2013, reaching the fabric
through resellers instead of colocating — invisible on the member list,
but visible to the delay test.  This example runs CFS, flags remote
members at the busiest exchange, and grades the verdicts against the
exchange's (detailed) member records.

Usage::

    python examples/remote_peering_audit.py [--seed N]
"""

from __future__ import annotations

import argparse

from repro.api import build_environment
from repro.api import int_to_ip


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=31, help="master seed")
    args = parser.parse_args()

    env = build_environment(seed=args.seed, scale="small")
    topology = env.topology
    print("running campaign + CFS ...")
    corpus = env.run_campaign()
    result = env.run_cfs(corpus)

    # Busiest exchange by observed ports.
    ports_seen: dict[int, list[int]] = {}
    for address, state in result.interfaces.items():
        ixp_id = env.facility_db.ixp_of_address(address)
        if ixp_id is not None:
            ports_seen.setdefault(ixp_id, []).append(address)
    ixp_id = max(ports_seen, key=lambda i: len(ports_seen[i]))
    ixp = topology.ixps[ixp_id]
    print(f"\nauditing {ixp.name}: {len(ports_seen[ixp_id])} member ports observed")

    flagged = []
    for address in sorted(ports_seen[ixp_id]):
        state = result.interfaces[address]
        if state.remote:
            flagged.append((address, state))
    print(f"remote-peering verdicts: {len(flagged)}")
    for address, state in flagged[:10]:
        owner = state.owner_asn
        name = topology.ases[owner].name if owner in topology.ases else "?"
        print(f"  {int_to_ip(address):>15}  AS{owner} ({name})")

    # Grade against ground truth membership records.
    correct = 0
    for address, state in flagged:
        member_asn = topology.true_asn_of_address(address)
        if ixp.is_remote_member(member_asn):
            correct += 1
    truly_remote = {
        port.address
        for ports in ixp.member_ports.values()
        for port in ports
        if port.is_remote and port.address in set(ports_seen[ixp_id])
    }
    print(
        f"\nprecision: {correct}/{len(flagged) or 1} flagged verdicts correct; "
        f"recall: {len(truly_remote & {a for a, _ in flagged})}"
        f"/{len(truly_remote)} observed remote ports caught"
    )
    print(
        f"(exchange ground truth: {len(ixp.remote_member_asns())} of "
        f"{len(ixp.member_asns)} members connect through resellers)"
    )


if __name__ == "__main__":
    main()
