"""Behavioural tests for ``supervised_map``: crashes, hangs, quarantine.

The worker functions are module-level (the fork path references them
from children) and *pid-guarded*: they only misbehave when running in a
forked child, so the parent's serial and quarantine paths always
compute the real result.  Marker files under a per-test directory make
"fail once, then succeed" workers, which is exactly the shape a
retry-on-rebuilt-pool supervisor must recover from.
"""

from __future__ import annotations

import os

import pytest

from repro.exec import (
    ExecFaultSpec,
    FALLBACK_REASONS,
    ShardExecutionError,
    SupervisorConfig,
    fork_available,
    parallel_map,
    supervised_map,
)
from repro.exec import supervise as supervise_module

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform cannot fork worker processes"
)


def _double(context, payload):
    return payload * 2


def _crash_in_child(context, payload):
    # context carries the parent pid: children die, the parent computes.
    if os.getpid() != context:
        os._exit(113)
    return payload * 2


def _crash_once(context, payload):
    value, marker_dir = payload
    marker = os.path.join(marker_dir, f"crashed-{value}")
    if os.getpid() != context["parent"] and not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8"):
            pass
        os._exit(113)
    return value * 2


def _hang_once(context, payload):
    value, marker_dir = payload
    marker = os.path.join(marker_dir, f"hung-{value}")
    if (
        value % 2 == 0
        and os.getpid() != context["parent"]
        and not os.path.exists(marker)
    ):
        with open(marker, "w", encoding="utf-8"):
            pass
        import time

        time.sleep(60.0)
    return value * 2


def _boom(context, payload):
    if payload == 2:
        raise ValueError("payload two is cursed")
    return payload


class TestConfigValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="shard_timeout_s"):
            SupervisorConfig(shard_timeout_s=0)
        with pytest.raises(ValueError, match="max_retries"):
            SupervisorConfig(max_retries=-1)
        with pytest.raises(ValueError, match="max_pool_rebuilds"):
            SupervisorConfig(max_pool_rebuilds=-1)
        with pytest.raises(ValueError, match="crash"):
            ExecFaultSpec(crash=1.5)
        with pytest.raises(ValueError, match="hang_s"):
            ExecFaultSpec(hang_s=0)
        assert ExecFaultSpec().is_zero
        assert not ExecFaultSpec(crash=0.1).is_zero

    def test_fallback_vocabulary_is_closed(self):
        assert FALLBACK_REASONS == (
            "too_few_payloads",
            "no_fork",
            "pool_unavailable",
        )


class TestSerialPaths:
    def test_workers_one_matches_plain_map(self):
        result = supervised_map(_double, [1, 2, 3], workers=1)
        assert result == [2, 4, 6]

    def test_too_few_payloads_reports_fallback(self):
        reasons = []
        result = supervised_map(
            _double, [7], workers=4, fallback=reasons.append
        )
        assert result == [14]
        assert reasons == ["too_few_payloads"]
        assert all(reason in FALLBACK_REASONS for reason in reasons)


@needs_fork
class TestCrashRecovery:
    def test_worker_exit_mid_shard_is_retried_then_succeeds(self, tmp_path):
        payloads = [(value, str(tmp_path)) for value in range(6)]
        incidents = []
        result = supervised_map(
            _crash_once,
            payloads,
            workers=3,
            context={"parent": os.getpid()},
            config=SupervisorConfig(max_retries=2),
            observer=lambda kind, index, reason: incidents.append(kind),
        )
        assert result == [value * 2 for value in range(6)]
        assert "retry" in incidents
        assert "rebuild" in incidents

    def test_persistent_crasher_is_quarantined_to_serial(self):
        incidents = []
        result = supervised_map(
            _crash_in_child,
            list(range(5)),
            workers=2,
            context=os.getpid(),
            config=SupervisorConfig(max_retries=1),
            observer=lambda kind, index, reason: incidents.append(
                (kind, reason)
            ),
        )
        assert result == [value * 2 for value in range(5)]
        kinds = [kind for kind, _ in incidents]
        assert "quarantine" in kinds
        assert all(
            reason == "crash" for kind, reason in incidents if kind != "rebuild"
        )

    def test_matches_serial_output_byte_for_byte(self):
        supervised = supervised_map(
            _crash_in_child,
            list(range(8)),
            workers=4,
            context=os.getpid(),
            config=SupervisorConfig(max_retries=0),
        )
        serial = [_crash_in_child(os.getpid(), value) for value in range(8)]
        assert supervised == serial


@needs_fork
class TestHangRecovery:
    def test_shard_exceeding_deadline_is_killed_and_retried(self, tmp_path):
        payloads = [(value, str(tmp_path)) for value in range(4)]
        incidents = []
        result = supervised_map(
            _hang_once,
            payloads,
            workers=2,
            context={"parent": os.getpid()},
            config=SupervisorConfig(shard_timeout_s=0.5, max_retries=3),
            observer=lambda kind, index, reason: incidents.append(
                (kind, reason)
            ),
        )
        assert result == [value * 2 for value in range(4)]
        assert ("retry", "hang") in incidents or (
            "quarantine",
            "hang",
        ) in incidents


@needs_fork
class TestPoolRebuildFailure:
    def test_failed_rebuild_falls_back_to_serial(self, monkeypatch):
        real_new_pool = supervise_module._new_pool
        built = []

        def flaky_new_pool(workers, payload_count):
            if built:
                raise OSError("no more pools")
            built.append(True)
            return real_new_pool(workers, payload_count)

        monkeypatch.setattr(supervise_module, "_new_pool", flaky_new_pool)
        reasons = []
        result = supervised_map(
            _crash_in_child,
            list(range(6)),
            workers=2,
            context=os.getpid(),
            config=SupervisorConfig(max_retries=5),
            fallback=reasons.append,
        )
        assert result == [value * 2 for value in range(6)]
        assert reasons == ["pool_unavailable"]

    def test_exhausted_rebuild_budget_falls_back_to_serial(self):
        reasons = []
        result = supervised_map(
            _crash_in_child,
            list(range(6)),
            workers=2,
            context=os.getpid(),
            config=SupervisorConfig(max_retries=10, max_pool_rebuilds=1),
            fallback=reasons.append,
        )
        assert result == [value * 2 for value in range(6)]
        assert reasons == ["pool_unavailable"]

    def test_initial_pool_failure_falls_back_to_serial(self, monkeypatch):
        def no_pool(workers, payload_count):
            raise OSError("pools are off today")

        monkeypatch.setattr(supervise_module, "_new_pool", no_pool)
        reasons = []
        result = supervised_map(
            _double, list(range(4)), workers=2, fallback=reasons.append
        )
        assert result == [0, 2, 4, 6]
        assert reasons == ["pool_unavailable"]


@needs_fork
class TestSeededFaults:
    def test_injected_crashes_preserve_output_identity(self):
        faults = ExecFaultSpec(crash=0.4, seed=7)
        supervised = supervised_map(
            _double,
            list(range(16)),
            workers=4,
            config=SupervisorConfig(max_retries=2),
            faults=faults,
        )
        assert supervised == [value * 2 for value in range(16)]

    def test_injected_hangs_preserve_output_identity(self):
        faults = ExecFaultSpec(hang=0.3, hang_s=30.0, seed=5)
        supervised = supervised_map(
            _double,
            list(range(8)),
            workers=4,
            config=SupervisorConfig(shard_timeout_s=0.5, max_retries=3),
            faults=faults,
        )
        assert supervised == [value * 2 for value in range(8)]


class TestGenuineExceptions:
    def test_fn_exception_names_index_and_shard(self):
        with pytest.raises(ShardExecutionError, match="index 2.*block #2"):
            supervised_map(
                _boom,
                list(range(4)),
                workers=1,
                describe=lambda payload: f"block #{payload}",
            )

    @needs_fork
    def test_fn_exception_in_worker_is_wrapped_not_retried(self):
        incidents = []
        with pytest.raises(ShardExecutionError) as excinfo:
            supervised_map(
                _boom,
                list(range(4)),
                workers=2,
                observer=lambda kind, index, reason: incidents.append(kind),
            )
        assert excinfo.value.index == 2
        assert isinstance(excinfo.value.__cause__, ValueError)
        assert incidents == []

    def test_parallel_map_wraps_worker_exceptions_too(self):
        with pytest.raises(ShardExecutionError, match="index 2.*shard 2"):
            parallel_map(
                _boom,
                list(range(4)),
                workers=1,
                describe=lambda payload: f"shard {payload}",
            )


class TestRetryAccounting:
    """Retries are charged per shard *attempt*, not per pool incident.

    A dead worker fails every in-flight future (``BrokenProcessPool``
    cannot say which shard was on the dead child), and the supervisor
    used to charge each of them a retry — one crash amplified into a
    retry per in-flight shard and a cascade of rebuilds (the benchmark
    once recorded ``shard_retries: 16, pool_rebuilds: 8`` for a single
    killed worker).  With seeded faults the culprit is predictable from
    the ``(seed, index, attempt)`` draw, so only it is charged.
    """

    # seed 10 with 6 payloads at crash=0.5: exactly shard 2 draws a
    # crash at attempt 0, and its attempt-1 re-roll is clean.
    ONE_CRASH = ExecFaultSpec(crash=0.5, seed=10)

    def test_draw_prediction_matches_scenario(self):
        draws = [
            supervise_module._draw_faults(self.ONE_CRASH, index, 0)
            for index in range(6)
        ]
        assert draws == [False, False, True, False, False, False]
        assert not supervise_module._draw_faults(self.ONE_CRASH, 2, 1)

    @needs_fork
    def test_one_crash_charges_one_retry(self):
        incidents = []
        results = supervised_map(
            _double,
            list(range(6)),
            workers=2,
            config=SupervisorConfig(max_retries=2),
            faults=self.ONE_CRASH,
            observer=lambda kind, index, reason: incidents.append(
                (kind, index, reason)
            ),
        )
        assert results == [value * 2 for value in range(6)]
        retries = [entry for entry in incidents if entry[0] == "retry"]
        rebuilds = [entry for entry in incidents if entry[0] == "rebuild"]
        quarantines = [
            entry for entry in incidents if entry[0] == "quarantine"
        ]
        assert retries == [("retry", 2, "crash")]
        assert len(rebuilds) == 1
        assert quarantines == []

    @needs_fork
    def test_bystanders_keep_their_attempt_budget(self):
        """Shards killed alongside the culprit still get their full
        retry budget later: max_retries=0 quarantines only the culprit,
        never the bystanders that happened to share the pool."""
        incidents = []
        results = supervised_map(
            _double,
            list(range(6)),
            workers=2,
            config=SupervisorConfig(max_retries=0),
            faults=self.ONE_CRASH,
            observer=lambda kind, index, reason: incidents.append(
                (kind, index)
            ),
        )
        assert results == [value * 2 for value in range(6)]
        assert ("quarantine", 2) in incidents
        assert not any(
            kind == "quarantine" and index != 2 for kind, index in incidents
        )
