"""Property tests: the shard-metrics merge is associative and
commutative, so any grouping of worker snapshots yields one result."""

from __future__ import annotations

from random import Random

from repro.obs import Instrumentation, MetricsSnapshot

COUNTER_NAMES = (
    "campaign.probe_sent",
    "campaign.probe_failed",
    "cfs.traces_parsed",
    "exec.extract.blocks",
)
STAGE_NAMES = ("campaign", "extract", "search")


def _random_snapshot(rng: Random) -> MetricsSnapshot:
    counters = {
        name: rng.randrange(0, 1_000_000)
        for name in COUNTER_NAMES
        if rng.random() < 0.8
    }
    stage_ns = {
        name: rng.randrange(0, 10**12)
        for name in STAGE_NAMES
        if rng.random() < 0.8
    }
    stage_calls = {name: rng.randrange(1, 50) for name in stage_ns}
    return MetricsSnapshot(
        counters=counters, stage_ns=stage_ns, stage_calls=stage_calls
    )


def _canonical(snapshot: MetricsSnapshot):
    return (
        dict(sorted(snapshot.counters.items())),
        dict(sorted(snapshot.stage_ns.items())),
        dict(sorted(snapshot.stage_calls.items())),
    )


class TestMergeAlgebra:
    def test_commutative_over_permutations(self):
        rng = Random(1234)
        for trial in range(25):
            snapshots = [_random_snapshot(rng) for _ in range(rng.randrange(2, 7))]
            reference = _canonical(MetricsSnapshot.merge_all(snapshots))
            for _ in range(5):
                shuffled = snapshots[:]
                rng.shuffle(shuffled)
                merged = MetricsSnapshot.merge_all(shuffled)
                assert _canonical(merged) == reference, trial

    def test_associative_over_groupings(self):
        rng = Random(99)
        for trial in range(25):
            snapshots = [_random_snapshot(rng) for _ in range(6)]
            flat = MetricsSnapshot.merge_all(snapshots)
            split = rng.randrange(1, 6)
            left = MetricsSnapshot.merge_all(snapshots[:split])
            right = MetricsSnapshot.merge_all(snapshots[split:])
            regrouped = MetricsSnapshot.merge_all([left, right])
            assert _canonical(regrouped) == _canonical(flat), trial

    def test_empty_merge_is_identity(self):
        empty = MetricsSnapshot.merge_all([])
        assert _canonical(empty) == ({}, {}, {})
        one = _random_snapshot(Random(7))
        assert _canonical(MetricsSnapshot.merge_all([one, empty])) == _canonical(one)

    def test_absorb_matches_merge(self):
        rng = Random(4242)
        snapshots = [_random_snapshot(rng) for _ in range(4)]
        instrumentation = Instrumentation()
        for snapshot in snapshots:
            instrumentation.absorb(snapshot)
        assert _canonical(instrumentation.snapshot()) == _canonical(
            MetricsSnapshot.merge_all(snapshots)
        )

    def test_counters_are_exact_integers(self):
        big = MetricsSnapshot(counters={"n": 2**62}, stage_ns={}, stage_calls={})
        merged = MetricsSnapshot.merge_all([big, big, big])
        assert merged.counters["n"] == 3 * 2**62  # no float rounding
