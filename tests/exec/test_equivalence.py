"""The parallel executor's hard requirement: ``workers=N`` output is
byte-identical to ``workers=1``.

The exported JSON is compared as text with only the ``metrics``
subtree removed — metrics carry wall-clock timings and ``exec.*``
bookkeeping counters that legitimately differ between widths.  Every
non-``exec.`` counter must still match exactly.
"""

from __future__ import annotations

import json

import pytest

from repro.api import run_pipeline
from repro.export import dumps_result
from repro.obs import Instrumentation

SEEDS = (0, 1, 2, 3, 4)


def _export_without_metrics(result) -> str:
    document = json.loads(
        dumps_result(result.cfs_result, result.environment.facility_db)
    )
    document.pop("metrics", None)
    return json.dumps(document, indent=2, sort_keys=True)


def _domain_counters(instrumentation: Instrumentation) -> dict[str, int]:
    return {
        name: value
        for name, value in instrumentation.snapshot().counters.items()
        if not name.startswith("exec.")
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_parallel_output_byte_identical(seed):
    serial_obs = Instrumentation()
    parallel_obs = Instrumentation()
    serial = run_pipeline(seed=seed, scale="small", workers=1,
                          instrumentation=serial_obs)
    parallel = run_pipeline(seed=seed, scale="small", workers=4,
                            instrumentation=parallel_obs)
    assert _export_without_metrics(parallel) == _export_without_metrics(
        serial
    ), f"workers=4 diverged from workers=1 at seed {seed}"
    # Identical bytes could mean the pool silently never engaged; the
    # shard counter proves the parallel run really took the forked path.
    assert parallel_obs.counter("exec.campaign.shards") > 0
    assert serial_obs.counter("exec.campaign.shards") == 0
    # Probe/parse/accounting counters (everything except the executor's
    # own bookkeeping) must agree exactly, not just the exported map.
    assert _domain_counters(parallel_obs) == _domain_counters(serial_obs)
