"""Unit tests for the shard planner and named RNG substreams."""

from __future__ import annotations

import pytest

from repro.exec import plan_blocks, plan_shards, stable_key, substream


class TestStableKey:
    def test_fixed_by_bytes_alone(self):
        # CRC-32 of the UTF-8 bytes: pinned values guard against any
        # accidental switch to the hash-randomised builtin ``hash()``.
        assert stable_key("") == 0
        assert stable_key("ripe-atlas:vp-001") == stable_key("ripe-atlas:vp-001")
        assert stable_key("a") != stable_key("b")

    def test_substream_is_named_not_sequential(self):
        # The same name always yields the same stream, independent of
        # how many other streams were drawn before it.
        first = substream("trace", 0, "vp-1", 167837954, 0).random()
        substream("other", 1).random()  # unrelated draw in between
        again = substream("trace", 0, "vp-1", 167837954, 0).random()
        assert first == again
        assert substream("trace", 0, "vp-1", 167837954, 1).random() != first


class TestPlanShards:
    def test_preserves_order_and_indices(self):
        items = [f"item-{i}" for i in range(40)]
        shards = plan_shards(items, 4, key=lambda item: item)
        covered = {}
        for shard in shards:
            assert list(shard.item_indices) == sorted(shard.item_indices)
            for position, item in zip(shard.item_indices, shard.items):
                covered[position] = item
        assert covered == {i: items[i] for i in range(40)}

    def test_equal_keys_share_a_shard(self):
        items = list(range(20))
        shards = plan_shards(items, 5, key=lambda item: f"vp-{item % 3}")
        shard_of_key: dict[int, int] = {}
        for shard in shards:
            for item in shard.items:
                # All items with one key land in exactly one shard
                # (shards may host several keys; keys never split).
                assert shard_of_key.setdefault(item % 3, shard.index) == shard.index

    def test_assignment_independent_of_item_order(self):
        items = [f"k{i}" for i in range(30)]
        forward = plan_shards(items, 4, key=str)
        reverse = plan_shards(list(reversed(items)), 4, key=str)
        by_key_fwd = {
            item: shard.index for shard in forward for item in shard.items
        }
        # Shard *membership* is a pure function of the key; only the
        # positional bookkeeping follows the input order.
        groups_fwd = {
            frozenset(shard.items) for shard in forward
        }
        groups_rev = {
            frozenset(shard.items) for shard in reverse
        }
        assert groups_fwd == groups_rev
        assert len(by_key_fwd) == 30

    def test_empty_shards_dropped_and_reindexed(self):
        shards = plan_shards(["a", "b"], 16, key=str)
        assert [shard.index for shard in shards] == list(range(len(shards)))
        assert 1 <= len(shards) <= 2

    def test_single_shard_is_identity(self):
        items = ["x", "y", "z"]
        (shard,) = plan_shards(items, 1, key=str)
        assert shard.items == ("x", "y", "z")
        assert shard.item_indices == (0, 1, 2)

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError, match="at least 1"):
            plan_shards(["a"], 0, key=str)


class TestPlanBlocks:
    def test_covers_every_index_once_in_order(self):
        for total in (1, 2, 7, 64, 100):
            for shards in (1, 2, 3, 8, 200):
                blocks = plan_blocks(total, shards)
                flat = [i for start, stop in blocks for i in range(start, stop)]
                assert flat == list(range(total)), (total, shards)

    def test_sizes_differ_by_at_most_one(self):
        blocks = plan_blocks(100, 7)
        sizes = [stop - start for start, stop in blocks]
        assert max(sizes) - min(sizes) <= 1
        assert len(blocks) == 7

    def test_empty_and_invalid(self):
        assert plan_blocks(0, 4) == []
        with pytest.raises(ValueError, match="at least 1"):
            plan_blocks(10, 0)
