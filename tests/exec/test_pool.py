"""Behavioural tests for ``parallel_map``: ordering and fallbacks."""

from __future__ import annotations

import os

from repro.exec import fork_available, parallel_map


def _affine(context, payload):
    # Module-level so the fork path can reference it from children.
    return context["scale"] * payload + context["offset"]


def _tag_with_pid(context, payload):
    return (payload, os.getpid())


class TestSerialPaths:
    def test_workers_one_runs_serial_without_fallback(self):
        reasons = []
        result = parallel_map(
            _affine,
            [1, 2, 3],
            workers=1,
            context={"scale": 10, "offset": 5},
            fallback=reasons.append,
        )
        assert result == [15, 25, 35]
        assert reasons == []

    def test_too_few_payloads_reports_fallback(self):
        reasons = []
        result = parallel_map(
            _affine,
            [7],
            workers=4,
            context={"scale": 2, "offset": 0},
            fallback=reasons.append,
        )
        assert result == [14]
        assert reasons == ["too_few_payloads"]

    def test_empty_payloads(self):
        assert parallel_map(_affine, [], workers=4, context={}) == []


class TestForkPath:
    def test_results_in_submission_order(self):
        if not fork_available():  # pragma: no cover - linux containers fork
            return
        payloads = list(range(8))
        parallel = parallel_map(
            _affine,
            payloads,
            workers=2,
            context={"scale": 3, "offset": 1},
        )
        serial = [_affine({"scale": 3, "offset": 1}, p) for p in payloads]
        assert parallel == serial

    def test_work_runs_in_child_processes(self):
        if not fork_available():  # pragma: no cover
            return
        tagged = parallel_map(
            _tag_with_pid, list(range(6)), workers=2, context=None
        )
        assert [payload for payload, _ in tagged] == list(range(6))
        assert all(pid != os.getpid() for _, pid in tagged)
