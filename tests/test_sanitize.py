"""reprosan runtime sanitizer: gating, tripwires, provenance, and the
sanitized pipeline/soak paths.

The deliberate violations here are the runtime half of the
static/runtime pairing — the same patterns appear as reprolint flow
fixtures in ``tests/devtools/test_rules_flow.py`` and must be caught
both ways.
"""

from __future__ import annotations

import dataclasses
from random import Random

import pytest

from repro import sanitize
from repro.checkpoint import config_fingerprint
from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.exec import substream
from repro.obs import Instrumentation, MemorySink
from repro.sanitize import (
    SanitizerViolation,
    TripwireMapping,
    armed,
    assert_rng,
    tag_rng,
)
from repro.serve.health import ServiceHealth
from repro.serve.snapshot import build_snapshot


@pytest.fixture(autouse=True)
def _isolated_sanitizer():
    """Every test starts and ends in environment-driven, clean state."""
    sanitize.reset()
    yield
    sanitize.reset()


# ----------------------------------------------------------------------
# Gating and recording
# ----------------------------------------------------------------------


class TestGating:
    def test_disabled_by_default(self):
        assert not sanitize.enabled()

    def test_env_flag_enables(self, monkeypatch):
        monkeypatch.setenv(sanitize.ENV_FLAG, "1")
        assert sanitize.enabled()
        monkeypatch.setenv(sanitize.ENV_FLAG, "0")
        assert not sanitize.enabled()

    def test_force_overrides_env(self, monkeypatch):
        monkeypatch.setenv(sanitize.ENV_FLAG, "1")
        sanitize.disable()
        assert not sanitize.enabled()
        sanitize.enable()
        assert sanitize.enabled()

    def test_armed_scope_restores_prior_state(self):
        assert not sanitize.enabled()
        with armed():
            assert sanitize.enabled()
        assert not sanitize.enabled()

    def test_record_violation_appends_raises_and_emits(self):
        sink = MemorySink()
        obs = Instrumentation(sink, strict=True)
        sanitize.attach_observer(obs)
        with pytest.raises(SanitizerViolation, match="kindname: detail"):
            sanitize.record_violation("kindname", "detail")
        assert sanitize.violations() == (
            {"kind": "kindname", "detail": "detail"},
        )
        (event,) = sink.by_name("sanitizer.violation")
        assert event.payload["kind"] == "kindname"
        assert obs.counter("sanitizer.violation") == 1

    def test_violation_is_an_assertion(self):
        # Supervisors contain operational failures but never
        # assertions, so a trip always fails loud (R013's carve-out).
        assert issubclass(SanitizerViolation, AssertionError)


# ----------------------------------------------------------------------
# RNG provenance
# ----------------------------------------------------------------------


class TestRngProvenance:
    def test_substream_is_born_tagged(self):
        rng = substream("trace", 0, "vp", 7)
        assert sanitize.rng_provenance(rng) == "trace:0:vp:7"

    def test_tagging_does_not_change_draws(self):
        tagged = tag_rng(Random(5), "x", 5)
        assert tagged.random() == Random(5).random()

    def test_assert_rng_passes_tagged_stream(self):
        with armed():
            rng = substream("ok", 1)
            assert assert_rng(rng, "site") is rng

    def test_assert_rng_trips_on_ambient_stream(self):
        # Runtime half of R011: an RNG that did not come from
        # substream()/tag_rng() reaching a draw chokepoint.
        with armed():
            with pytest.raises(SanitizerViolation, match="rng.untagged"):
                assert_rng(Random(), "test.site")

    def test_assert_rng_is_silent_when_disarmed(self):
        assert_rng(Random(), "test.site")
        assert sanitize.violations() == ()


# ----------------------------------------------------------------------
# Write tripwires
# ----------------------------------------------------------------------


class TestTripwireMapping:
    def test_reads_delegate(self):
        wrapped = TripwireMapping({"a": 1, "b": 2}, "test")
        assert wrapped["a"] == 1
        assert sorted(wrapped) == ["a", "b"]
        assert len(wrapped) == 2
        assert "b" in wrapped
        assert dict(wrapped) == {"a": 1, "b": 2}

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda m: m.__setitem__("x", 1),
            lambda m: m.__delitem__("a"),
            lambda m: m.clear(),
            lambda m: m.pop("a"),
            lambda m: m.popitem(),
            lambda m: m.setdefault("x", 1),
            lambda m: m.update({"x": 1}),
        ],
    )
    def test_every_mutator_trips(self, mutate):
        wrapped = TripwireMapping({"a": 1}, "test")
        with pytest.raises(SanitizerViolation, match="snapshot.write"):
            mutate(wrapped)
        assert wrapped["a"] == 1  # the underlying data is untouched

    def test_snapshot_indices_are_tripwired_when_armed(self, small_run):
        _, corpus, result = small_run
        with armed():
            snapshot = build_snapshot(
                result,
                epoch=1,
                final=True,
                seed=3,
                config_fingerprint="cfg",
                traces_ingested=len(corpus),
            )
            # Runtime half of R009/R012: in-place mutation of a
            # published index.
            with pytest.raises(SanitizerViolation, match="snapshot.stats"):
                snapshot.stats["interfaces"] = 0
        violation = sanitize.violations()[-1]
        assert violation["kind"] == "snapshot.write"


class TestHealthGuard:
    def test_documented_mutators_pass_while_armed(self):
        with armed():
            health = ServiceHealth()
            health.record_failure(reason="probe failed")
            health.record_quarantine(2)
            health.record_rollback("epoch-3")
            health.subscribe(lambda old, new, reason: None)
        assert health.state in ("degraded", "stale")
        assert sanitize.violations() == ()

    def test_direct_state_write_trips(self):
        # Runtime half of R010/R012: poking health state from outside
        # the documented mutation points.
        health = ServiceHealth()
        with armed():
            with pytest.raises(SanitizerViolation, match="health.write"):
                health._state = "degraded"
        assert sanitize.violations()[0]["kind"] == "health.write"

    def test_direct_write_passes_when_disarmed(self):
        health = ServiceHealth()
        health._state = "degraded"  # ungoverned, but sanitizer is off
        assert health.state == "degraded"


# ----------------------------------------------------------------------
# The sanitized pipeline and soak paths
# ----------------------------------------------------------------------


class TestSanitizedRuns:
    def test_sanitize_is_a_transient_config_field(self):
        base = PipelineConfig.small(seed=0)
        flipped = dataclasses.replace(base, sanitize=True)
        assert config_fingerprint(base) == config_fingerprint(flipped)

    def test_pipeline_clean_and_byte_identical_under_sanitizer(self):
        plain = run_pipeline(PipelineConfig.small(seed=0))
        sink = MemorySink()
        sanitized = run_pipeline(
            dataclasses.replace(PipelineConfig.small(seed=0), sanitize=True),
            instrumentation=Instrumentation(sink),
        )
        assert sanitize.violations() == ()
        assert sink.by_name("sanitizer.violation") == []
        assert not sanitize.enabled()  # the armed scope was restored

        def fingerprint(run):
            return build_snapshot(
                run.cfs_result,
                epoch=0,
                final=True,
                seed=0,
                config_fingerprint="cfg",
                traces_ingested=len(run.corpus),
            ).fingerprint

        assert fingerprint(sanitized) == fingerprint(plain)

    def test_soak_smoke_sanitized_zero_violations(self):
        from repro.serve.soak import run_soak

        report = run_soak(
            seed=8,
            scale="small",
            epochs=3,
            threads=2,
            verify_identity=False,
            sanitize=True,
        )
        assert report.sanitized
        assert report.sanitizer_violations == 0
        assert report.queries > 0
        assert report.ok
        assert report.as_dict()["sanitizer_violations"] == 0
        assert not sanitize.enabled()
