"""MIDAR tests: bounds test, union-find, resolver precision/recall."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alias.midar import (
    AliasSets,
    MidarResolver,
    UnionFind,
    monotonic_mod_sequence,
    repair_ip_to_asn,
    velocity_estimate,
)
from repro.measurement.ipid import IPID_MODULUS, IpidResponder
from repro.topology import IPIDMode
from repro.topology.network import InterfaceKind


class TestMonotonicBoundsTest:
    def test_strictly_increasing_passes(self):
        assert monotonic_mod_sequence([1, 5, 9, 200])

    def test_single_wrap_passes(self):
        assert monotonic_mod_sequence([65000, 65500, 100, 700])

    def test_repeat_fails(self):
        assert not monotonic_mod_sequence([5, 5, 9])

    def test_full_cycle_fails(self):
        # Total advance exceeding the modulus cannot be one counter.
        assert not monotonic_mod_sequence([0, 60000, 50000, 60000])

    def test_short_sequences_pass(self):
        assert monotonic_mod_sequence([])
        assert monotonic_mod_sequence([42])

    @given(
        start=st.integers(min_value=0, max_value=IPID_MODULUS - 1),
        steps=st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=30),
    )
    @settings(max_examples=150)
    def test_true_counter_always_passes(self, start, steps):
        samples = [start]
        for step in steps:
            samples.append((samples[-1] + step) % IPID_MODULUS)
        assert monotonic_mod_sequence(samples)

    @given(
        start=st.integers(min_value=0, max_value=IPID_MODULUS - 1),
        steps=st.lists(
            st.integers(min_value=1, max_value=50), min_size=2, max_size=30
        ),
    )
    @settings(max_examples=100)
    def test_velocity_estimate_matches_mean_step(self, start, steps):
        samples = [start]
        for step in steps:
            samples.append((samples[-1] + step) % IPID_MODULUS)
        estimate = velocity_estimate(samples)
        assert estimate == pytest.approx(sum(steps) / len(steps))

    def test_velocity_estimate_rejects_non_monotonic(self):
        assert velocity_estimate([5, 5, 5]) is None

    def test_velocity_estimate_short(self):
        assert velocity_estimate([1]) is None


class TestUnionFind:
    def test_union_and_find(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        assert uf.find(1) == uf.find(3)
        assert uf.find(4) != uf.find(1)

    def test_groups(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.add("c")
        groups = uf.groups()
        assert {"a", "b"} in groups
        assert {"c"} in groups

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=30),
                st.integers(min_value=0, max_value=30),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=100)
    def test_matches_naive_equivalence(self, unions):
        uf = UnionFind()
        naive: dict[int, set[int]] = {}

        def naive_union(a, b):
            group_a = naive.setdefault(a, {a})
            group_b = naive.setdefault(b, {b})
            if group_a is group_b:
                return
            merged = group_a | group_b
            for member in merged:
                naive[member] = merged

        for a, b in unions:
            uf.union(a, b)
            naive_union(a, b)
        for a, b in unions:
            assert (uf.find(a) == uf.find(b)) == (naive[a] is naive[b])


class TestAliasSets:
    def test_from_groups_drops_singletons(self):
        sets = AliasSets.from_groups([{1, 2}, {3}])
        assert len(sets) == 1
        assert sets.aliases_of(1) == frozenset({1, 2})
        assert sets.aliases_of(3) == frozenset({3})

    def test_are_aliases(self):
        sets = AliasSets.from_groups([{1, 2}, {4, 5}])
        assert sets.are_aliases(1, 2)
        assert not sets.are_aliases(1, 4)
        assert not sets.are_aliases(1, 99)


class TestResolver:
    @pytest.fixture(scope="class")
    def resolution(self, small_topology):
        responder = IpidResponder(small_topology, seed=50)
        resolver = MidarResolver(responder, seed=50)
        addresses = [
            address
            for address, iface in small_topology.interfaces.items()
            if iface.kind not in (InterfaceKind.LOOPBACK, InterfaceKind.HOST)
        ]
        return resolver.resolve(addresses), addresses

    def test_no_false_merges(self, resolution, small_topology):
        sets, _ = resolution
        for alias_set in sets.sets:
            routers = {
                small_topology.interfaces[a].router_id for a in alias_set
            }
            assert len(routers) == 1, alias_set

    def test_high_recall_on_shared_counter_routers(self, resolution, small_topology):
        sets, addresses = resolution
        probed = set(addresses)
        recovered = 0
        eligible = 0
        for router in small_topology.routers.values():
            if small_topology.ases[router.asn].ipid_mode is not IPIDMode.SHARED_COUNTER:
                continue
            usable = [a for a in router.interfaces if a in probed]
            if len(usable) < 2:
                continue
            eligible += 1
            if all(sets.are_aliases(usable[0], other) for other in usable[1:]):
                recovered += 1
        assert eligible > 0
        assert recovered / eligible > 0.85

    def test_unresponsive_routers_not_resolved(self, resolution, small_topology):
        sets, _ = resolution
        for alias_set in sets.sets:
            router = small_topology.router_of_address(next(iter(alias_set)))
            mode = small_topology.ases[router.asn].ipid_mode
            assert mode is IPIDMode.SHARED_COUNTER

    def test_pair_memory_reused_across_resolves(self, small_topology):
        responder = IpidResponder(small_topology, seed=51)
        resolver = MidarResolver(responder, seed=51)
        addresses = list(small_topology.interfaces)[:300]
        first = resolver.resolve(addresses)
        probes_after_first = resolver.probes_sent
        second = resolver.resolve(addresses)
        # Re-resolving re-estimates velocities but skips verdicts already
        # reached, so the probe bill collapses.
        assert resolver.probes_sent - probes_after_first < probes_after_first / 2
        # Corroboration is monotone: accepted pairs stay accepted (a
        # second pass may discover additional aliases, never lose any).
        for alias_set in first.sets:
            members = sorted(alias_set)
            for other in members[1:]:
                assert second.are_aliases(members[0], other)


class TestAsnRepair:
    def test_majority_vote(self):
        sets = AliasSets.from_groups([{1, 2, 3}])
        mapping = {1: 100, 2: 100, 3: 200}
        repaired = repair_ip_to_asn(sets, mapping)
        assert repaired == {1: 100, 2: 100, 3: 100}

    def test_tie_keeps_original(self):
        sets = AliasSets.from_groups([{1, 2}])
        mapping = {1: 100, 2: 200}
        assert repair_ip_to_asn(sets, mapping) == mapping

    def test_none_values_not_voted_or_repaired(self):
        sets = AliasSets.from_groups([{1, 2, 3}])
        mapping = {1: 100, 2: 100, 3: None}
        repaired = repair_ip_to_asn(sets, mapping)
        assert repaired[3] is None

    def test_unaffected_addresses_untouched(self):
        sets = AliasSets.from_groups([{1, 2}])
        mapping = {1: 100, 2: 100, 9: 300}
        assert repair_ip_to_asn(sets, mapping)[9] == 300

    def test_repairs_shared_p2p_mapping(self, small_topology):
        """End to end: raw LPM errors on shared /31s shrink after repair."""
        from repro.datasets.cymru import CymruService

        cymru = CymruService(small_topology, seed=52)
        responder = IpidResponder(small_topology, seed=52)
        resolver = MidarResolver(responder, seed=52)
        addresses = [
            address
            for address, iface in small_topology.interfaces.items()
            if iface.kind not in (InterfaceKind.LOOPBACK, InterfaceKind.HOST)
        ]
        sets = resolver.resolve(addresses)
        raw = {a: cymru.lookup(a) for a in addresses}
        repaired = repair_ip_to_asn(sets, raw)

        def errors(mapping):
            return sum(
                1
                for address in addresses
                if mapping[address] is not None
                and small_topology.interfaces[address].kind
                is InterfaceKind.PRIVATE_P2P
                and mapping[address]
                != small_topology.true_asn_of_address(address)
            )

        assert errors(repaired) < errors(raw)
