"""PeeringDB snapshot tests: incompleteness model and query helpers."""

from __future__ import annotations

import pytest

from repro.datasets.peeringdb import (
    MaintenanceQuality,
    PeeringDBConfig,
    PeeringDBSnapshot,
)


@pytest.fixture(scope="module")
def snapshot(small_topology):
    return PeeringDBSnapshot.build(small_topology, seed=5)


class TestFacilityTable:
    def test_all_facilities_present(self, snapshot, small_topology):
        assert len(snapshot.facilities) == len(small_topology.facilities)

    def test_alias_spellings_appear(self, snapshot, small_topology):
        raw_cities = {row.city for row in snapshot.facilities}
        canonical = {f.metro for f in small_topology.facilities.values()}
        assert raw_cities - canonical, "some rows should use alias spellings"

    def test_facility_row_lookup(self, snapshot):
        row = snapshot.facilities[0]
        assert snapshot.facility_row(row.facility_id) == row
        assert snapshot.facility_row(10**6) is None


class TestNetfacIncompleteness:
    def test_netfac_is_subset_of_truth(self, snapshot, small_topology):
        for row in snapshot.netfac:
            assert row.facility_id in small_topology.ases[row.asn].facility_ids

    def test_absent_operators_have_no_rows(self, snapshot):
        listed = {row.asn for row in snapshot.netfac}
        for asn, quality in snapshot.quality.items():
            if quality is MaintenanceQuality.ABSENT:
                assert asn not in listed

    def test_diligent_operators_complete(self, snapshot, small_topology):
        pdb_map = snapshot.as_facility_map()
        for asn, quality in snapshot.quality.items():
            if quality is MaintenanceQuality.DILIGENT:
                assert pdb_map.get(asn, set()) == small_topology.ases[asn].facility_ids

    def test_lazy_operators_missing_links(self, small_topology):
        config = PeeringDBConfig(
            diligent_prob=0.0, lazy_prob=1.0, lazy_dropout=0.5, metro_anchor_prob=0.0
        )
        snapshot = PeeringDBSnapshot.build(small_topology, config, seed=6)
        pdb_map = snapshot.as_facility_map()
        total_truth = sum(len(a.facility_ids) for a in small_topology.ases.values())
        total_listed = sum(len(v) for v in pdb_map.values())
        assert total_listed < total_truth

    def test_metro_anchor_keeps_market_presence(self, small_topology):
        config = PeeringDBConfig(
            diligent_prob=0.0,
            lazy_prob=1.0,
            lazy_dropout=0.999,
            metro_anchor_prob=1.0,
        )
        snapshot = PeeringDBSnapshot.build(small_topology, config, seed=7)
        pdb_map = snapshot.as_facility_map()
        for asn, record in small_topology.ases.items():
            true_metros = {
                small_topology.facilities[f].metro for f in record.facility_ids
            }
            listed_metros = {
                small_topology.facilities[f].metro
                for f in pdb_map.get(asn, set())
            }
            assert listed_metros == true_metros


class TestIxTables:
    def test_ixlan_covers_all_ixps(self, snapshot, small_topology):
        assert set(snapshot.ixp_prefixes()) == set(small_topology.ixps)

    def test_ixfac_subset_of_truth(self, snapshot, small_topology):
        for row in snapshot.ixfac:
            assert row.facility_id in small_topology.ixps[row.ixp_id].facility_ids

    def test_some_ixps_lack_ixfac(self, small_topology):
        config = PeeringDBConfig(ixfac_missing_prob=1.0)
        snapshot = PeeringDBSnapshot.build(small_topology, config, seed=8)
        assert snapshot.ixfac == []

    def test_netixlan_addresses_are_ports(self, snapshot, small_topology):
        for row in snapshot.netixlan:
            ports = small_topology.ixps[row.ixp_id].ports_of(row.asn)
            assert row.address in {port.address for port in ports}

    def test_members_of_ixp(self, snapshot, small_topology):
        active = [i for i in small_topology.ixps.values() if i.active]
        ixp = max(active, key=lambda i: len(i.member_ports))
        members = snapshot.members_of_ixp(ixp.ixp_id)
        assert members <= ixp.member_asns
        assert members  # coverage 0.85 leaves plenty


class TestDeterminism:
    def test_same_seed_same_snapshot(self, small_topology):
        a = PeeringDBSnapshot.build(small_topology, seed=9)
        b = PeeringDBSnapshot.build(small_topology, seed=9)
        assert a.netfac == b.netfac
        assert a.ixfac == b.ixfac
        assert a.quality == b.quality
