"""Tests for NOC pages, IXP sources (activeness filter), Cymru, geo DB."""

from __future__ import annotations

import pytest

from repro.datasets.cymru import CymruService
from repro.datasets.geolocation import GeoDatabase
from repro.datasets.ixp_sources import IxpDataSources, IxpSourcesConfig
from repro.datasets.noc import NocConfig, NocWebsites
from repro.datasets.peeringdb import PeeringDBSnapshot
from repro.topology import ASRole, InterfaceKind


@pytest.fixture(scope="module")
def peeringdb(small_topology):
    return PeeringDBSnapshot.build(small_topology, seed=11)


@pytest.fixture(scope="module")
def ixp_sources(small_topology, peeringdb):
    return IxpDataSources.build(
        small_topology,
        peeringdb.ixp_prefixes(),
        {i: peeringdb.members_of_ixp(i) for i in small_topology.ixps},
        seed=12,
    )


class TestNocWebsites:
    def test_pages_only_for_flagged_ases(self, small_topology):
        noc = NocWebsites.build(small_topology, seed=13)
        for asn in noc.asns_with_pages():
            assert small_topology.ases[asn].has_noc_page

    def test_listings_subset_of_truth(self, small_topology):
        noc = NocWebsites.build(small_topology, seed=13)
        for asn in noc.asns_with_pages():
            page = noc.page_for(asn)
            assert page.facility_ids() <= small_topology.ases[asn].facility_ids

    def test_full_coverage_config(self, small_topology):
        noc = NocWebsites.build(small_topology, NocConfig(listing_coverage=1.0), seed=14)
        for asn in noc.asns_with_pages():
            page = noc.page_for(asn)
            assert page.facility_ids() == small_topology.ases[asn].facility_ids

    def test_page_for_unknown(self, small_topology):
        noc = NocWebsites.build(small_topology, seed=13)
        assert noc.page_for(424242) is None


class TestActivenessFilter:
    def test_inactive_ixps_filtered(self, small_topology, ixp_sources):
        active = ixp_sources.active_ixp_ids()
        for ixp in small_topology.ixps.values():
            if not ixp.active:
                assert ixp.ixp_id not in active

    def test_active_ixps_pass(self, small_topology, ixp_sources):
        active = ixp_sources.active_ixp_ids()
        truly_active = {i.ixp_id for i in small_topology.ixps.values() if i.active}
        # Coverage noise may drop a rare exchange, never add one.
        assert active <= truly_active
        assert len(active) >= len(truly_active) - 1

    def test_prefix_confirmations_counts_sources(self, ixp_sources, small_topology):
        active = ixp_sources.active_ixp_ids()
        for ixp_id in active:
            assert ixp_sources.prefix_confirmations(ixp_id) >= 3

    def test_confirmed_members_need_two_sources(self, ixp_sources):
        for ixp_id in ixp_sources.active_ixp_ids():
            confirmations = ixp_sources.member_confirmations(ixp_id)
            for asn in ixp_sources.confirmed_members(ixp_id):
                assert confirmations[asn] >= 2

    def test_detailed_websites_publish_ports(self, ixp_sources, small_topology):
        detailed = ixp_sources.detailed_websites()
        assert detailed
        for website in detailed:
            assert website.is_detailed
            ixp = small_topology.ixps[website.ixp_id]
            published = {m.address for m in website.member_details}
            truth = {
                port.address
                for ports in ixp.member_ports.values()
                for port in ports
            }
            assert published == truth

    def test_detailed_facilities_match_truth(self, ixp_sources, small_topology):
        for website in ixp_sources.detailed_websites():
            ixp = small_topology.ixps[website.ixp_id]
            for member in website.member_details:
                matching = [
                    port
                    for ports in ixp.member_ports.values()
                    for port in ports
                    if port.address == member.address
                ]
                assert matching[0].facility_id == member.facility_id
                assert matching[0].is_remote == member.is_remote

    def test_pch_marks_inactive(self, ixp_sources, small_topology):
        for ixp_id, record in ixp_sources.pch.items():
            assert record.marked_inactive == (not small_topology.ixps[ixp_id].active)


class TestCymru:
    @pytest.fixture(scope="class")
    def cymru(self, small_topology):
        return CymruService(small_topology, seed=15)

    def test_backbone_addresses_map_to_operator(self, cymru, small_topology):
        for address, iface in list(small_topology.interfaces.items())[:300]:
            if iface.kind in (InterfaceKind.BACKBONE, InterfaceKind.LOOPBACK):
                assert cymru.lookup(address) == small_topology.routers[iface.router_id].asn

    def test_p2p_misattribution_occurs(self, cymru, small_topology):
        """The far side of a shared /31 maps to the numbering AS, not the
        operating AS — the Section 4.1 error class."""
        wrong = 0
        for address, iface in small_topology.interfaces.items():
            if iface.kind is not InterfaceKind.PRIVATE_P2P:
                continue
            mapped = cymru.lookup(address)
            true_asn = small_topology.routers[iface.router_id].asn
            if mapped is not None and mapped != true_asn:
                wrong += 1
        assert wrong > 0

    def test_unknown_address(self, cymru):
        assert cymru.lookup(1) is None

    def test_bulk_lookup(self, cymru, small_topology):
        addresses = list(small_topology.interfaces)[:10]
        answers = cymru.bulk_lookup(addresses)
        assert set(answers) == set(addresses)

    def test_ixp_lan_announcement_probability(self, small_topology):
        always = CymruService(small_topology, announce_ixp_lan_prob=1.0, seed=1)
        never = CymruService(small_topology, announce_ixp_lan_prob=0.0, seed=1)
        active = [i for i in small_topology.ixps.values() if i.active]
        port = next(
            port
            for ixp in active
            for ports in ixp.member_ports.values()
            for port in ports
        )
        ixp = next(i for i in active if i.owns_address(port.address))
        assert always.lookup(port.address) == ixp.asn
        assert never.lookup(port.address) is None


class TestGeoDatabase:
    def test_content_maps_to_headquarters(self, small_topology):
        geodb = GeoDatabase(small_topology, seed=16)
        content = [a for a in small_topology.ases.values() if a.role is ASRole.CONTENT]
        record = content[0]
        for prefix in record.prefixes:
            answer = geodb.lookup(prefix.first + 1)
            assert answer is not None
            assert answer.metro == record.home_metro

    def test_unknown_address(self, small_topology):
        geodb = GeoDatabase(small_topology, seed=16)
        assert geodb.lookup(1) is None

    def test_country_mostly_right(self, small_topology):
        geodb = GeoDatabase(small_topology, seed=17)
        right = total = 0
        for record in small_topology.ases.values():
            home = small_topology.metros.resolve(record.home_metro)
            answer = geodb.lookup(record.prefixes[0].first + 1)
            total += 1
            if answer is not None and answer.country == home.country:
                right += 1
        assert right / total > 0.75
