"""City/metro normalisation tests (the Section 3.1.1 cleaning step)."""

from __future__ import annotations

import pytest

from repro.datasets.normalize import LocationNormalizer
from repro.topology.geo import GeoLocation, MetroCatalogue


@pytest.fixture(scope="module")
def normalizer():
    return LocationNormalizer(MetroCatalogue())


class TestNameNormalization:
    def test_canonical_name(self, normalizer):
        assert normalizer.normalize_city("London") == "London"

    def test_alias(self, normalizer):
        assert normalizer.normalize_city("Jersey City") == "New York"
        assert normalizer.normalize_city("Frankfurt am Main") == "Frankfurt"

    def test_case_folding(self, normalizer):
        assert normalizer.normalize_city("AMSTERDAM") == "Amsterdam"

    def test_whitespace(self, normalizer):
        assert normalizer.normalize_city("  Paris  ") == "Paris"

    def test_country_suffix(self, normalizer):
        assert normalizer.normalize_city("Frankfurt, DE") == "Frankfurt"
        assert normalizer.normalize_city("Zurich, Switzerland") == "Zurich"

    def test_unknown(self, normalizer):
        assert normalizer.normalize_city("Gotham") is None

    def test_empty(self, normalizer):
        assert normalizer.normalize_city("") is None
        assert normalizer.normalize_city("   ") is None


class TestCoordinateFallback:
    def test_unknown_name_near_metro(self, normalizer):
        # Croydon is not catalogued but sits inside the London metro.
        croydon = GeoLocation(51.3762, -0.0982)
        assert normalizer.normalize_location("Croydon", croydon) == "London"

    def test_unknown_name_far_from_any_metro(self, normalizer):
        mid_atlantic = GeoLocation(30.0, -45.0)
        assert normalizer.normalize_location("Atlantis", mid_atlantic) is None

    def test_name_wins_over_coordinates(self, normalizer):
        # A known alias resolves by name even with far-away coordinates.
        anywhere = GeoLocation(0.0, 0.0)
        assert normalizer.normalize_location("Kyiv", anywhere) == "Kiev"

    def test_no_location_no_name(self, normalizer):
        assert normalizer.normalize_location("Gotham", None) is None


class TestGroupingRule:
    def test_same_metro_within_five_miles(self, normalizer):
        a = GeoLocation(40.7128, -74.0060)  # Manhattan
        b = GeoLocation(40.7282, -74.0776)  # Jersey City, ~6.5 km away
        assert normalizer.same_metro(a, b)

    def test_not_same_metro_far_apart(self, normalizer):
        nyc = GeoLocation(40.7128, -74.0060)
        philly = GeoLocation(39.9526, -75.1652)
        assert not normalizer.same_metro(nyc, philly)

    def test_metro_of(self, normalizer):
        assert normalizer.metro_of("London").country == "GB"
        assert normalizer.metro_of("Gotham") is None
