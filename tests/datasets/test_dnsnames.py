"""Reverse-DNS synthesis tests: schemes, coverage, facility codes."""

from __future__ import annotations

import pytest

from repro.datasets.dnsnames import (
    DnsConfig,
    DnsZone,
    metro_airport_code,
    metro_clli_code,
)
from repro.topology import InterfaceKind


@pytest.fixture(scope="module")
def zone(small_topology):
    return DnsZone(small_topology, seed=18)


def interfaces_of_scheme(topology, scheme):
    for address, iface in topology.interfaces.items():
        operator = topology.ases[topology.routers[iface.router_id].asn]
        if operator.dns_scheme == scheme:
            yield address, iface


class TestCodes:
    def test_curated_airport_codes(self):
        assert metro_airport_code("London") == "lhr"
        assert metro_airport_code("Frankfurt") == "fra"
        assert metro_airport_code("New York") == "jfk"

    def test_derived_airport_code(self):
        code = metro_airport_code("Gotham City")
        assert len(code) == 3 and code.isalpha()

    def test_clli_codes(self):
        assert metro_clli_code("New York") == "newyor"
        assert len(metro_clli_code("Oslo")) == 6


class TestZone:
    def test_no_scheme_no_record(self, zone, small_topology):
        for address, _ in interfaces_of_scheme(small_topology, None):
            assert zone.ptr(address) is None

    def test_coverage_below_one(self, zone):
        # 29% of interfaces had no PTR in the paper; our mix lands in a
        # similar band (scheme None + per-record gaps).
        assert 0.35 < zone.coverage() < 0.85

    def test_airport_scheme_embeds_code(self, small_topology):
        zone = DnsZone(small_topology, DnsConfig(missing_record_prob=0.0, stale_prob=0.0), seed=19)
        checked = 0
        for address, iface in interfaces_of_scheme(small_topology, "airport"):
            hostname = zone.ptr(address)
            assert hostname is not None
            metro = small_topology.facilities[
                small_topology.routers[iface.router_id].facility_id
            ].metro
            assert f".{metro_airport_code(metro)}." in hostname
            checked += 1
        if checked == 0:
            pytest.skip("no airport-scheme operators in this seed")

    def test_facility_scheme_decodable(self, small_topology):
        zone = DnsZone(small_topology, DnsConfig(missing_record_prob=0.0, stale_prob=0.0), seed=20)
        code_to_facility = {
            f.dns_code: f.facility_id for f in small_topology.facilities.values()
        }
        checked = 0
        for address, iface in interfaces_of_scheme(small_topology, "facility"):
            hostname = zone.ptr(address)
            assert hostname is not None
            code = hostname.split(".")[1]
            true_facility = small_topology.routers[iface.router_id].facility_id
            assert code_to_facility[code] == true_facility
            checked += 1
        assert checked > 0

    def test_opaque_scheme_has_no_location(self, small_topology):
        zone = DnsZone(small_topology, DnsConfig(missing_record_prob=0.0, stale_prob=0.0), seed=21)
        metros = {f.metro for f in small_topology.facilities.values()}
        codes = {metro_airport_code(m) for m in metros} | {
            metro_clli_code(m) for m in metros
        }
        for address, _ in list(interfaces_of_scheme(small_topology, "opaque"))[:50]:
            hostname = zone.ptr(address)
            assert hostname is not None
            labels = set(hostname.replace("-", ".").split("."))
            assert not labels & codes

    def test_interface_kind_in_label(self, small_topology):
        zone = DnsZone(small_topology, DnsConfig(missing_record_prob=0.0, stale_prob=0.0), seed=22)
        prefix_by_kind = {
            InterfaceKind.BACKBONE: "ae-",
            InterfaceKind.IXP_LAN: "ix-",
            InterfaceKind.PRIVATE_P2P: "pni-",
            InterfaceKind.LOOPBACK: "lo-",
            InterfaceKind.HOST: "host-",
        }
        for address, iface in list(small_topology.interfaces.items())[:200]:
            hostname = zone.ptr(address)
            if hostname is None:
                continue
            assert hostname.startswith(prefix_by_kind[iface.kind])

    def test_stale_records_exist_when_configured(self, small_topology):
        zone = DnsZone(
            small_topology,
            DnsConfig(missing_record_prob=0.0, stale_prob=1.0),
            seed=23,
        )
        # With stale_prob=1 every record carries the 'old' facility code.
        stale = 0
        for address in small_topology.interfaces:
            hostname = zone.ptr(address)
            if hostname is not None and ".old." in f".{hostname}":
                stale += 1
        assert stale > 0
