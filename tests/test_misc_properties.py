"""Cross-cutting property tests and small utilities coverage."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import InferredType, InterfaceState, InterfaceStatus
from repro.experiments.context import clone_corpus, experiment_environment
from repro.experiments.formatting import format_table
from repro.export import interface_record
from repro.measurement.campaign import TraceCorpus
from repro.measurement.traceroute import TraceHop, Traceroute
from repro.topology.addressing import MAX_IPV4


addresses = st.integers(min_value=0, max_value=MAX_IPV4)
facility_ids = st.sets(st.integers(min_value=0, max_value=500), max_size=6)


class TestExportProperties:
    @given(
        address=addresses,
        candidates=facility_ids,
        status=st.sampled_from(list(InterfaceStatus)),
        inferred=st.sampled_from(list(InferredType)),
        remote=st.booleans(),
        owner=st.one_of(st.none(), st.integers(min_value=1, max_value=2**31)),
    )
    @settings(max_examples=150)
    def test_interface_record_always_json_serialisable(
        self, address, candidates, status, inferred, remote, owner
    ):
        state = InterfaceState(address=address, owner_asn=owner)
        state.candidates = set(candidates) or None
        state.status = status
        state.inferred_type = inferred
        state.remote = remote
        record = interface_record(state)
        encoded = json.dumps(record)
        decoded = json.loads(encoded)
        assert decoded["address"].count(".") == 3
        assert decoded["candidates"] == sorted(candidates)
        if len(candidates) == 1:
            assert decoded["facility"] == next(iter(candidates))
        else:
            assert decoded["facility"] is None


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "count"],
            [["alpha", 1], ["b", 22]],
            title="Demo",
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[1] and "count" in lines[1]
        assert len(lines) == 5

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text

    def test_wide_values_stretch_columns(self):
        text = format_table(["x"], [["very-long-value"]])
        header, rule, row = text.splitlines()
        assert len(rule) >= len("very-long-value")


class TestContextHelpers:
    def test_environment_cached(self):
        first = experiment_environment(seed=1234, small=True)
        second = experiment_environment(seed=1234, small=True)
        assert first is second

    def test_different_seed_different_environment(self):
        first = experiment_environment(seed=1234, small=True)
        other = experiment_environment(seed=1235, small=True)
        assert first is not other

    def test_clone_corpus_independent(self):
        corpus = TraceCorpus()
        trace = Traceroute(
            source_id="s",
            platform="p",
            src_asn=1,
            dst_address=5,
            hops=(TraceHop(1, 5, 1.0),),
            reached=True,
        )
        corpus.add(trace)
        clone = clone_corpus(corpus)
        clone.add(trace)
        assert len(corpus) == 1
        assert len(clone) == 2
