"""Validation layer tests: the four sources and the scoring metrics."""

from __future__ import annotations

import pytest

from repro.core.types import InferredType, LinkInference, PeeringKind
from repro.validation.metrics import (
    AccuracyReport,
    match_ground_truth_link,
    score_interfaces,
    score_links,
    validate_against_sources,
)
from repro.validation.sources import (
    BgpCommunitySource,
    DirectFeedbackSource,
    DnsRecordSource,
    IxpWebsiteSource,
    build_all_sources,
)


@pytest.fixture(scope="module")
def sources(small_run):
    env, _, _ = small_run
    return build_all_sources(
        env.topology, env.dns, env.ixp_sources, env.target_asns, seed=4
    )


class TestSources:
    def test_direct_feedback_only_own_interfaces(self, small_run):
        env, _, _ = small_run
        source = DirectFeedbackSource.from_targets(
            env.topology, env.target_asns, seed=1
        )
        addresses = list(env.topology.interfaces)
        for sample in source.samples_for(addresses):
            owner = env.topology.true_asn_of_address(sample.address)
            assert owner in env.target_asns

    def test_direct_feedback_truthful(self, small_run):
        env, _, _ = small_run
        source = DirectFeedbackSource.from_targets(
            env.topology, env.target_asns, seed=1
        )
        for sample in source.samples_for(list(env.topology.interfaces)[:3000]):
            assert sample.true_facility == env.topology.true_facility_of_address(
                sample.address
            )

    def test_bgp_source_limited_to_operators(self, small_run):
        env, _, _ = small_run
        source = BgpCommunitySource(env.topology)
        assert len(source.operator_asns) <= 4
        for sample in source.samples_for(list(env.topology.interfaces)):
            owner = env.topology.true_asn_of_address(sample.address)
            assert owner in source.operator_asns

    def test_bgp_dictionary_size_reasonable(self, small_run):
        env, _, _ = small_run
        source = BgpCommunitySource(env.topology)
        # One value per operator router facility — the paper compiled 109.
        assert 0 < len(source.dictionary) < 400

    def test_dns_source_decodes_only_confirmed_operators(self, small_run):
        env, _, _ = small_run
        source = DnsRecordSource(env.topology, env.dns)
        assert len(source.operator_asns) <= 7
        for asn in source.operator_asns:
            assert env.topology.ases[asn].dns_scheme == "facility"

    def test_dns_source_mostly_truthful(self, small_run):
        env, _, _ = small_run
        source = DnsRecordSource(env.topology, env.dns)
        samples = source.samples_for(list(env.topology.interfaces))
        if len(samples) < 10:
            pytest.skip("too few facility-scheme records in this seed")
        truthful = sum(
            1
            for sample in samples
            if sample.true_facility
            == env.topology.true_facility_of_address(sample.address)
        )
        # Stale records introduce a small disagreement rate.
        assert truthful / len(samples) > 0.9

    def test_ixp_website_source_covers_detailed_ports(self, small_run):
        env, _, _ = small_run
        source = IxpWebsiteSource(env.ixp_sources)
        detailed_ports = [
            member.address
            for website in env.ixp_sources.detailed_websites()
            for member in website.member_details
        ]
        samples = source.samples_for(detailed_ports)
        assert len(samples) == len(detailed_ports)
        for sample in samples:
            assert sample.is_remote is not None


class TestAccuracyReport:
    def test_classification(self, small_topology):
        report = AccuracyReport()
        facilities = list(small_topology.facilities.values())
        same_metro = [
            (a, b)
            for a in facilities
            for b in facilities
            if a.metro == b.metro and a.facility_id != b.facility_id
        ]
        a, b = same_metro[0]
        report.add(a.facility_id, a.facility_id, small_topology)  # exact
        report.add(a.facility_id, b.facility_id, small_topology)  # same city
        other = next(f for f in facilities if f.metro != a.metro)
        report.add(other.facility_id, a.facility_id, small_topology)  # wrong
        assert report.exact == 1
        assert report.same_city == 1
        assert report.wrong_city == 1
        assert report.facility_accuracy == pytest.approx(1 / 3)
        assert report.city_accuracy == pytest.approx(2 / 3)

    def test_empty_report(self):
        report = AccuracyReport()
        assert report.facility_accuracy == 0.0
        assert report.city_accuracy == 0.0


class TestScoring:
    def test_score_interfaces_counts_resolved_only(self, small_run):
        env, _, result = small_run
        report = score_interfaces(env.topology, result)
        assert report.total <= len(result.resolved_interfaces())
        assert report.total > 0

    def test_match_ground_truth_link(self, small_run):
        env, _, result = small_run
        matched = 0
        for inference in result.links[:200]:
            link = match_ground_truth_link(env.topology, inference)
            if link is None:
                continue
            matched += 1
            assert link.involves(inference.far_asn)
        assert matched > 50

    def test_match_unknown_interface(self, small_run):
        env, _, _ = small_run
        bogus = LinkInference(
            kind=PeeringKind.PRIVATE,
            inferred_type=InferredType.CROSS_CONNECT,
            near_address=1,
            near_asn=1,
            near_facility=None,
            far_asn=2,
            far_facility=None,
            ixp_id=None,
        )
        assert match_ground_truth_link(env.topology, bogus) is None

    def test_score_links_confusion_dominated_by_diagonal(self, small_run):
        env, _, result = small_run
        confusion = score_links(env.topology, result)
        assert confusion
        diagonal = 0
        off_diagonal = 0
        for true_type, row in confusion.items():
            for inferred, count in row.items():
                if inferred == true_type:
                    diagonal += count
                elif inferred != "unknown":
                    off_diagonal += count
        assert diagonal > off_diagonal

    def test_validate_against_sources_cells(self, small_run, sources):
        _, _, result = small_run
        cells = validate_against_sources(result, sources)
        assert cells
        total = sum(cell.total for cell in cells)
        matched = sum(cell.matched for cell in cells)
        assert 0 < matched <= total
        assert matched / total > 0.8
        for cell in cells:
            assert 0 <= cell.accuracy <= 1.0
            assert "/" in cell.label()

    def test_validation_cells_deduplicate(self, small_run, sources):
        _, _, result = small_run
        once = validate_against_sources(result, sources)
        twice = validate_against_sources(result, sources)
        assert [(c.source, c.link_type, c.matched, c.total) for c in once] == [
            (c.source, c.link_type, c.matched, c.total) for c in twice
        ]
