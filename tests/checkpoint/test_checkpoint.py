"""Unit tests for the checkpoint substrate: atomic writes, the store's
verify-before-trust loading, and the corruption-degrades-to-recompute
contract (no failure mode may raise out of a resume)."""

from __future__ import annotations

import json
import os

import pytest

from repro.checkpoint import (
    CheckpointStore,
    atomic_write_bytes,
    atomic_write_json,
    canonical_json,
    config_fingerprint,
    sha256_hex,
)
from repro.checkpoint.store import MANIFEST_NAME, MANIFEST_SCHEMA
from repro.core.pipeline import PipelineConfig
from repro.obs import Instrumentation


class TestAtomicWrites:
    def test_write_replaces_and_leaves_no_temp_files(self, tmp_path):
        target = tmp_path / "stage.json"
        atomic_write_bytes(target, b"first")
        atomic_write_bytes(target, b"second")
        assert target.read_bytes() == b"second"
        assert os.listdir(tmp_path) == ["stage.json"]

    def test_json_write_returns_content_checksum(self, tmp_path):
        target = tmp_path / "doc.json"
        digest = atomic_write_json(target, {"b": 2, "a": 1})
        data = target.read_bytes()
        assert data == b'{"a":1,"b":2}\n'
        assert digest == sha256_hex(data)

    def test_canonical_json_is_value_deterministic(self):
        assert canonical_json({"z": [1, 2], "a": None}) == canonical_json(
            dict([("a", None), ("z", [1, 2])])
        )


class TestConfigFingerprint:
    def test_transient_fields_do_not_change_the_fingerprint(self):
        base = PipelineConfig.for_scale("small", seed=3)
        import dataclasses

        varied = dataclasses.replace(
            base,
            workers=8,
            shard_timeout_s=2.0,
            max_shard_retries=5,
            checkpoint_dir="/somewhere",
            resume=True,
        )
        assert config_fingerprint(base) == config_fingerprint(varied)

    def test_output_affecting_fields_change_the_fingerprint(self):
        a = PipelineConfig.for_scale("small", seed=3)
        b = PipelineConfig.for_scale("small", seed=4)
        c = PipelineConfig.for_scale("default", seed=3)
        assert len({config_fingerprint(x) for x in (a, b, c)}) == 3


class TestStoreRoundtrip:
    def test_write_then_load_returns_the_payload(self, tmp_path):
        obs = Instrumentation()
        store = CheckpointStore(tmp_path, "fp", instrumentation=obs)
        payload = {"traces": [[1, 2], [3, 4]], "note": "x"}
        store.write_stage("campaign", payload)
        assert store.has_stage("campaign")
        reloaded = CheckpointStore(tmp_path, "fp", instrumentation=obs)
        assert reloaded.load_stage("campaign") == payload
        snapshot = obs.snapshot()
        assert snapshot.counters["checkpoint.write"] == 1
        assert snapshot.counters["checkpoint.load"] == 1

    def test_absent_stage_loads_as_none(self, tmp_path):
        store = CheckpointStore(tmp_path, "fp")
        assert not store.has_stage("campaign")
        assert store.load_stage("campaign") is None
        assert store.warnings == []

    def test_invalidate_discards_every_stage(self, tmp_path):
        store = CheckpointStore(tmp_path, "fp")
        store.write_stage("topology", {"n": 1})
        store.invalidate("topology changed")
        assert not store.has_stage("topology")
        assert any("topology changed" in w for w in store.warnings)
        reloaded = CheckpointStore(tmp_path, "fp")
        assert reloaded.load_stage("topology") is None


class TestCorruptionDegradesToRecompute:
    def _store_with_stage(self, tmp_path):
        store = CheckpointStore(tmp_path, "fp")
        store.write_stage("cfs", {"interfaces": list(range(10))})
        return store

    def test_flipped_bytes_fail_checksum_and_load_none(self, tmp_path):
        self._store_with_stage(tmp_path)
        stage = tmp_path / "stage-cfs.json"
        stage.write_bytes(stage.read_bytes()[:-3] + b"!!\n")
        obs = Instrumentation()
        store = CheckpointStore(tmp_path, "fp", instrumentation=obs)
        assert store.load_stage("cfs") is None
        assert any("checksum" in w for w in store.warnings)
        assert obs.snapshot().counters["checkpoint.corrupt"] == 1
        # The bad entry is dropped from the manifest: a fresh store
        # no longer lists the stage at all.
        assert not CheckpointStore(tmp_path, "fp").has_stage("cfs")

    def test_missing_stage_file_loads_none(self, tmp_path):
        self._store_with_stage(tmp_path)
        (tmp_path / "stage-cfs.json").unlink()
        store = CheckpointStore(tmp_path, "fp")
        assert store.load_stage("cfs") is None
        assert any("unreadable" in w for w in store.warnings)

    def test_checksum_matching_garbage_layout_loads_none(self, tmp_path):
        store = self._store_with_stage(tmp_path)
        # Rewrite both the stage file and its manifest entry so the
        # checksum passes but the layout is wrong.
        data = canonical_json({"schema": "bogus/9", "stage": "cfs"})
        atomic_write_bytes(tmp_path / "stage-cfs.json", data)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        manifest["stages"]["cfs"]["sha256"] = sha256_hex(data)
        manifest["stages"]["cfs"]["bytes"] = len(data)
        atomic_write_json(tmp_path / MANIFEST_NAME, manifest)
        store = CheckpointStore(tmp_path, "fp")
        assert store.load_stage("cfs") is None
        assert any("unknown layout" in w for w in store.warnings)

    def test_unparseable_manifest_starts_fresh(self, tmp_path):
        self._store_with_stage(tmp_path)
        (tmp_path / MANIFEST_NAME).write_text("{not json", encoding="utf-8")
        store = CheckpointStore(tmp_path, "fp")
        assert not store.has_stage("cfs")
        assert any("unreadable manifest" in w for w in store.warnings)

    def test_unknown_manifest_schema_starts_fresh(self, tmp_path):
        self._store_with_stage(tmp_path)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        manifest["schema"] = "repro/checkpoint-manifest/99"
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))
        store = CheckpointStore(tmp_path, "fp")
        assert not store.has_stage("cfs")
        assert any("unknown schema" in w for w in store.warnings)

    def test_fingerprint_mismatch_discards_the_manifest(self, tmp_path):
        self._store_with_stage(tmp_path)
        store = CheckpointStore(tmp_path, "other-config")
        assert not store.has_stage("cfs")
        assert any("different configuration" in w for w in store.warnings)

    def test_no_corruption_mode_raises(self, tmp_path):
        """The blanket contract: every mutilation loads as None."""
        mutilations = [
            lambda p: (p / "stage-cfs.json").write_bytes(b""),
            lambda p: (p / "stage-cfs.json").write_bytes(b"\x00" * 64),
            lambda p: (p / MANIFEST_NAME).write_text("[]"),
            lambda p: (p / MANIFEST_NAME).write_text(
                json.dumps({"schema": MANIFEST_SCHEMA, "fingerprint": "fp"})
            ),
        ]
        for mutilate in mutilations:
            for item in tmp_path.iterdir():
                item.unlink()
            self._store_with_stage(tmp_path)
            mutilate(tmp_path)
            store = CheckpointStore(tmp_path, "fp")
            assert store.load_stage("cfs") is None
            assert store.warnings, "corruption must be reported"


class TestWarnCallback:
    def test_warn_callback_receives_degradations(self, tmp_path):
        store = CheckpointStore(tmp_path, "fp")
        store.write_stage("cfs", {"x": 1})
        stage = tmp_path / "stage-cfs.json"
        stage.write_bytes(b"garbage")
        seen: list[str] = []
        store = CheckpointStore(tmp_path, "fp", warn=seen.append)
        assert store.load_stage("cfs") is None
        assert seen and "cfs" in seen[0]
