"""Shared fixtures: session-scoped small environments and runs.

Building a topology and running the full pipeline are the expensive
operations; tests share read-only session instances and build private
ones only when they need to mutate.
"""

from __future__ import annotations

import pytest

from repro.core import PipelineConfig, build_environment
from repro.topology import TopologyConfig, build_topology


def pytest_collection_modifyitems(items):
    """Everything under tests/ belongs to the tier-1 correctness suite
    (benchmarks live outside the default testpaths), so ``-m tier1``
    selects exactly what the driver gates on."""
    for item in items:
        item.add_marker(pytest.mark.tier1)


@pytest.fixture(scope="session")
def small_topology():
    """A small deterministic ground-truth Internet."""
    return build_topology(TopologyConfig.small(seed=1))


@pytest.fixture(scope="session")
def small_env():
    """A fully wired small environment (Figure 4 stack)."""
    return build_environment(PipelineConfig.small(seed=3))


@pytest.fixture(scope="session")
def small_run(small_env):
    """One complete small study run: (environment, corpus, CFS result).

    The corpus includes the follow-up traces CFS issued.  Treat all
    three objects as read-only.
    """
    corpus = small_env.run_campaign()
    result = small_env.run_cfs(corpus)
    return small_env, corpus, result
