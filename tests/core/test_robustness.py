"""Failure injection and degraded-input behaviour of the CFS pipeline."""

from __future__ import annotations

import pytest

from repro.core.cfs import CfsConfig, ConstrainedFacilitySearch
from repro.core.facility_db import FacilityDatabase
from repro.core.followup import FollowupPlanner
from repro.core.types import InterfaceStatus
from repro.measurement.campaign import TraceCorpus
from repro.measurement.traceroute import TracerouteConfig, TracerouteEngine
from repro.validation.metrics import unresolved_city_constrained


def empty_facility_db() -> FacilityDatabase:
    return FacilityDatabase(
        as_facilities={},
        ixp_facilities={},
        ixp_members={},
        active_ixps=frozenset(),
        facility_metro={},
        campus={},
    )


class TestDegradedInputs:
    def test_empty_corpus(self, small_env):
        result = small_env.run_cfs(TraceCorpus(), with_followups=False)
        assert result.peering_interfaces_seen == 0
        assert result.resolved_fraction() == 0.0
        assert result.links == []

    def test_empty_facility_database(self, small_env):
        corpus = small_env.run_campaign(seed_offset=400)
        result = small_env.run_cfs(
            corpus,
            facility_db=empty_facility_db(),
            with_followups=False,
            seed_offset=400,
        )
        # Without the IXP prefix table no public peering is detectable
        # and no constraint is derivable: private crossings are seen but
        # every interface stays missing-data.
        assert result.resolved_fraction() == 0.0
        for state in result.interfaces.values():
            assert state.status is InterfaceStatus.MISSING_DATA

    def test_lossy_traceroutes_still_converge(self, small_env):
        lossy_engine = TracerouteEngine(
            small_env.topology,
            forwarder=small_env.engine.forwarder,
            config=TracerouteConfig(hop_loss_prob=0.25),
            seed=401,
        )
        vp = small_env.platforms.atlas.vantage_points[0]
        corpus = TraceCorpus()
        for asn in small_env.target_asns[:3]:
            for dst in small_env.hitlist.targets_for(asn)[:10]:
                corpus.add(lossy_engine.trace(vp.router_id, dst))
        # Plus a broader slice from other probes for diversity.
        for other in small_env.platforms.atlas.vantage_points[1:30]:
            dst = small_env.hitlist.targets_for(small_env.target_asns[0])[0]
            corpus.add(lossy_engine.trace(other.router_id, dst))
        result = small_env.run_cfs(corpus, with_followups=False, seed_offset=402)
        # Loss reduces yield but must not break the pipeline.
        assert result.peering_interfaces_seen > 0

    def test_unroutable_targets_ignored(self, small_env):
        corpus = TraceCorpus()
        engine = small_env.engine
        router = next(iter(small_env.topology.routers))
        corpus.add(engine.trace(router, 1))  # unknown destination
        result = small_env.run_cfs(corpus, with_followups=False, seed_offset=403)
        assert result.peering_interfaces_seen == 0

    def test_no_driver_means_passive(self, small_env):
        corpus = small_env.run_campaign(seed_offset=404)
        search = ConstrainedFacilitySearch(
            facility_db=small_env.facility_db,
            ip_to_asn=small_env.cymru,
            alias_resolver=None,
            driver=None,
            config=CfsConfig(max_iterations=50),
        )
        result = search.run(corpus)
        assert result.followup_traces == 0
        assert result.iterations_run < 50  # quiesces early


class TestCityConstrainedStat:
    def test_fraction_in_unit_interval(self, small_run):
        env, _, result = small_run
        fraction = unresolved_city_constrained(result, env.facility_db)
        assert 0.0 <= fraction <= 1.0

    def test_some_unresolved_are_city_constrained(self, small_run):
        """Section 5 reports ~9%; the phenomenon must be present."""
        env, _, result = small_run
        fraction = unresolved_city_constrained(result, env.facility_db)
        assert fraction > 0.0

    def test_empty_result(self, small_env):
        result = small_env.run_cfs(TraceCorpus(), with_followups=False)
        assert unresolved_city_constrained(result, small_env.facility_db) == 0.0


class TestFollowupStrategies:
    def test_unknown_strategy_rejected(self, small_env):
        with pytest.raises(ValueError):
            FollowupPlanner(small_env.facility_db, strategy="psychic")

    def test_random_strategy_same_candidates_different_order(self, toy_db):
        from repro.core.types import InterfaceState

        state = InterfaceState(address=1, owner_asn=10)
        state.candidates = {1, 2, 5}
        smart = FollowupPlanner(toy_db, strategy="smallest-overlap")
        blind = FollowupPlanner(toy_db, strategy="random")
        smart_targets = {p.target_asn for p in smart.candidates_for(state)}
        blind_targets = {p.target_asn for p in blind.candidates_for(state)}
        assert smart_targets == blind_targets

    def test_random_strategy_runs_end_to_end(self, small_env):
        from dataclasses import replace

        corpus = small_env.run_campaign(seed_offset=405)
        config = replace(
            small_env.config.cfs, max_iterations=8, followup_strategy="random"
        )
        result = small_env.run_cfs(corpus, cfs_config=config, seed_offset=405)
        assert result.followup_traces > 0
        assert result.resolved_fraction() > 0.3


class TestMissingOwnerStat:
    def test_fraction_in_unit_interval(self, small_run):
        from repro.validation import missing_owner_facility_fraction

        env, _, result = small_run
        fraction = missing_owner_facility_fraction(result, env.facility_db)
        assert 0.0 <= fraction <= 1.0

    def test_matches_manual_count(self, small_run):
        from repro.validation import missing_owner_facility_fraction

        env, _, result = small_run
        unresolved = [
            s for s in result.interfaces.values() if s.resolved_facility is None
        ]
        expected = sum(
            1
            for s in unresolved
            if s.owner_asn is None
            or not env.facility_db.facilities_of(s.owner_asn)
        ) / max(1, len(unresolved))
        assert missing_owner_facility_fraction(
            result, env.facility_db
        ) == pytest.approx(expected)

    def test_empty_result(self, small_env):
        from repro.validation import missing_owner_facility_fraction

        result = small_env.run_cfs(TraceCorpus(), with_followups=False)
        assert missing_owner_facility_fraction(result, small_env.facility_db) == 0.0
