"""CFS Steps 3-4 tests: alias propagation and follow-up planning."""

from __future__ import annotations

import pytest

from repro.alias.midar import AliasSets
from repro.core.alias_constraints import propagate_alias_constraints
from repro.core.followup import FollowupPlanner
from repro.core.types import InterfaceState, InterfaceStatus


def state(address, candidates=None, owner=10, status=InterfaceStatus.UNRESOLVED_LOCAL, remote=False):
    s = InterfaceState(address=address, owner_asn=owner)
    if candidates is not None:
        s.candidates = set(candidates)
    s.status = status
    s.remote = remote
    return s


class TestAliasPropagation:
    def test_figure5_worked_example(self):
        """The paper's Figure 5: A.1 -> {f1, f2}, A.3 -> {f1, f2, f3}
        with a second constraint {f1, f2}; intersecting across aliases
        pins both to the common facility."""
        states = {
            1: state(1, {2, 5}),   # A.1 via trace 1: facilities 2 or 5
            3: state(3, {1, 2}),   # A.3 via trace 2: facilities 1 or 2
        }
        aliases = AliasSets.from_groups([{1, 3}])
        narrowed = propagate_alias_constraints(states, aliases)
        assert narrowed == 2
        assert states[1].candidates == {2}
        assert states[3].candidates == {2}

    def test_unconstrained_alias_inherits(self):
        states = {1: state(1, {7}), 2: state(2, None)}
        aliases = AliasSets.from_groups([{1, 2}])
        propagate_alias_constraints(states, aliases)
        assert states[2].candidates == {7}

    def test_conflict_leaves_states_and_counts(self):
        states = {1: state(1, {1}), 2: state(2, {9})}
        aliases = AliasSets.from_groups([{1, 2}])
        narrowed = propagate_alias_constraints(states, aliases)
        assert narrowed == 0
        assert states[1].candidates == {1}
        assert states[2].candidates == {9}
        assert states[1].conflicts == 1 and states[2].conflicts == 1

    def test_alias_absent_from_states_ignored(self):
        states = {1: state(1, {1, 2})}
        aliases = AliasSets.from_groups([{1, 99}])
        assert propagate_alias_constraints(states, aliases) == 0

    def test_remote_flag_spreads(self):
        states = {1: state(1, {4, 5}, remote=True), 2: state(2, {4, 5})}
        aliases = AliasSets.from_groups([{1, 2}])
        propagate_alias_constraints(states, aliases)
        assert states[2].remote

    def test_no_alias_sets_noop(self):
        states = {1: state(1, {1, 2})}
        assert propagate_alias_constraints(states, AliasSets()) == 0


class TestFollowupPlanner:
    def test_candidates_prefer_strict_subsets(self, toy_db):
        planner = FollowupPlanner(toy_db)
        # AS 10 unresolved over {1, 2, 5}: ASes 40 ({5}) and 50 ({1})
        # are strict subsets; AS 20 ({2, 4}) merely overlaps.
        unresolved = state(1, {1, 2, 5}, owner=10)
        plans = planner.candidates_for(unresolved)
        assert plans
        assert plans[0].target_asn in (40, 50)
        assert plans[0].strict_subset
        subset_targets = {p.target_asn for p in plans if p.strict_subset}
        assert subset_targets == {40, 50}
        # Strict subsets outrank the mere-overlap target.
        rank_20 = next(i for i, p in enumerate(plans) if p.target_asn == 20)
        assert rank_20 >= 2

    def test_smaller_overlap_ranks_earlier(self, toy_db):
        planner = FollowupPlanner(toy_db)
        unresolved = state(1, {2, 4}, owner=20)
        plans = planner.candidates_for(unresolved)
        ranks = {plan.target_asn: index for index, plan in enumerate(plans)}
        # AS 30 has zero overlap with {2,4} -> not a candidate at all.
        assert 30 not in ranks

    def test_owner_not_its_own_target(self, toy_db):
        planner = FollowupPlanner(toy_db)
        plans = planner.candidates_for(state(1, {1, 2, 5}, owner=10))
        assert all(plan.target_asn != 10 for plan in plans)

    def test_exclude_set_respected(self, toy_db):
        planner = FollowupPlanner(toy_db)
        unresolved = state(1, {1, 2, 5}, owner=10)
        plans = planner.candidates_for(unresolved, exclude={50})
        assert all(plan.target_asn != 50 for plan in plans)

    def test_unconstrained_state_has_no_plans(self, toy_db):
        planner = FollowupPlanner(toy_db)
        assert planner.candidates_for(state(1, None)) == []

    def test_plan_budget(self, toy_db):
        planner = FollowupPlanner(toy_db)
        states = {
            1: state(1, {1, 2, 5}, owner=10),
            2: state(2, {2, 4}, owner=20),
            3: state(3, {1, 2}, owner=10),
        }
        plans = planner.plan(states, set(), budget=2)
        assert len(plans) <= 2

    def test_plan_skips_probed_pairs(self, toy_db):
        planner = FollowupPlanner(toy_db)
        states = {1: state(1, {1, 2, 5}, owner=10)}
        first = planner.plan(states, set(), budget=5)
        assert first
        probed = {(p.near_asn, p.target_asn) for p in first}
        second = planner.plan(states, probed, budget=5)
        assert not {(p.near_asn, p.target_asn) for p in second} & probed

    def test_plan_prioritises_nearly_converged(self, toy_db):
        planner = FollowupPlanner(toy_db)
        states = {
            1: state(1, {1, 2, 5}, owner=10),
            2: state(2, {1, 2}, owner=10),
        }
        plans = planner.plan(states, set(), budget=1)
        assert plans[0].near_address == 2

    def test_resolved_states_not_planned(self, toy_db):
        planner = FollowupPlanner(toy_db)
        states = {
            1: state(1, {1}, status=InterfaceStatus.RESOLVED),
        }
        assert planner.plan(states, set(), budget=5) == []
