"""CFS loop tests: convergence, soundness, ablation switches, finalize."""

from __future__ import annotations

import pytest

from repro.core.cfs import CfsConfig, ConstrainedFacilitySearch
from repro.core.facility_db import FacilityDatabase
from repro.core.types import InferredType, InterfaceStatus, PeeringKind
from repro.experiments.context import clone_corpus
from repro.validation.metrics import score_interfaces


class TestConvergence:
    def test_resolved_counts_monotonic(self, small_run):
        _, _, result = small_run
        resolved = [stats.resolved for stats in result.history]
        assert all(b >= a for a, b in zip(resolved, resolved[1:]))

    def test_substantial_resolution(self, small_run):
        _, _, result = small_run
        assert result.resolved_fraction() > 0.5

    def test_totals_consistent(self, small_run):
        _, _, result = small_run
        for stats in result.history:
            assert (
                stats.resolved
                + stats.unresolved_local
                + stats.unresolved_remote
                + stats.missing_data
                == stats.total_interfaces
            )

    def test_history_matches_iterations(self, small_run):
        _, _, result = small_run
        assert len(result.history) == result.iterations_run
        assert result.history[-1].iteration == result.iterations_run

    def test_followups_issued(self, small_run):
        _, _, result = small_run
        assert result.followup_traces > 0

    def test_diminishing_returns(self, small_run):
        """Early iterations resolve more than late ones (Figure 7)."""
        _, _, result = small_run
        history = result.history
        if len(history) < 12:
            pytest.skip("run converged too quickly to compare phases")
        early = history[4].resolved - history[0].resolved
        late = history[-1].resolved - history[-5].resolved
        assert early >= late


class _PerfectMapping:
    """An IP-to-ASN oracle with no longest-prefix errors."""

    def __init__(self, topology):
        self._topology = topology

    def lookup(self, address):
        if address not in self._topology.interfaces:
            return None
        return self._topology.true_asn_of_address(address)


class TestSoundness:
    def test_perfect_data_perfect_inferences(self, small_env):
        """The CFS soundness invariant: with a complete facility database
        *and* error-free IP-to-ASN mapping, every constraint set contains
        the truth, so every resolved interface resolves correctly."""
        from repro.core.cfs import ConstrainedFacilitySearch

        truth_db = FacilityDatabase.from_ground_truth(small_env.topology)
        corpus = small_env.run_campaign(seed_offset=70)
        search = ConstrainedFacilitySearch(
            facility_db=truth_db,
            ip_to_asn=_PerfectMapping(small_env.topology),
            alias_resolver=small_env.new_midar(70),
            driver=small_env.new_driver(71),
            remote_detector=small_env.remote_detector(),
            config=CfsConfig(max_iterations=30),
        )
        result = search.run(corpus)
        report = score_interfaces(small_env.topology, result)
        assert report.total > 100
        assert report.facility_accuracy > 0.98

    def test_perfect_facility_data_realistic_mapping(self, small_env):
        """With complete facility data but real longest-prefix mapping,
        near-side-only constraints keep precision near-perfect: the
        unrepairable shared /31s (Section 4.1) shift boundaries and cost
        coverage, not correctness."""
        truth_db = FacilityDatabase.from_ground_truth(small_env.topology)
        corpus = small_env.run_campaign(seed_offset=72)
        result = small_env.run_cfs(
            corpus, facility_db=truth_db, seed_offset=72
        )
        report = score_interfaces(small_env.topology, result)
        assert report.facility_accuracy > 0.97

    def test_noisy_data_high_city_accuracy(self, small_run):
        env, _, result = small_run
        report = score_interfaces(env.topology, result)
        assert report.facility_accuracy > 0.7
        assert report.city_accuracy > 0.73


class TestRemoteInference:
    def test_remote_peers_detected(self, small_run):
        env, _, result = small_run
        truly_remote = {
            port.address
            for ixp in env.topology.ixps.values()
            for ports in ixp.member_ports.values()
            for port in ports
            if port.is_remote
        }
        flagged = {
            address for address, state in result.interfaces.items() if state.remote
        }
        observed_remote = truly_remote & set(result.interfaces)
        if not observed_remote:
            pytest.skip("no remote ports observed in this seed")
        recall = len(observed_remote & flagged) / len(observed_remote)
        assert recall > 0.6

    def test_remote_flags_mostly_correct(self, small_run):
        env, _, result = small_run
        flagged_ports = [
            address
            for address, state in result.interfaces.items()
            if state.remote and env.topology.ixp_of_address(address) is not None
        ]
        if len(flagged_ports) < 3:
            pytest.skip("too few remote-flagged ports in this seed")
        correct = 0
        for address in flagged_ports:
            iface = env.topology.interfaces[address]
            ixp = env.topology.ixps[iface.ixp_id]
            if ixp.is_remote_member(env.topology.routers[iface.router_id].asn):
                correct += 1
        assert correct / len(flagged_ports) > 0.5


class TestAblationSwitches:
    def _run(self, env, corpus, **config_overrides):
        from dataclasses import replace

        config = replace(env.config.cfs, max_iterations=25, **config_overrides)
        return env.run_cfs(
            clone_corpus(corpus),
            cfs_config=config,
            with_followups=config.use_followups,
            seed_offset=80,
        )

    def test_no_followups_runs_passively(self, small_run):
        env, corpus, _ = small_run
        result = self._run(env, corpus, use_followups=False)
        assert result.followup_traces == 0
        # Passive runs converge (quiesce) in very few iterations.
        assert result.iterations_run <= 5

    def test_followups_add_resolution(self, small_run):
        """The full run resolves at least as many interfaces as a
        passive replay over the same (follow-up-inclusive) corpus — the
        passive replay inherits the full run's probing but cannot add
        its own."""
        env, corpus, full_result = small_run
        passive = self._run(env, corpus, use_followups=False)
        assert len(full_result.resolved_interfaces()) >= len(
            passive.resolved_interfaces()
        )

    def test_no_alias_resolution_still_works(self, small_run):
        env, corpus, _ = small_run
        result = env.run_cfs(
            clone_corpus(corpus),
            with_alias_resolution=False,
            with_followups=False,
            seed_offset=81,
        )
        assert result.resolved_fraction() > 0.2


class TestFinalization:
    def test_links_cover_both_kinds(self, small_run):
        _, _, result = small_run
        kinds = {link.kind for link in result.links}
        assert kinds == {PeeringKind.PUBLIC, PeeringKind.PRIVATE}

    def test_public_links_have_exchange(self, small_run):
        _, _, result = small_run
        for link in result.links:
            if link.kind is PeeringKind.PUBLIC:
                assert link.ixp_id is not None
            else:
                assert link.ixp_id is None

    def test_inferred_types_cover_all_categories(self, small_run):
        _, _, result = small_run
        types = {link.inferred_type for link in result.links}
        assert InferredType.PUBLIC_LOCAL in types
        assert InferredType.CROSS_CONNECT in types

    def test_near_facility_matches_state(self, small_run):
        _, _, result = small_run
        for link in result.links:
            state = result.interfaces.get(link.near_address)
            if state is not None and state.resolved_facility is not None:
                assert link.near_facility == state.resolved_facility

    def test_statuses_exposed(self, small_run):
        _, _, result = small_run
        resolved = result.states_with_status(InterfaceStatus.RESOLVED)
        assert len(resolved) == len(result.resolved_interfaces())
