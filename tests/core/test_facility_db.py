"""Facility database tests: assembly, queries, degradation."""

from __future__ import annotations

import pytest

from repro.core.facility_db import FacilityDatabase
from repro.topology.addressing import ip_to_int

from .conftest import IXP_LAN


class TestToyQueries:
    def test_facilities_of(self, toy_db):
        assert toy_db.facilities_of(10) == frozenset({1, 2, 5})
        assert toy_db.facilities_of(999) == frozenset()

    def test_facilities_of_ixp(self, toy_db):
        assert toy_db.facilities_of_ixp(100) == frozenset({1, 2, 4})
        assert toy_db.facilities_of_ixp(999) == frozenset()

    def test_members_and_ixps_of(self, toy_db):
        assert toy_db.members_of(100) == frozenset({10, 20, 30, 40})
        assert toy_db.ixps_of(10) == frozenset({100})
        assert toy_db.ixps_of(50) == frozenset()

    def test_ixp_of_address(self, toy_db):
        assert toy_db.ixp_of_address(IXP_LAN.first + 5) == 100
        assert toy_db.ixp_of_address(ip_to_int("10.0.0.1")) is None

    def test_campus_of(self, toy_db):
        assert toy_db.campus_of(1) == frozenset({1, 2})
        assert toy_db.campus_of(3) == frozenset({3})
        assert toy_db.campus_of(42) == frozenset({42})

    def test_metro_queries(self, toy_db):
        assert toy_db.metro_of(1) == "Frankfurt"
        assert toy_db.metro_of(42) is None
        assert toy_db.metros_of({1, 4}) == {"Frankfurt", "London"}

    def test_all_known_facilities(self, toy_db):
        assert toy_db.all_known_facilities() == frozenset({1, 2, 3, 4, 5})


class TestDegradation:
    def test_without_facilities_removes_everywhere(self, toy_db):
        degraded = toy_db.without_facilities({2})
        assert 2 not in degraded.facilities_of(10)
        assert 2 not in degraded.facilities_of_ixp(100)
        assert degraded.metro_of(2) is None
        assert 2 not in degraded.campus_of(1)

    def test_without_facilities_leaves_original_intact(self, toy_db):
        toy_db.without_facilities({1, 2, 3})
        assert toy_db.facilities_of(10) == frozenset({1, 2, 5})

    def test_remove_everything(self, toy_db):
        degraded = toy_db.without_facilities(set(toy_db.all_known_facilities()))
        assert degraded.facilities_of(10) == frozenset()
        assert degraded.facilities_of_ixp(100) == frozenset()


class TestAssembly:
    def test_assembled_from_environment(self, small_env):
        """The assembled database is a sound subset of ground truth plus
        the detailed-website augmentation."""
        database = small_env.facility_db
        topology = small_env.topology
        for asn, facilities in database.as_facilities.items():
            assert facilities <= frozenset(
                topology.ases[asn].facility_ids
            ), asn

    def test_assembled_ixp_facilities_subset(self, small_env):
        database = small_env.facility_db
        topology = small_env.topology
        for ixp_id, facilities in database.ixp_facilities.items():
            assert facilities <= frozenset(topology.ixps[ixp_id].facility_ids)

    def test_only_active_ixps_have_prefixes(self, small_env):
        database = small_env.facility_db
        topology = small_env.topology
        for ixp in topology.ixps.values():
            port_address = None
            for ports in ixp.member_ports.values():
                for port in ports:
                    port_address = port.address
                    break
                break
            lan_address = ixp.peering_lans[0].first + 1
            if ixp.active:
                # Active exchange LANs are recognisable (possibly absent
                # for an exchange that failed the noisy filter).
                assert database.ixp_of_address(lan_address) in (ixp.ixp_id, None)
            else:
                assert database.ixp_of_address(lan_address) is None

    def test_noc_pages_fill_pdb_gaps(self, small_env):
        """Every NOC-listed facility is in the assembled map even when
        PeeringDB omits it."""
        database = small_env.facility_db
        noc = small_env.noc
        pdb_map = small_env.peeringdb.as_facility_map()
        gained = 0
        for asn in noc.asns_with_pages():
            page = noc.page_for(asn)
            for facility_id in page.facility_ids():
                assert facility_id in database.facilities_of(asn)
                if facility_id not in pdb_map.get(asn, set()):
                    gained += 1
        assert gained > 0

    def test_from_ground_truth_complete(self, small_topology):
        database = FacilityDatabase.from_ground_truth(small_topology)
        for asn, record in small_topology.ases.items():
            assert database.facilities_of(asn) == frozenset(record.facility_ids)
        for ixp in small_topology.ixps.values():
            if ixp.active:
                assert database.facilities_of_ixp(ixp.ixp_id) == frozenset(
                    ixp.facility_ids
                )
                assert ixp.ixp_id in database.active_ixps
            else:
                assert ixp.ixp_id not in database.active_ixps

    def test_metros_canonicalised(self, small_env):
        """Every facility metro in the assembled DB is a canonical
        catalogue name, despite alias spellings in PeeringDB."""
        catalogue = small_env.topology.metros
        for facility_id, metro in small_env.facility_db.facility_metro.items():
            resolved = catalogue.get(metro)
            assert resolved is not None and resolved.name == metro
