"""Core record-type tests: constraint semantics and result helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import (
    CfsResult,
    InferredType,
    InterfaceState,
    InterfaceStatus,
    IterationStats,
    ObservedPeering,
    PeeringKind,
)

facility_sets = st.sets(st.integers(min_value=0, max_value=20), min_size=1, max_size=8)


class TestInterfaceState:
    def test_first_constraint_initialises(self):
        state = InterfaceState(address=1)
        assert state.apply_constraint({1, 2, 3})
        assert state.candidates == {1, 2, 3}

    def test_intersection_narrows(self):
        state = InterfaceState(address=1)
        state.apply_constraint({1, 2, 3})
        assert state.apply_constraint({2, 3, 4})
        assert state.candidates == {2, 3}

    def test_empty_constraint_ignored(self):
        state = InterfaceState(address=1)
        state.apply_constraint({1, 2})
        assert not state.apply_constraint(set())
        assert state.candidates == {1, 2}

    def test_conflict_rejected_and_counted(self):
        state = InterfaceState(address=1)
        state.apply_constraint({1, 2})
        assert not state.apply_constraint({3, 4})
        assert state.candidates == {1, 2}
        assert state.conflicts == 1

    def test_identical_constraint_not_a_change(self):
        state = InterfaceState(address=1)
        state.apply_constraint({1, 2})
        assert not state.apply_constraint({1, 2})

    def test_resolved_facility(self):
        state = InterfaceState(address=1)
        assert state.resolved_facility is None
        state.apply_constraint({5, 6})
        assert state.resolved_facility is None
        state.apply_constraint({5})
        assert state.resolved_facility == 5

    @given(st.lists(facility_sets, min_size=1, max_size=10))
    @settings(max_examples=200)
    def test_candidates_only_shrink_and_never_empty(self, constraints):
        state = InterfaceState(address=1)
        previous: set[int] | None = None
        for constraint in constraints:
            state.apply_constraint(constraint)
            assert state.candidates is not None
            assert len(state.candidates) >= 1
            if previous is not None:
                assert state.candidates <= previous
            previous = set(state.candidates)

    @given(st.lists(facility_sets, min_size=1, max_size=10))
    @settings(max_examples=200)
    def test_common_element_survives(self, constraints):
        """If every constraint contains facility 0, it is never lost —
        the soundness core of CFS with complete data."""
        state = InterfaceState(address=1)
        for constraint in constraints:
            state.apply_constraint(constraint | {0})
        assert state.candidates is not None
        assert 0 in state.candidates


class TestObservedPeering:
    def _observation(self, **overrides):
        fields = dict(
            kind=PeeringKind.PUBLIC,
            near_address=10,
            near_asn=1,
            far_asn=2,
            far_address=20,
            ixp_id=3,
            ixp_address=15,
        )
        fields.update(overrides)
        return ObservedPeering(**fields)

    def test_key_identity(self):
        a = self._observation()
        b = self._observation(min_rtt_step_ms=5.0, observations=4)
        assert a.key() == b.key()

    def test_key_distinguishes_ixp(self):
        assert self._observation().key() != self._observation(ixp_id=4).key()

    def test_private_key_includes_far_address(self):
        a = self._observation(kind=PeeringKind.PRIVATE, ixp_id=None, ixp_address=None)
        b = self._observation(
            kind=PeeringKind.PRIVATE, ixp_id=None, ixp_address=None, far_address=21
        )
        assert a.key() != b.key()

    def test_public_key_ignores_far_address(self):
        a = self._observation(far_address=20)
        b = self._observation(far_address=21)
        assert a.key() == b.key()


class TestIterationStats:
    def test_resolved_fraction(self):
        stats = IterationStats(
            iteration=1,
            total_interfaces=10,
            resolved=4,
            unresolved_local=3,
            unresolved_remote=1,
            missing_data=2,
            followups_issued=0,
        )
        assert stats.resolved_fraction == pytest.approx(0.4)

    def test_zero_interfaces(self):
        stats = IterationStats(1, 0, 0, 0, 0, 0, 0)
        assert stats.resolved_fraction == 0.0


class TestCfsResult:
    def _result(self):
        states = {
            1: InterfaceState(address=1, candidates={5}, status=InterfaceStatus.RESOLVED),
            2: InterfaceState(
                address=2, candidates={5, 6}, status=InterfaceStatus.UNRESOLVED_LOCAL
            ),
        }
        return CfsResult(
            interfaces=states,
            links=[],
            history=[],
            iterations_run=3,
            followup_traces=0,
            peering_interfaces_seen=2,
        )

    def test_resolved_interfaces(self):
        result = self._result()
        assert result.resolved_interfaces() == {1: 5}

    def test_resolved_fraction(self):
        assert self._result().resolved_fraction() == pytest.approx(0.5)

    def test_states_with_status(self):
        result = self._result()
        assert len(result.states_with_status(InterfaceStatus.RESOLVED)) == 1
        assert len(result.states_with_status(InterfaceStatus.MISSING_DATA)) == 0

    def test_empty_result(self):
        empty = CfsResult(
            interfaces={},
            links=[],
            history=[],
            iterations_run=0,
            followup_traces=0,
            peering_interfaces_seen=0,
        )
        assert empty.resolved_fraction() == 0.0
