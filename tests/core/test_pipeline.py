"""Pipeline assembly tests: environment wiring and target selection."""

from __future__ import annotations

import pytest

from repro.core.pipeline import PipelineConfig, run_pipeline, select_targets
from repro.topology import ASRole


class TestEnvironmentWiring:
    def test_components_share_one_topology(self, small_env):
        assert small_env.engine.topology is small_env.topology
        for platform in small_env.platforms.all_platforms():
            assert platform.engine is small_env.engine

    def test_target_selection(self, small_env):
        config = small_env.config
        targets = small_env.target_asns
        roles = [small_env.topology.ases[asn].role for asn in targets]
        n_content = sum(1 for role in roles if role is ASRole.CONTENT)
        assert n_content == min(
            config.n_content_targets,
            sum(
                1
                for a in small_env.topology.ases.values()
                if a.role is ASRole.CONTENT
            ),
        )
        assert all(
            role in (ASRole.CONTENT, ASRole.TIER1, ASRole.TRANSIT)
            for role in roles
        )

    def test_select_targets_prefers_tier1(self, small_topology):
        targets = select_targets(small_topology, 0, 4)
        roles = [small_topology.ases[asn].role for asn in targets]
        assert roles[0] is ASRole.TIER1

    def test_facility_db_assembled(self, small_env):
        assert small_env.facility_db.as_facilities
        assert small_env.facility_db.active_ixps

    def test_platform_list_filtering(self, small_env):
        all_platforms = small_env.platform_list(None)
        assert len(all_platforms) == 4
        only_atlas = small_env.platform_list(("ripe-atlas",))
        assert [p.name for p in only_atlas] == ["ripe-atlas"]

    def test_remote_detector_bound_from_rtt_model(self, small_env):
        detector = small_env.remote_detector()
        assert detector.metro_local_bound_ms == pytest.approx(
            small_env.rtt_model.metro_local_bound_ms()
        )


class TestCampaign:
    def test_platform_filter_restricts_corpus(self, small_env):
        corpus = small_env.run_campaign(("ripe-atlas",), seed_offset=90)
        platforms = {trace.platform for trace in corpus.traces}
        assert platforms == {"ripe-atlas"}

    def test_campaign_covers_targets(self, small_env):
        corpus = small_env.run_campaign(seed_offset=91)
        probed_dsts = {trace.dst_address for trace in corpus.traces}
        for asn in small_env.target_asns:
            targets = set(small_env.hitlist.targets_for(asn))
            assert targets & probed_dsts


class TestRunPipeline:
    def test_end_to_end(self):
        result = run_pipeline(PipelineConfig.small(seed=99))
        assert result.cfs_result.peering_interfaces_seen > 100
        assert 0.3 < result.cfs_result.resolved_fraction() <= 1.0
        assert result.topology is result.environment.topology
