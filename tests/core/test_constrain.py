"""CFS Step 2 tests: every branch of the initial facility search."""

from __future__ import annotations

import pytest

from repro.core.constrain import InitialFacilitySearch
from repro.core.remote import RemotePeeringDetector
from repro.core.types import (
    InferredType,
    InterfaceStatus,
    ObservedPeering,
    PeeringKind,
)

from .conftest import A_SIDE, B_P2P, B_PORT


def public_obs(near_asn, far_asn, rtt=0.5, observations=2):
    return ObservedPeering(
        kind=PeeringKind.PUBLIC,
        near_address=A_SIDE,
        near_asn=near_asn,
        far_asn=far_asn,
        far_address=None,
        ixp_id=100,
        ixp_address=B_PORT,
        min_rtt_step_ms=rtt,
        observations=observations,
    )


def private_obs(near_asn, far_asn, rtt=0.3, observations=2):
    return ObservedPeering(
        kind=PeeringKind.PRIVATE,
        near_address=A_SIDE,
        near_asn=near_asn,
        far_asn=far_asn,
        far_address=B_P2P,
        min_rtt_step_ms=rtt,
        observations=observations,
    )


@pytest.fixture()
def search(toy_db):
    return InitialFacilitySearch(
        toy_db, RemotePeeringDetector(metro_local_bound_ms=3.0)
    )


@pytest.fixture()
def mirror_search(toy_db):
    """A search with the (non-default) far-side mirror enabled."""
    return InitialFacilitySearch(
        toy_db,
        RemotePeeringDetector(metro_local_bound_ms=3.0),
        constrain_private_far_side=True,
    )


class TestPublicNearSide:
    def test_multiple_common_facilities(self, search, toy_db):
        states = {}
        search.apply(public_obs(near_asn=10, far_asn=20), states)
        state = states[A_SIDE]
        # F(10) = {1,2,5}, F(IXP) = {1,2,4} -> {1,2}: unresolved local.
        assert state.candidates == {1, 2}
        assert state.status is InterfaceStatus.UNRESOLVED_LOCAL
        assert state.inferred_type is InferredType.PUBLIC_LOCAL
        assert 100 in state.constrained_by_ixps

    def test_single_common_facility_resolves(self, search, toy_db):
        states = {}
        search.apply(public_obs(near_asn=30, far_asn=20), states)
        state = states[A_SIDE]
        # F(30) = {3}... no common with {1,2,4} -> remote branch; use 20
        # instead whose common set is {2,4}.  Re-run with 20 vs 10.
        states = {}
        search.apply(public_obs(near_asn=20, far_asn=10), states)
        state = states[A_SIDE]
        assert state.candidates == {2, 4}

    def test_no_common_low_rtt_is_missing_data(self, search):
        states = {}
        search.apply(public_obs(near_asn=40, far_asn=20, rtt=0.5), states)
        state = states[A_SIDE]
        assert state.status is InterfaceStatus.MISSING_DATA
        assert state.candidates is None

    def test_no_common_high_rtt_is_remote(self, search):
        states = {}
        search.apply(public_obs(near_asn=40, far_asn=20, rtt=12.0), states)
        state = states[A_SIDE]
        assert state.remote
        assert state.candidates == {5}  # all of F(40)
        # A remote peer with a single-building footprint is resolved.
        assert state.status is InterfaceStatus.RESOLVED
        assert state.inferred_type is InferredType.PUBLIC_REMOTE

    def test_no_common_high_rtt_multi_facility_stays_unresolved(self, search):
        states = {}
        observation = ObservedPeering(
            kind=PeeringKind.PUBLIC,
            near_address=A_SIDE,
            near_asn=30,
            far_asn=20,
            far_address=None,
            ixp_id=999,  # an exchange the database knows nothing about
            ixp_address=B_PORT,
            min_rtt_step_ms=12.0,
            observations=2,
        )
        search.apply(observation, states)
        # Unknown fabric: no facilities for the exchange, missing data.
        assert states[A_SIDE].status is InterfaceStatus.MISSING_DATA

    def test_unknown_as_is_missing_data(self, search):
        states = {}
        search.apply(public_obs(near_asn=60, far_asn=20), states)
        assert states[A_SIDE].status is InterfaceStatus.MISSING_DATA


class TestPublicFarSide:
    def test_far_port_constrained(self, search):
        states = {}
        search.apply(public_obs(near_asn=10, far_asn=20), states)
        port = states[B_PORT]
        # F(20) = {2,4} and F(IXP) = {1,2,4} -> {2,4}.
        assert port.candidates == {2, 4}
        assert port.owner_asn == 20

    def test_far_port_single_candidate_resolves(self, search):
        states = {}
        search.apply(public_obs(near_asn=10, far_asn=30), states)
        port = states[B_PORT]
        assert port.candidates is None or port.candidates == set()
        # F(30) = {3}: no common facility with the exchange; the far
        # port stays unconstrained unless the delay marks it remote.
        states = {}
        search.apply(public_obs(near_asn=10, far_asn=30, rtt=15.0), states)
        port = states[B_PORT]
        assert port.remote
        assert port.candidates == {3}


class TestPrivate:
    def test_cross_connect_same_building(self, search):
        states = {}
        search.apply(private_obs(near_asn=10, far_asn=50), states)
        state = states[A_SIDE]
        # F(10) = {1,2,5}; AS 50 sits in facility 1, campus {1,2}.
        assert state.candidates == {1, 2}
        assert state.inferred_type is InferredType.CROSS_CONNECT

    def test_cross_connect_campus_reach(self, search):
        states = {}
        # AS 50 in facility 1; near AS 20 in {2,4}; campus(2)={1,2}:
        # facility 2 reaches 1 over the campus.
        search.apply(private_obs(near_asn=20, far_asn=50), states)
        state = states[A_SIDE]
        assert state.candidates == {2}
        assert state.status is InterfaceStatus.RESOLVED

    def test_far_side_not_constrained_by_default(self, search):
        """The paper's Step 2 constrains only the near interface."""
        states = {}
        search.apply(private_obs(near_asn=10, far_asn=50), states)
        assert B_P2P not in states

    def test_far_side_mirror_constraint_when_enabled(self, mirror_search):
        states = {}
        mirror_search.apply(private_obs(near_asn=10, far_asn=50), states)
        far = states[B_P2P]
        assert far.owner_asn == 50
        assert far.candidates == {1}

    def test_tethering_when_no_common_building(self, search):
        states = {}
        # 30 ({3}) and 40 ({5}) share no building or campus, but both
        # are members of IXP 100.
        search.apply(private_obs(near_asn=30, far_asn=40, rtt=0.4), states)
        state = states[A_SIDE]
        assert state.inferred_type is InferredType.TETHERING
        assert state.candidates == {3}

    def test_remote_private_high_rtt(self, search, toy_db):
        states = {}
        # 50 is not an IXP member; no common building with 40.
        search.apply(private_obs(near_asn=50, far_asn=40, rtt=20.0), states)
        state = states[A_SIDE]
        assert state.remote
        assert state.candidates == {1}

    def test_missing_data_when_unknown_peer(self, search):
        states = {}
        search.apply(private_obs(near_asn=10, far_asn=60), states)
        assert states[A_SIDE].status is InterfaceStatus.MISSING_DATA


class TestStateManagement:
    def test_apply_idempotent(self, search):
        states = {}
        observation = public_obs(near_asn=10, far_asn=20)
        assert search.apply(observation, states)
        assert not search.apply(observation, states)

    def test_multiple_observations_intersect(self, search):
        states = {}
        search.apply(public_obs(near_asn=10, far_asn=20), states)  # {1,2}
        search.apply(private_obs(near_asn=10, far_asn=50), states)  # {1,2}
        # Now a cross-connect with 20 restricted to campus: F(10) with
        # campus & F(20)={2,4}: facilities {1,2} (campus 1-2) and 5? no.
        search.apply(private_obs(near_asn=10, far_asn=20), states)
        state = states[A_SIDE]
        assert state.candidates == {1, 2}

    def test_refresh_statuses(self, search):
        states = {}
        search.apply(public_obs(near_asn=10, far_asn=20), states)
        states[A_SIDE].candidates = {1}
        search.refresh_statuses(states)
        assert states[A_SIDE].status is InterfaceStatus.RESOLVED

    def test_state_for_reuses_and_fills_owner(self, search):
        states = {}
        state = search.state_for(states, 123, 10)
        state.owner_asn = None
        again = search.state_for(states, 123, 20)
        assert again is state
        assert again.owner_asn == 20
