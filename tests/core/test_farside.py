"""Far-end resolution and link finalisation tests (toy scenarios)."""

from __future__ import annotations

import pytest

from repro.core.farside import LinkFinalizer
from repro.core.proximity import SwitchProximityModel
from repro.core.types import (
    InferredType,
    InterfaceState,
    InterfaceStatus,
    ObservedPeering,
    PeeringKind,
)

from .conftest import A_SIDE, B_P2P, B_PORT


def public_obs(near_asn=10, far_asn=20, ixp_id=100):
    return ObservedPeering(
        kind=PeeringKind.PUBLIC,
        near_address=A_SIDE,
        near_asn=near_asn,
        far_asn=far_asn,
        far_address=None,
        ixp_id=ixp_id,
        ixp_address=B_PORT,
    )


def private_obs(near_asn=10, far_asn=50):
    return ObservedPeering(
        kind=PeeringKind.PRIVATE,
        near_address=A_SIDE,
        near_asn=near_asn,
        far_asn=far_asn,
        far_address=B_P2P,
    )


def state(address, candidates, owner, inferred=InferredType.UNKNOWN, remote=False):
    s = InterfaceState(address=address, owner_asn=owner)
    s.candidates = set(candidates)
    s.status = (
        InterfaceStatus.RESOLVED
        if len(candidates) == 1
        else InterfaceStatus.UNRESOLVED_LOCAL
    )
    s.inferred_type = inferred
    s.remote = remote
    return s


class TestPublicFinalization:
    def test_resolved_port_wins(self, toy_db):
        finalizer = LinkFinalizer(toy_db)
        observation = public_obs()
        states = {
            A_SIDE: state(A_SIDE, {1}, 10, InferredType.PUBLIC_LOCAL),
            B_PORT: state(B_PORT, {4}, 20),
        }
        links = finalizer.finalize({observation.key(): observation}, states)
        assert links[0].far_facility == 4
        assert links[0].inferred_type is InferredType.PUBLIC_LOCAL

    def test_proximity_used_for_ambiguous_port(self, toy_db):
        proximity = SwitchProximityModel()
        proximity.learn(100, 1, 2)
        proximity.learn(100, 1, 2)
        proximity.learn(100, 1, 4)
        finalizer = LinkFinalizer(toy_db, proximity)
        observation = public_obs()
        states = {
            A_SIDE: state(A_SIDE, {1}, 10, InferredType.PUBLIC_LOCAL),
            B_PORT: state(B_PORT, {2, 4}, 20),
        }
        links = finalizer.finalize({observation.key(): observation}, states)
        assert links[0].far_facility == 2

    def test_proximity_disabled(self, toy_db):
        proximity = SwitchProximityModel()
        proximity.learn(100, 1, 2)
        proximity.learn(100, 1, 2)
        finalizer = LinkFinalizer(toy_db, proximity)
        observation = public_obs()
        states = {
            A_SIDE: state(A_SIDE, {1}, 10, InferredType.PUBLIC_LOCAL),
            B_PORT: state(B_PORT, {2, 4}, 20),
        }
        links = finalizer.finalize(
            {observation.key(): observation}, states, use_proximity=False
        )
        assert links[0].far_facility is None

    def test_remote_near_side_typed_remote(self, toy_db):
        finalizer = LinkFinalizer(toy_db)
        observation = public_obs(near_asn=40)
        states = {
            A_SIDE: state(
                A_SIDE, {5}, 40, InferredType.PUBLIC_REMOTE, remote=True
            ),
        }
        links = finalizer.finalize({observation.key(): observation}, states)
        assert links[0].inferred_type is InferredType.PUBLIC_REMOTE
        assert links[0].near_facility == 5

    def test_remote_port_not_assigned_fabric_facility(self, toy_db):
        """A remote member's port must not be pinned to an exchange
        facility by the proximity fallback."""
        proximity = SwitchProximityModel()
        proximity.learn(100, 1, 2)
        proximity.learn(100, 1, 2)
        finalizer = LinkFinalizer(toy_db, proximity)
        observation = public_obs(far_asn=40)
        states = {
            A_SIDE: state(A_SIDE, {1}, 10, InferredType.PUBLIC_LOCAL),
            B_PORT: state(B_PORT, {5}, 40, remote=True),
        }
        links = finalizer.finalize({observation.key(): observation}, states)
        assert links[0].far_facility is None

    def test_learning_only_from_pinned_pairs(self, toy_db):
        proximity = SwitchProximityModel()
        finalizer = LinkFinalizer(toy_db, proximity)
        observation = public_obs()
        states = {
            A_SIDE: state(A_SIDE, {1, 2}, 10, InferredType.PUBLIC_LOCAL),
            B_PORT: state(B_PORT, {4}, 20),
        }
        finalizer.finalize({observation.key(): observation}, states)
        assert proximity.observations == 0  # near end not pinned


class TestPrivateFinalization:
    def test_far_state_resolution_used(self, toy_db):
        finalizer = LinkFinalizer(toy_db)
        observation = private_obs()
        states = {
            A_SIDE: state(A_SIDE, {2}, 10, InferredType.CROSS_CONNECT),
            B_P2P: state(B_P2P, {1}, 50, InferredType.CROSS_CONNECT),
        }
        links = finalizer.finalize({observation.key(): observation}, states)
        assert links[0].far_facility == 1
        assert links[0].kind is PeeringKind.PRIVATE

    def test_campus_deduction_when_far_unresolved(self, toy_db):
        finalizer = LinkFinalizer(toy_db)
        observation = private_obs(near_asn=10, far_asn=50)
        # Near pinned to facility 2; AS 50 only sits in facility 1,
        # reachable over the 1-2 campus: unique deduction.
        states = {
            A_SIDE: state(A_SIDE, {2}, 10, InferredType.CROSS_CONNECT),
        }
        links = finalizer.finalize({observation.key(): observation}, states)
        assert links[0].far_facility == 1

    def test_no_deduction_for_tethering(self, toy_db):
        finalizer = LinkFinalizer(toy_db)
        observation = private_obs(near_asn=30, far_asn=40)
        states = {
            A_SIDE: state(A_SIDE, {3}, 30, InferredType.TETHERING),
        }
        links = finalizer.finalize({observation.key(): observation}, states)
        assert links[0].inferred_type is InferredType.TETHERING
        assert links[0].far_facility is None

    def test_unknown_when_no_states(self, toy_db):
        finalizer = LinkFinalizer(toy_db)
        observation = private_obs()
        links = finalizer.finalize({observation.key(): observation}, {})
        assert links[0].inferred_type is InferredType.UNKNOWN
        assert links[0].near_facility is None
