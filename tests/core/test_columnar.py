"""Equivalence and round-trip contracts of the columnar hot path.

The columnar engine (flat-array Step-2 extraction over
:class:`repro.columnar.TraceArrays`) must be *byte-identical* to the
dataclass oracle (``CfsConfig(columnar=False)``, the object-walking
incremental engine) on everything the map consumer sees.  The second
half of the file pins the codec itself: flatten → slice → rebuild must
preserve every hop and trace field exactly, including the ``None``
sentinels.
"""

from __future__ import annotations

import pytest

from repro.columnar import NO_ADDRESS, TraceArrays
from repro.core.pipeline import PipelineConfig, build_environment
from repro.export import export_result
from repro.measurement.traceroute import (
    TraceHop,
    Traceroute,
    flatten_traces,
    rebuild_traces,
)
from repro.obs import Instrumentation

SEEDS = (0, 1, 2, 3, 4)


def _run(seed: int, scale: str, columnar: bool):
    """One full study at ``scale`` with the chosen extraction engine.

    A fresh environment per run: the IP-ID responder and the platform
    engines are stateful, so sharing them across two runs would change
    probe responses between engines and mask (or fake) divergence.
    """
    env = build_environment(PipelineConfig.for_scale(scale, seed=seed))
    corpus = env.run_campaign()
    result = env.run_cfs(
        corpus,
        cfs_config=env.config.cfs.replace(columnar=columnar),
        instrumentation=Instrumentation(),
    )
    return env, result


def _comparable(env, result) -> dict:
    """The export minus the fields that measure work rather than truth."""
    exported = export_result(result, env.facility_db)
    exported.pop("metrics")
    for record in exported["history"]:
        record.pop("applied")
        record.pop("traces_parsed")
    return exported


class TestColumnarEngineEquivalence:
    """Columnar extraction vs the dataclass oracle, full exports."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_small_scale_byte_identical(self, seed):
        env_col, col = _run(seed, "small", columnar=True)
        env_obj, obj = _run(seed, "small", columnar=False)
        assert _comparable(env_col, col) == _comparable(env_obj, obj)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_default_scale_byte_identical(self, seed):
        env_col, col = _run(seed, "default", columnar=True)
        env_obj, obj = _run(seed, "default", columnar=False)
        assert _comparable(env_col, col) == _comparable(env_obj, obj)

    def test_work_metrics_also_agree(self):
        """Both engines are incremental: they must scan the *same*
        traces, not merely reach the same answer."""
        _, col = _run(0, "small", columnar=True)
        _, obj = _run(0, "small", columnar=False)
        assert col.metrics.counter("classify.traces_parsed") == (
            obj.metrics.counter("classify.traces_parsed")
        )
        assert col.metrics.counter("cfs.observations_applied") == (
            obj.metrics.counter("cfs.observations_applied")
        )


def _synthetic_traces() -> list[Traceroute]:
    """Hand-built traces covering every sentinel the codec encodes:
    unresponsive hops, missing RTTs, absent router ids, an empty hop
    tuple, and an unreached destination."""
    return [
        Traceroute(
            source_id="vp-a",
            platform="atlas",
            src_asn=64500,
            dst_address=0x0A000001,
            hops=(
                TraceHop(ttl=1, address=0x0A000002, rtt_ms=1.25, router_id=7),
                TraceHop(ttl=2, address=None, rtt_ms=None, router_id=None),
                TraceHop(ttl=3, address=0x0A000003, rtt_ms=None, router_id=9),
                TraceHop(ttl=4, address=0x0A000001, rtt_ms=8.5, router_id=None),
            ),
            reached=True,
        ),
        Traceroute(
            source_id="vp-b",
            platform="lg",
            src_asn=64501,
            dst_address=0x0B000001,
            hops=(),
            reached=False,
        ),
        Traceroute(
            source_id="vp-c",
            platform="archive",
            src_asn=64502,
            dst_address=0x0C000001,
            hops=(
                TraceHop(ttl=1, address=None, rtt_ms=3.0, router_id=None),
                TraceHop(ttl=2, address=0xFFFFFFFE, rtt_ms=0.0, router_id=0),
            ),
            reached=False,
        ),
    ]


class TestArrayRoundTrip:
    """flatten → slice → rebuild preserves every field exactly."""

    def test_synthetic_traces_round_trip(self):
        traces = _synthetic_traces()
        arrays = flatten_traces(traces)
        assert len(arrays) == len(traces)
        assert arrays.total_hops == sum(len(t.hops) for t in traces)
        rebuilt = rebuild_traces(arrays)
        # Frozen dataclasses: == compares every field of every hop.
        assert rebuilt == traces

    def test_slice_round_trip(self):
        traces = _synthetic_traces()
        arrays = flatten_traces(traces)
        order = [2, 0]
        sliced = arrays.slice(order)
        assert rebuild_traces(sliced) == [traces[i] for i in order]
        # Slicing everything in order reproduces the original arrays.
        assert arrays.slice(range(len(arrays))) == arrays

    def test_campaign_traces_round_trip(self):
        """The real campaign stream round-trips hop-for-hop, and the
        columnar address scan matches the dataclass method."""
        env = build_environment(PipelineConfig.small(seed=0))
        corpus = env.run_campaign()
        arrays = flatten_traces(corpus.traces)
        assert rebuild_traces(arrays) == list(corpus.traces)
        for index, trace in enumerate(corpus.traces):
            assert arrays.responsive_addresses(index) == (
                trace.responsive_addresses()
            )

    def test_corpus_columnar_is_append_only(self):
        """``TraceCorpus.columnar()`` flattens once and extends in
        place when new traces arrive — same object, grown."""
        env = build_environment(PipelineConfig.small(seed=0))
        corpus = env.run_campaign()
        arrays = corpus.columnar()
        first = len(arrays)
        assert first == len(corpus.traces)
        corpus.traces.extend(_synthetic_traces())
        again = corpus.columnar()
        assert again is arrays
        assert len(again) == first + 3

    def test_sentinel_collision_rejected(self):
        bad = Traceroute(
            source_id="vp-x",
            platform="atlas",
            src_asn=64500,
            dst_address=1,
            hops=(
                TraceHop(ttl=1, address=NO_ADDRESS, rtt_ms=1.0),
            ),
            reached=False,
        )
        with pytest.raises(ValueError, match="NO_ADDRESS"):
            flatten_traces([bad])

    def test_intersects_matches_responsive_scan(self):
        traces = _synthetic_traces()
        arrays = flatten_traces(traces)
        assert arrays.intersects(0, {0x0A000003})
        assert not arrays.intersects(0, {0xDEADBEEF})
        assert not arrays.intersects(1, {0x0A000002})  # no hops at all
        # An unresponsive hop never matches, even via the raw sentinel
        # (trace 2's first hop is a ``*``).
        assert not arrays.intersects(2, {NO_ADDRESS})

    def test_pickle_round_trip(self):
        import pickle

        arrays = flatten_traces(_synthetic_traces())
        clone = pickle.loads(pickle.dumps(arrays))
        assert clone == arrays
        assert rebuild_traces(clone) == _synthetic_traces()


class TestArrayIndexing:
    def test_hop_range_bounds(self):
        arrays = flatten_traces(_synthetic_traces())
        assert arrays.hop_range(0) == (0, 4)
        assert arrays.hop_range(1) == (4, 4)
        assert arrays.hop_range(2) == (4, 6)
        with pytest.raises(IndexError):
            arrays.hop_range(3)
        with pytest.raises(IndexError):
            arrays.hop_range(-1)

    def test_empty_arrays(self):
        arrays = TraceArrays()
        assert len(arrays) == 0
        assert arrays.total_hops == 0
        assert rebuild_traces(arrays) == []
