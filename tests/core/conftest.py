"""Hand-built fixtures for unit-testing the CFS steps in isolation."""

from __future__ import annotations

import pytest

from repro.core.facility_db import FacilityDatabase
from repro.topology.addressing import Prefix, ip_to_int


IXP_LAN = Prefix.parse("185.99.0.0/24")

#: Addresses used by the toy scenarios (plain integers are fine; the
#: core package never dereferences them against a topology).
A_SIDE = ip_to_int("16.0.0.1")
A_SIDE_2 = ip_to_int("16.0.0.2")
B_PORT = ip_to_int("185.99.0.20")
B_BACKBONE = ip_to_int("17.0.0.1")
B_P2P = ip_to_int("16.0.1.1")


@pytest.fixture()
def toy_db() -> FacilityDatabase:
    """A small hand-wired facility database.

    Facilities 1-3 are in Frankfurt (1 and 2 on one campus), 4-5 in
    London.  IXP 100 partners with facilities 1, 2 and 4.  ASes:

    =====  ==================  =========================
    ASN    facilities          note
    =====  ==================  =========================
    10     1, 2, 5             member of IXP 100
    20     2, 4                member of IXP 100
    30     3                   member of IXP 100 (single option)
    40     5                   member of IXP 100 *without* common
                               facility: a remote-peer candidate
    50     1                   not an IXP member
    60     (none)              missing data
    =====  ==================  =========================
    """
    database = FacilityDatabase(
        as_facilities={
            10: frozenset({1, 2, 5}),
            20: frozenset({2, 4}),
            30: frozenset({3}),
            40: frozenset({5}),
            50: frozenset({1}),
        },
        ixp_facilities={100: frozenset({1, 2, 4})},
        ixp_members={100: frozenset({10, 20, 30, 40})},
        active_ixps=frozenset({100}),
        facility_metro={
            1: "Frankfurt",
            2: "Frankfurt",
            3: "Frankfurt",
            4: "London",
            5: "London",
        },
        campus={
            1: frozenset({1, 2}),
            2: frozenset({1, 2}),
            3: frozenset({3}),
            4: frozenset({4}),
            5: frozenset({5}),
        },
    )
    database._ixp_lan_index.insert(IXP_LAN, 100)
    return database
