"""CFS Step 1 tests: crossing extraction from synthetic traceroutes."""

from __future__ import annotations

import pytest

from repro.core.classify import PeeringClassifier
from repro.core.types import PeeringKind
from repro.measurement.traceroute import TraceHop, Traceroute

from .conftest import A_SIDE, A_SIDE_2, B_BACKBONE, B_P2P, B_PORT, IXP_LAN


def trace(hops, src_asn=10, dst_address=0):
    """Build a Traceroute from (address, rtt) pairs; None = star.

    ``dst_address`` defaults to an address beyond the recorded hops, so
    the synthetic path reads as transit hops (no destination echo);
    tests of the echo rule pass the final hop explicitly.
    """
    built = []
    for ttl, item in enumerate(hops, start=1):
        if item is None:
            built.append(TraceHop(ttl, None, None))
        else:
            address, rtt = item
            built.append(TraceHop(ttl, address, rtt))
    return Traceroute(
        source_id="vp",
        platform="test",
        src_asn=src_asn,
        dst_address=dst_address,
        hops=tuple(built),
        reached=True,
    )


MAPPING = {
    A_SIDE: 10,
    A_SIDE_2: 10,
    B_PORT: 20,  # the repaired mapping of the peering-LAN port
    B_BACKBONE: 20,
    B_P2P: 20,  # repaired: operated by 20 though numbered from 10's space
}


class TestPublicExtraction:
    def test_triple_detected(self, toy_db):
        classifier = PeeringClassifier(toy_db)
        observations = classifier.extract(
            [trace([(A_SIDE, 1.0), (B_PORT, 1.6), (B_BACKBONE, 1.9)])], MAPPING
        )
        assert len(observations) == 1
        observation = next(iter(observations.values()))
        assert observation.kind is PeeringKind.PUBLIC
        assert observation.near_address == A_SIDE
        assert observation.near_asn == 10
        assert observation.far_asn == 20
        assert observation.ixp_id == 100
        assert observation.ixp_address == B_PORT
        assert observation.min_rtt_step_ms == pytest.approx(0.6)

    def test_far_asn_from_port_mapping(self, toy_db):
        """When the hop after the LAN port belongs to a third AS (the
        multi-IXP router case), the port's own mapping identifies the
        far peer."""
        classifier = PeeringClassifier(toy_db)
        mapping = dict(MAPPING)
        mapping[B_BACKBONE] = 30  # next hop already in another AS
        observations = classifier.extract(
            [trace([(A_SIDE, 1.0), (B_PORT, 1.6), (B_BACKBONE, 1.9)])], mapping
        )
        observation = next(iter(observations.values()))
        assert observation.far_asn == 20

    def test_far_asn_falls_back_to_next_hop(self, toy_db):
        """An unrepaired port (mapped to the IXP's ASN, not a member)
        falls back to the next hop's mapping."""
        classifier = PeeringClassifier(toy_db)
        mapping = dict(MAPPING)
        mapping[B_PORT] = 59100  # the exchange's ASN: not a member
        observations = classifier.extract(
            [trace([(A_SIDE, 1.0), (B_PORT, 1.6), (B_BACKBONE, 1.9)])], mapping
        )
        observation = next(iter(observations.values()))
        assert observation.far_asn == 20

    def test_trailing_port_hop_discarded(self, toy_db):
        classifier = PeeringClassifier(toy_db)
        observations = classifier.extract(
            [trace([(A_SIDE, 1.0), (B_PORT, 1.6)])], MAPPING
        )
        assert observations == {}

    def test_star_before_port_discards(self, toy_db):
        classifier = PeeringClassifier(toy_db)
        observations = classifier.extract(
            [trace([(A_SIDE, 1.0), None, (B_PORT, 1.6), (B_BACKBONE, 1.9)])],
            MAPPING,
        )
        # (port, backbone) is same-AS; the crossing itself was hidden.
        assert all(
            obs.kind is not PeeringKind.PUBLIC for obs in observations.values()
        )

    def test_unmapped_near_discarded(self, toy_db):
        classifier = PeeringClassifier(toy_db)
        mapping = dict(MAPPING)
        del mapping[A_SIDE]
        observations = classifier.extract(
            [trace([(A_SIDE, 1.0), (B_PORT, 1.6), (B_BACKBONE, 1.9)])], mapping
        )
        assert observations == {}


class TestPrivateExtraction:
    def test_pair_detected(self, toy_db):
        classifier = PeeringClassifier(toy_db)
        observations = classifier.extract(
            [trace([(A_SIDE, 1.0), (B_P2P, 1.4)])], MAPPING
        )
        observation = next(iter(observations.values()))
        assert observation.kind is PeeringKind.PRIVATE
        assert observation.near_address == A_SIDE
        assert observation.far_asn == 20
        assert observation.far_address == B_P2P
        assert observation.min_rtt_step_ms == pytest.approx(0.4)

    def test_same_asn_not_a_crossing(self, toy_db):
        classifier = PeeringClassifier(toy_db)
        observations = classifier.extract(
            [trace([(A_SIDE, 1.0), (A_SIDE_2, 1.2)])], MAPPING
        )
        assert observations == {}

    def test_port_hop_never_near_side_of_private(self, toy_db):
        """(LAN port, backbone) pairs are the far half of a public
        crossing, never a private link."""
        classifier = PeeringClassifier(toy_db)
        mapping = dict(MAPPING)
        mapping[B_PORT] = 59100  # unrepaired port
        observations = classifier.extract(
            [trace([(B_PORT, 1.6), (B_BACKBONE, 1.9)])], mapping
        )
        assert observations == {}

    def test_unresponsive_middle_breaks_pairing(self, toy_db):
        classifier = PeeringClassifier(toy_db)
        observations = classifier.extract(
            [trace([(A_SIDE, 1.0), None, (B_P2P, 1.4)])], MAPPING
        )
        assert observations == {}

    def test_destination_echo_never_classified(self, toy_db):
        """The probed destination answers from the probed address, so the
        crossing into its router is unobservable: no private observation
        may be derived from the final echo hop."""
        classifier = PeeringClassifier(toy_db)
        observations = classifier.extract(
            [trace([(A_SIDE, 1.0), (B_P2P, 1.4)], dst_address=B_P2P)], MAPPING
        )
        assert observations == {}

    def test_public_crossing_before_echo_still_counted(self, toy_db):
        """An IXP-LAN hop is a real ingress even when the next hop is the
        destination echo — the public crossing stays observable."""
        classifier = PeeringClassifier(toy_db)
        observations = classifier.extract(
            [
                trace(
                    [(A_SIDE, 1.0), (B_PORT, 1.6), (B_BACKBONE, 1.9)],
                    dst_address=B_BACKBONE,
                )
            ],
            MAPPING,
        )
        assert len(observations) == 1
        assert next(iter(observations.values())).kind is PeeringKind.PUBLIC


class TestMerging:
    def test_repeat_observations_merge(self, toy_db):
        classifier = PeeringClassifier(toy_db)
        traces = [
            trace([(A_SIDE, 1.0), (B_PORT, 9.0), (B_BACKBONE, 9.5)]),
            trace([(A_SIDE, 1.0), (B_PORT, 1.5), (B_BACKBONE, 2.0)]),
        ]
        observations = classifier.extract(traces, MAPPING)
        assert len(observations) == 1
        observation = next(iter(observations.values()))
        assert observation.observations == 2
        assert observation.min_rtt_step_ms == pytest.approx(0.5)

    def test_merge_into_existing_dict(self, toy_db):
        classifier = PeeringClassifier(toy_db)
        observations = classifier.extract(
            [trace([(A_SIDE, 1.0), (B_P2P, 1.4)])], MAPPING
        )
        classifier.extract(
            [trace([(A_SIDE, 1.0), (B_P2P, 1.2)])], MAPPING, into=observations
        )
        assert len(observations) == 1
        assert next(iter(observations.values())).observations == 2

    def test_distinct_links_not_merged(self, toy_db):
        classifier = PeeringClassifier(toy_db)
        observations = classifier.extract(
            [
                trace([(A_SIDE, 1.0), (B_P2P, 1.4)]),
                trace([(A_SIDE, 1.0), (B_PORT, 1.5), (B_BACKBONE, 2.0)]),
            ],
            MAPPING,
        )
        assert len(observations) == 2
        kinds = {obs.kind for obs in observations.values()}
        assert kinds == {PeeringKind.PUBLIC, PeeringKind.PRIVATE}


class TestEndToEndConsistency:
    def test_extracted_as_pairs_are_real_links(self, small_run):
        """Almost every extracted crossing names an AS pair that really
        interconnects.  (The near *interface* may be boundary-shifted
        when an unresponsive router defeats the alias repair — the
        paper's residual IP-to-ASN error class — but the pair holds.)"""
        env, corpus, result = small_run
        matched = 0
        total = 0
        for link in result.links:
            total += 1
            if env.topology.links_between(link.near_asn, link.far_asn):
                matched += 1
        assert total > 0
        assert matched / total > 0.95

    def test_near_interface_usually_owned_by_near_asn(self, small_run):
        env, corpus, result = small_run
        owned = 0
        total = 0
        for link in result.links:
            iface = env.topology.interfaces.get(link.near_address)
            if iface is None:
                continue
            total += 1
            if env.topology.routers[iface.router_id].asn == link.near_asn:
                owned += 1
        assert owned / total > 0.7
