"""Acceptance gates for supervision + checkpoint/resume (tier-1).

Three byte-identity guarantees, each pinned on seeds 0–4:

* a run killed (``SIGKILL``) mid-pipeline and resumed with
  ``resume=True`` exports the same final map as an uninterrupted run;
* a resume over a checksum-corrupted checkpoint detects the corruption,
  recomputes the stage, and still exports the same map;
* ``workers=4`` under an active seeded ``worker_crash`` fault plan
  exports the same map as an unfaulted ``workers=1`` run — the
  supervisor's retries/quarantines are observable in the counters but
  invisible in the output.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.api import run_pipeline
from repro.export import dumps_result
from repro.faults.plan import FaultPlan
from repro.obs import Instrumentation

SEEDS = (0, 1, 2, 3, 4)

_RUN_SNIPPET = """
import sys
from repro.api import run_pipeline
run_pipeline(seed={seed}, scale="small", checkpoint_dir={ckpt!r})
"""


def _export_without_metrics(result) -> str:
    document = json.loads(
        dumps_result(result.cfs_result, result.environment.facility_db)
    )
    document.pop("metrics", None)
    return json.dumps(document, indent=2, sort_keys=True)


def _kill_mid_pipeline(seed: int, checkpoint_dir: str) -> None:
    """Start a checkpointing run and SIGKILL it once the campaign stage
    has been durably written (i.e. mid-CFS, the expensive stage)."""
    process = subprocess.Popen(
        [sys.executable, "-c", _RUN_SNIPPET.format(seed=seed, ckpt=checkpoint_dir)],
        env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    stage = os.path.join(checkpoint_dir, "stage-campaign.json")
    deadline = time.monotonic() + 120.0
    try:
        while time.monotonic() < deadline:
            if os.path.exists(stage):
                process.send_signal(signal.SIGKILL)
                break
            if process.poll() is not None:
                break
            time.sleep(0.01)
        else:
            pytest.fail("campaign stage never appeared; cannot kill mid-run")
    finally:
        process.wait(timeout=60.0)
    assert os.path.exists(stage), "killed before the campaign checkpoint"


@pytest.mark.parametrize("seed", SEEDS)
def test_killed_run_resumes_byte_identical(seed, tmp_path):
    checkpoint_dir = str(tmp_path / "ckpt")
    _kill_mid_pipeline(seed, checkpoint_dir)
    resumed = run_pipeline(
        seed=seed, scale="small", checkpoint_dir=checkpoint_dir, resume=True
    )
    uninterrupted = run_pipeline(seed=seed, scale="small")
    assert _export_without_metrics(resumed) == _export_without_metrics(
        uninterrupted
    ), f"resumed run diverged from uninterrupted run at seed {seed}"


@pytest.mark.parametrize("seed", SEEDS)
def test_corrupt_checkpoint_recomputes_byte_identical(seed, tmp_path):
    checkpoint_dir = tmp_path / "ckpt"
    reference = run_pipeline(
        seed=seed, scale="small", checkpoint_dir=str(checkpoint_dir)
    )
    # Flip bytes inside the CFS stage: the checksum must catch it and
    # the resume must recompute rather than load the damaged payload.
    stage = checkpoint_dir / "stage-cfs.json"
    data = bytearray(stage.read_bytes())
    data[len(data) // 2] ^= 0xFF
    stage.write_bytes(bytes(data))
    obs = Instrumentation()
    warnings: list[str] = []
    resumed = run_pipeline(
        seed=seed,
        scale="small",
        checkpoint_dir=str(checkpoint_dir),
        resume=True,
        instrumentation=obs,
        progress=warnings.append,
    )
    assert _export_without_metrics(resumed) == _export_without_metrics(
        reference
    ), f"recomputed-after-corruption run diverged at seed {seed}"
    assert obs.counter("checkpoint.corrupt") >= 1
    assert any("checksum" in message for message in warnings)


@pytest.mark.parametrize("seed", SEEDS)
def test_worker_crash_faults_preserve_output_identity(seed):
    clean = run_pipeline(seed=seed, scale="small", workers=1)
    obs = Instrumentation()
    # 0.5 rather than a gentler rate: the campaign plans only a few
    # shards at small scale, and every seed must actually crash one for
    # the retry-counter assertion below to prove the supervisor engaged.
    crash_plan = FaultPlan(worker_crash=0.5)
    faulted = run_pipeline(
        seed=seed,
        scale="small",
        workers=4,
        faults=crash_plan,
        instrumentation=obs,
    )
    assert _export_without_metrics(faulted) == _export_without_metrics(
        clean
    ), f"workers=4 under worker_crash diverged from clean serial at seed {seed}"
    # Identical bytes could mean the faults never fired: the supervisor
    # counters prove shards really crashed and were recovered.
    assert obs.counter("exec.shard.retry") > 0


def test_resume_with_changed_config_recomputes(tmp_path):
    checkpoint_dir = str(tmp_path / "ckpt")
    run_pipeline(seed=0, scale="small", checkpoint_dir=checkpoint_dir)
    warnings: list[str] = []
    resumed = run_pipeline(
        seed=1,
        scale="small",
        checkpoint_dir=checkpoint_dir,
        resume=True,
        progress=warnings.append,
    )
    fresh = run_pipeline(seed=1, scale="small")
    assert _export_without_metrics(resumed) == _export_without_metrics(fresh)
    assert any("different configuration" in message for message in warnings)
