"""Remote-peering detector and switch-proximity model tests."""

from __future__ import annotations

import pytest

from repro.core.proximity import SwitchProximityModel
from repro.core.remote import RemotePeeringDetector


class TestRemoteDetector:
    def test_below_bound_is_local(self):
        detector = RemotePeeringDetector(metro_local_bound_ms=3.0)
        assert detector.classify(1.5) is False

    def test_above_bound_is_remote(self):
        detector = RemotePeeringDetector(metro_local_bound_ms=3.0)
        assert detector.classify(25.0) is True

    def test_negative_step_is_local(self):
        detector = RemotePeeringDetector(metro_local_bound_ms=3.0)
        assert detector.classify(-0.4) is False

    def test_no_data_undecidable(self):
        detector = RemotePeeringDetector()
        assert detector.classify(None) is None

    def test_min_observations_guard(self):
        detector = RemotePeeringDetector(
            metro_local_bound_ms=3.0, min_observations=3
        )
        assert detector.classify(25.0, observations=1) is None
        assert detector.classify(25.0, observations=3) is True

    def test_boundary_value_is_local(self):
        detector = RemotePeeringDetector(metro_local_bound_ms=3.0)
        assert detector.classify(3.0) is False


class TestProximityModel:
    def test_learning_and_ranking(self):
        model = SwitchProximityModel()
        model.learn(1, 10, 20)
        model.learn(1, 10, 20)
        model.learn(1, 10, 30)
        assert model.rank(1, 10) == [(20, 2), (30, 1)]
        assert model.observations == 3

    def test_infer_prefers_top_vote(self):
        model = SwitchProximityModel()
        model.learn(1, 10, 20)
        model.learn(1, 10, 20)
        model.learn(1, 10, 30)
        assert model.infer(1, 10, {20, 30}) == 20

    def test_infer_restricted_to_candidates(self):
        model = SwitchProximityModel()
        model.learn(1, 10, 20)
        model.learn(1, 10, 20)
        model.learn(1, 10, 30)
        assert model.infer(1, 10, {30, 40}) == 30

    def test_tie_is_undecidable(self):
        """The Figure 6 AS-D case: equal proximity, no inference."""
        model = SwitchProximityModel()
        model.learn(1, 10, 20)
        model.learn(1, 10, 30)
        assert model.infer(1, 10, {20, 30}) is None

    def test_no_data_no_inference(self):
        model = SwitchProximityModel()
        assert model.infer(1, 10, {20, 30}) is None
        assert model.rank(1, 10) == []

    def test_single_candidate_needs_no_votes(self):
        model = SwitchProximityModel()
        assert model.infer(1, 10, {42}) == 42

    def test_exchanges_do_not_share_votes(self):
        model = SwitchProximityModel()
        model.learn(1, 10, 20)
        assert model.infer(2, 10, {20, 30}) is None
