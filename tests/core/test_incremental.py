"""Equivalence of the incremental and full-rescan CFS engines.

The incremental engine (dirty-set Step 2, cached per-trace extraction,
moved-address re-parse on alias refresh) must be *byte-identical* to
the paper-literal full-rescan loop on everything the map consumer sees:
links, interface states (candidates, statuses, conflict counts), and
the convergence history.  Only the work metrics — per-iteration
``applied``/``traces_parsed`` and the ``metrics`` snapshot — may
differ; that difference is the optimisation.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import PipelineConfig, build_environment
from repro.export import export_result
from repro.obs import Instrumentation


def _run(seed: int, incremental: bool):
    """One full small-scale study with the chosen engine.

    A fresh environment per run: the IP-ID responder and the platform
    engines are stateful, so sharing them across two runs would change
    probe responses between engines and mask (or fake) divergence.
    """
    env = build_environment(PipelineConfig.small(seed=seed))
    corpus = env.run_campaign()
    result = env.run_cfs(
        corpus,
        cfs_config=env.config.cfs.replace(incremental=incremental),
        instrumentation=Instrumentation(),
    )
    return env, result


def _comparable(env, result) -> dict:
    """The export minus the fields that measure work rather than truth."""
    exported = export_result(result, env.facility_db)
    exported.pop("metrics")
    for record in exported["history"]:
        record.pop("applied")
        record.pop("traces_parsed")
    return exported


@pytest.fixture(scope="module")
def seed0_runs():
    return _run(0, incremental=True), _run(0, incremental=False)


@pytest.fixture(scope="module")
def seed1_runs():
    """Seed 1 exhibits constraint conflicts (seed 0 happens not to)."""
    return _run(1, incremental=True), _run(1, incremental=False)


class TestEngineEquivalence:
    def test_seed0_byte_identical(self, seed0_runs):
        (env_inc, inc), (env_full, full) = seed0_runs
        assert _comparable(env_inc, inc) == _comparable(env_full, full)

    def test_seed1_byte_identical(self, seed1_runs):
        (env_inc, inc), (env_full, full) = seed1_runs
        assert _comparable(env_inc, inc) == _comparable(env_full, full)

    @pytest.mark.parametrize("seed", [2])
    def test_more_seeds_byte_identical(self, seed):
        env_inc, inc = _run(seed, incremental=True)
        env_full, full = _run(seed, incremental=False)
        assert _comparable(env_inc, inc) == _comparable(env_full, full)

    def test_histories_agree_on_convergence(self, seed0_runs):
        (_, inc), (_, full) = seed0_runs
        assert inc.iterations_run == full.iterations_run
        assert len(inc.history) == len(full.history)
        for a, b in zip(inc.history, full.history):
            assert (a.resolved, a.unresolved_local, a.unresolved_remote) == (
                b.resolved,
                b.unresolved_local,
                b.unresolved_remote,
            )
            # Crossing totals agree; only the work differs.
            assert a.observations_total == b.observations_total

    def test_conflict_counts_identical(self, seed1_runs):
        """Sticky-conflict re-application mirrors the full engine's
        per-iteration conflict counting exactly."""
        (_, inc), (_, full) = seed1_runs
        inc_conflicts = {
            address: state.conflicts
            for address, state in inc.interfaces.items()
        }
        full_conflicts = {
            address: state.conflicts
            for address, state in full.interfaces.items()
        }
        assert inc_conflicts == full_conflicts
        assert sum(inc_conflicts.values()) > 0  # the test exercises conflicts


class TestIncrementalDoesLessWork:
    def test_step2_applications_drop(self, seed0_runs):
        (_, inc), (_, full) = seed0_runs
        applied_inc = inc.metrics.counter("cfs.observations_applied")
        applied_full = full.metrics.counter("cfs.observations_applied")
        assert inc.metrics.counter("cfs.observations_skipped") > 0
        assert full.metrics.counter("cfs.observations_skipped") == 0
        assert applied_inc < applied_full / 2

    def test_refresh_reparses_only_moved_traces(self, seed0_runs):
        (_, inc), (_, full) = seed0_runs
        # The scenario must actually contain alias refreshes for the
        # moved-address re-parse path to be exercised.
        assert inc.metrics.counter("cfs.alias_refreshes") >= 2
        assert inc.metrics.counter("cfs.trace_cache_hits") > 0
        parsed_inc = inc.metrics.counter("classify.traces_parsed")
        parsed_full = full.metrics.counter("classify.traces_parsed")
        assert parsed_inc < parsed_full

    def test_history_reports_skipped_work(self, seed0_runs):
        (_, inc), _ = seed0_runs
        skipped_some = any(
            stats.observations_applied < stats.observations_total
            for stats in inc.history
        )
        assert skipped_some


class TestMetricsOnResult:
    def test_metrics_populated(self, seed0_runs):
        (_, inc), _ = seed0_runs
        metrics = inc.metrics
        assert metrics is not None
        assert metrics.counter("cfs.iterations") == inc.iterations_run
        for stage in ("map", "alias", "extract", "constrain", "finalize"):
            assert metrics.stage_seconds.get(stage, 0.0) >= 0.0
            assert metrics.stage_calls.get(stage, 0) >= 1

    def test_export_carries_metrics(self, seed0_runs):
        (env, inc), _ = seed0_runs
        exported = export_result(inc, env.facility_db)
        assert exported["metrics"]["counters"]["cfs.iterations"] == (
            inc.iterations_run
        )
        assert "extract" in exported["metrics"]["stages"]
