"""The stable ``repro.api`` facade and config construction/validation."""

from __future__ import annotations

import pytest

import repro
from repro import api
from repro.core.cfs import CfsConfig, FOLLOWUP_STRATEGIES
from repro.core.pipeline import PipelineConfig, PipelineResult
from repro.topology.builder import TopologyConfig


class TestCfsConfigValidation:
    def test_defaults_valid(self):
        config = CfsConfig()
        assert config.followup_strategy in FOLLOWUP_STRATEGIES

    def test_unknown_strategy_rejected_at_construction(self):
        with pytest.raises(ValueError, match="nearest-first"):
            CfsConfig(followup_strategy="nearest-first")

    @pytest.mark.parametrize(
        "overrides",
        [
            {"max_iterations": 0},
            {"followup_budget": -1},
            {"alias_refresh_fraction": -0.5},
        ],
    )
    def test_out_of_range_knobs_rejected(self, overrides):
        with pytest.raises(ValueError):
            CfsConfig(**overrides)

    def test_replace_overrides_and_keeps_the_rest(self):
        base = CfsConfig(max_iterations=7)
        variant = base.replace(use_followups=False)
        assert variant.use_followups is False
        assert variant.max_iterations == 7
        assert base.use_followups is True  # original untouched

    def test_replace_revalidates(self):
        with pytest.raises(ValueError):
            CfsConfig().replace(followup_strategy="bogus")


class TestPipelineConfigScales:
    def test_large_uses_large_topology(self):
        config = PipelineConfig.large(seed=4)
        assert config.seed == 4
        large = TopologyConfig.large(seed=5)
        assert config.topology == large

    @pytest.mark.parametrize("scale", PipelineConfig.SCALES)
    def test_for_scale_routes_to_classmethods(self, scale):
        config = PipelineConfig.for_scale(scale, seed=9)
        expected = getattr(PipelineConfig, scale if scale != "default" else "default")(seed=9)
        assert config == expected

    def test_for_scale_rejects_unknown(self):
        with pytest.raises(ValueError, match="galactic"):
            PipelineConfig.for_scale("galactic")


class TestApiFacade:
    def test_reexported_from_package_root(self):
        assert repro.run_pipeline is api.run_pipeline
        assert repro.build_environment is api.build_environment
        assert repro.build_topology is api.build_topology

    def test_config_and_keywords_are_exclusive(self):
        with pytest.raises(ValueError):
            api.run_pipeline(config=PipelineConfig.small(seed=0), seed=1)
        with pytest.raises(ValueError):
            api.build_environment(
                config=PipelineConfig.small(seed=0), scale="small"
            )
        with pytest.raises(ValueError):
            api.build_topology(config=TopologyConfig.small(seed=0), seed=1)

    def test_build_topology_matches_pipeline_topology(self):
        direct = api.build_topology(seed=6, scale="small")
        env = api.build_environment(seed=6, scale="small")
        assert direct.summary() == env.topology.summary()

    def test_build_environment_positional_config_back_compat(self):
        config = PipelineConfig.small(seed=6)
        with pytest.warns(DeprecationWarning, match="config="):
            env = api.build_environment(config)
        assert env.config is config

    def test_positional_and_keyword_config_together_rejected(self):
        config = PipelineConfig.small(seed=6)
        with pytest.raises(TypeError, match="both"):
            api.run_pipeline(config, config=config)

    def test_serving_surface_reexported(self):
        assert api.open_snapshot is repro.api.open_snapshot
        assert callable(api.serve_map)
        assert callable(api.query)
        # Lazy re-exports resolve and cache.
        assert api.MapSnapshot is api.MapSnapshot
        assert api.ServiceHandle.__name__ == "ServiceHandle"

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            api.not_a_symbol

    def test_run_pipeline_by_seed_and_scale(self):
        result = api.run_pipeline(seed=5, scale="small")
        assert isinstance(result, PipelineResult)
        assert result.cfs_result.peering_interfaces_seen > 0
        # The facade threads one instrumented run end to end.
        assert result.cfs_result.metrics is not None
        assert result.cfs_result.metrics.counter("cfs.iterations") == (
            result.cfs_result.iterations_run
        )
