"""Baseline tests: DRoP hostname parsing and IP-geolocation guessing."""

from __future__ import annotations

import pytest

from repro.baselines.drop import DropGeolocator
from repro.baselines.ipgeo import IpGeoBaseline
from repro.datasets.dnsnames import DnsConfig, DnsZone
from repro.topology import ASRole


@pytest.fixture(scope="module")
def clean_zone(small_topology):
    return DnsZone(
        small_topology,
        DnsConfig(missing_record_prob=0.0, stale_prob=0.0),
        seed=60,
    )


@pytest.fixture(scope="module")
def drop(small_topology, clean_zone):
    return DropGeolocator(small_topology.metros, clean_zone)


def scheme_of(topology, address):
    iface = topology.interfaces[address]
    return topology.ases[topology.routers[iface.router_id].asn].dns_scheme


class TestDropParsing:
    def test_airport_scheme_located_correctly(self, drop, small_topology):
        checked = 0
        for address in small_topology.interfaces:
            if scheme_of(small_topology, address) != "airport":
                continue
            result = drop.locate(address)
            truth = small_topology.facilities[
                small_topology.true_facility_of_address(address)
            ].metro
            assert result.located
            assert result.metro == truth
            checked += 1
        if not checked:
            pytest.skip("no airport-scheme operators in this seed")

    def test_city_scheme_located(self, drop, small_topology):
        for address in small_topology.interfaces:
            if scheme_of(small_topology, address) != "city":
                continue
            result = drop.locate(address)
            assert result.located

    def test_opaque_scheme_not_located(self, drop, small_topology):
        for address in list(small_topology.interfaces)[:2000]:
            if scheme_of(small_topology, address) != "opaque":
                continue
            result = drop.locate(address)
            assert result.hostname is not None
            assert not result.located

    def test_missing_record(self, drop, small_topology):
        for address in small_topology.interfaces:
            if scheme_of(small_topology, address) is None:
                result = drop.locate(address)
                assert result.hostname is None
                assert not result.located
                break

    def test_coverage_report_sums(self, small_topology, clean_zone):
        drop = DropGeolocator(small_topology.metros, clean_zone)
        addresses = list(small_topology.interfaces)[:500]
        report = drop.coverage_report(addresses)
        assert report["total"] == 500
        assert (
            report["no_record"]
            + report["record_without_location"]
            + report["located"]
            == report["total"]
        )

    def test_paper_band_with_realistic_zone(self, small_topology):
        """With realistic record quality the located fraction sits well
        below CFS resolution — the paper's ~32% figure."""
        zone = DnsZone(small_topology, seed=61)
        drop = DropGeolocator(small_topology.metros, zone)
        report = drop.coverage_report(list(small_topology.interfaces))
        fraction = report["located"] / report["total"]
        assert 0.1 < fraction < 0.5


class TestIpGeoBaseline:
    def test_content_addresses_collapse_to_home(self, small_env):
        baseline = IpGeoBaseline(small_env.geodb, small_env.facility_db)
        content = [
            record
            for record in small_env.topology.ases.values()
            if record.role is ASRole.CONTENT
        ][0]
        for router_id in small_env.topology.routers_of(content.asn)[:5]:
            router = small_env.topology.routers[router_id]
            result = baseline.locate(router.interfaces[0], content.asn)
            assert result.metro == content.home_metro

    def test_unknown_address(self, small_env):
        baseline = IpGeoBaseline(small_env.geodb, small_env.facility_db)
        result = baseline.locate(1)
        assert result.metro is None and result.facility is None

    def test_facility_only_when_unambiguous(self, small_env):
        baseline = IpGeoBaseline(small_env.geodb, small_env.facility_db)
        answers = baseline.locate_all(
            {
                address: small_env.topology.true_asn_of_address(address)
                for address in list(small_env.topology.interfaces)[:200]
            }
        )
        for address, result in answers.items():
            if result.facility is None:
                continue
            owner = small_env.topology.true_asn_of_address(address)
            in_metro = [
                fid
                for fid in small_env.facility_db.facilities_of(owner)
                if small_env.facility_db.metro_of(fid) == result.metro
            ]
            assert len(in_metro) == 1 and in_metro[0] == result.facility

    def test_facility_accuracy_below_cfs(self, small_run):
        """The geolocation strawman must clearly underperform CFS."""
        env, _, result = small_run
        baseline = IpGeoBaseline(env.geodb, env.facility_db)
        cfs_resolved = result.resolved_interfaces()
        correct_baseline = 0
        checked = 0
        for address in cfs_resolved:
            if address not in env.topology.interfaces:
                continue
            owner = env.topology.true_asn_of_address(address)
            answer = baseline.locate(address, owner)
            checked += 1
            if answer.facility == env.topology.true_facility_of_address(address):
                correct_baseline += 1
        cfs_correct = sum(
            1
            for address, facility in cfs_resolved.items()
            if address in env.topology.interfaces
            and facility == env.topology.true_facility_of_address(address)
        )
        assert correct_baseline / checked < cfs_correct / checked
