"""Edge-case coverage for the experiment harness helpers."""

from __future__ import annotations

import pytest

from repro.experiments import run_table1
from repro.experiments.fig7 import Fig7Series
from repro.experiments.fig8 import Fig8Point, Fig8Result
from repro.experiments.fig10 import Fig10Row
from repro.core.types import InferredType


class TestTable1Edges:
    def test_unknown_platform_row(self, small_env):
        result = run_table1(small_env)
        with pytest.raises(KeyError):
            result.row("carrier-pigeon")


class TestFig7Series:
    def test_fractions_and_final(self):
        series = Fig7Series(
            name="x", points=[(1, 5, 10), (2, 8, 10), (3, 8, 16)]
        )
        assert series.fractions() == [(1, 0.5), (2, 0.8), (3, 0.5)]
        assert series.final_fraction() == 0.5
        assert series.fraction_at(2) == 0.8

    def test_empty_series(self):
        series = Fig7Series(name="x", points=[])
        assert series.final_fraction() == 0.0
        assert series.fraction_at(10) == 0.0

    def test_zero_total_points(self):
        series = Fig7Series(name="x", points=[(1, 0, 0)])
        assert series.fractions() == [(1, 0.0)]


class TestFig8Monotonicity:
    def _result(self, unresolved_values):
        points = [
            Fig8Point(
                removed=i,
                removed_fraction=i / 10,
                unresolved_fraction=value,
                changed_fraction=0.0,
            )
            for i, value in enumerate(unresolved_values)
        ]
        return Fig8Result(baseline_resolved=100, points=points)

    def test_monotone_accepts_noise_within_slack(self):
        result = self._result([0.1, 0.09, 0.2, 0.3])
        assert result.unresolved_is_monotonic(slack=0.05)

    def test_monotone_rejects_big_drops(self):
        result = self._result([0.1, 0.3, 0.1])
        assert not result.unresolved_is_monotonic(slack=0.05)

    def test_format_contains_all_levels(self):
        result = self._result([0.1, 0.2])
        text = result.format()
        assert "0.10" in text and "0.20" in text


class TestFig10Row:
    def test_fractions(self):
        row = Fig10Row(
            asn=1,
            role="content",
            region="total",
            counts={
                InferredType.PUBLIC_LOCAL.value: 6,
                InferredType.PUBLIC_REMOTE.value: 2,
                InferredType.CROSS_CONNECT.value: 2,
            },
        )
        assert row.total == 10
        assert row.public_fraction == pytest.approx(0.8)
        assert row.fraction(InferredType.CROSS_CONNECT) == pytest.approx(0.2)

    def test_empty_row(self):
        row = Fig10Row(asn=1, role="stub", region="total")
        assert row.total == 0
        assert row.public_fraction == 0.0
