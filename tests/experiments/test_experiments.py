"""Experiment harness tests: every figure/table runs and keeps its shape.

These integration tests execute each experiment at the small scale over
a shared study run and assert the *qualitative* paper results — who
wins, directions of effects, monotonicity — not absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    clone_corpus,
    run_fig2,
    run_fig3,
    run_fig9,
    run_fig10,
    run_multirole_census,
    run_proximity_validation,
    run_table1,
)
from repro.experiments.fig10 import role_contrast
from repro.topology import ASRole


class TestTable1:
    def test_shape(self, small_run):
        env, _, _ = small_run
        result = run_table1(env)
        assert result.shape_holds()
        assert "ripe-atlas" in result.format()

    def test_total_row(self, small_run):
        env, _, _ = small_run
        result = run_table1(env)
        total = result.row("total-unique")
        atlas = result.row("ripe-atlas")
        assert total.vantage_points >= atlas.vantage_points
        assert total.countries >= atlas.countries


class TestFig2:
    def test_missing_links_found(self, small_run):
        env, _, _ = small_run
        result = run_fig2(env)
        assert result.ases_checked > 5
        assert result.ases_with_missing_links > 0
        assert result.total_missing_links > 0

    def test_rows_sorted_and_fractions_valid(self, small_run):
        env, _, _ = small_run
        result = run_fig2(env)
        counts = [row.website_facilities for row in result.rows]
        assert counts == sorted(counts, reverse=True)
        for row in result.rows:
            assert 0.0 <= row.pdb_fraction <= 1.0
            assert row.in_peeringdb <= row.website_facilities

    def test_format(self, small_run):
        env, _, _ = small_run
        text = run_fig2(env).format(limit=5)
        assert "PeeringDB" in text and "missing" in text


class TestFig3:
    def test_heavy_tail(self, small_run):
        env, _, _ = small_run
        result = run_fig3(env.topology)
        assert result.is_heavy_tailed()
        counts = [count for _, count, _ in result.rows]
        assert counts == sorted(counts, reverse=True)

    def test_totals_match_topology(self, small_run):
        env, _, _ = small_run
        result = run_fig3(env.topology)
        assert sum(count for _, count, _ in result.rows) == len(
            env.topology.facilities
        )

    def test_big_metros_lead(self, small_run):
        env, _, _ = small_run
        result = run_fig3(env.topology)
        top = {metro for metro, _, _ in result.rows[:6]}
        assert top & {"London", "New York", "Paris", "Frankfurt", "Amsterdam",
                      "San Jose", "Moscow", "Los Angeles"}

    def test_more_facilities_than_ixps(self, small_run):
        env, _, _ = small_run
        result = run_fig3(env.topology)
        assert result.facility_to_ixp_ratio > 1.0


class TestFig9:
    def test_validation_above_threshold(self, small_run):
        env, _, result = small_run
        fig9 = run_fig9(env, result)
        assert fig9.cells
        assert fig9.overall_accuracy() > 0.85

    def test_cell_lookup(self, small_run):
        env, _, result = small_run
        fig9 = run_fig9(env, result)
        cell = fig9.cells[0]
        assert fig9.cell(cell.source, cell.link_type) is cell
        assert fig9.cell("nope", "nope") is None


class TestFig10:
    def test_cdn_public_vs_tier1_private(self, small_run):
        env, _, result = small_run
        fig10 = run_fig10(env, result)
        cdn_public, tier1_public = role_contrast(fig10)
        assert cdn_public > tier1_public

    def test_rows_cover_targets_and_regions(self, small_run):
        env, _, result = small_run
        fig10 = run_fig10(env, result)
        for asn in env.target_asns:
            total_row = fig10.row(asn, "total")
            assert total_row is not None
            region_sum = sum(
                fig10.row(asn, region).total
                for region in ("Europe", "North America", "Asia")
            )
            assert region_sum <= total_row.total

    def test_every_target_has_interfaces(self, small_run):
        env, _, result = small_run
        fig10 = run_fig10(env, result)
        with_interfaces = [
            asn for asn in env.target_asns if fig10.row(asn, "total").total > 0
        ]
        assert len(with_interfaces) >= len(env.target_asns) - 1


class TestMultiRole:
    def test_census_shape(self, small_run):
        env, _, result = small_run
        census = run_multirole_census(env, result)
        assert census.routers_observed > 0
        assert 0 < census.both_roles_fraction < 1
        assert census.multi_ixp_routers >= 0
        assert census.both_roles <= min(
            census.public_routers, census.private_routers
        )

    def test_multi_ixp_routers_exist(self, small_run):
        env, _, result = small_run
        census = run_multirole_census(env, result)
        assert census.multi_ixp_fraction > 0


class TestProximity:
    def test_validation_runs(self, small_run):
        env, _, result = small_run
        validation = run_proximity_validation(env, result)
        assert validation.total_cases >= 0
        if validation.attempted:
            assert 0.0 <= validation.accuracy <= 1.0

    def test_beats_chance_when_enough_cases(self, small_run):
        env, _, result = small_run
        validation = run_proximity_validation(env, result)
        if validation.attempted < 15:
            pytest.skip("too few ambiguous far-end cases at small scale")
        assert validation.accuracy > 0.5
