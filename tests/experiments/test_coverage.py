"""Incremental coverage experiment tests."""

from __future__ import annotations

from repro.experiments import run_coverage_growth


class TestCoverageGrowth:
    def test_monotone_and_concave_tendency(self, small_env):
        result = run_coverage_growth(small_env, max_targets=4, seed_offset=750)
        assert len(result.points) == 4
        assert result.is_monotone()
        assert result.points[0].links_pinned > 0
        # traces strictly accumulate
        traces = [p.traces for p in result.points]
        assert all(b > a for a, b in zip(traces, traces[1:]))

    def test_interfaces_grow_with_targets(self, small_env):
        result = run_coverage_growth(small_env, max_targets=3, seed_offset=760)
        seen = [p.interfaces_seen for p in result.points]
        assert seen[-1] >= seen[0]

    def test_format(self, small_env):
        result = run_coverage_growth(small_env, max_targets=2, seed_offset=770)
        text = result.format()
        assert "links pinned" in text
