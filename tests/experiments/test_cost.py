"""Section 3.2 measurement-cost experiment tests."""

from __future__ import annotations

import pytest

from repro.experiments import run_measurement_cost


class TestMeasurementCost:
    def test_lg_cost_dwarfs_atlas(self, small_env):
        cost = run_measurement_cost(small_env)
        # Rate-limited looking glasses are far costlier per target than
        # the concurrent Atlas campaign (the Section 3.2 asymmetry).
        assert cost.lg_wait_minutes > cost.atlas_minutes
        assert cost.lg_to_atlas_cost_ratio > 1.0

    def test_every_vantage_point_probed(self, small_env):
        cost = run_measurement_cost(small_env, seed=1)
        assert cost.atlas_traces == len(small_env.platforms.atlas.vantage_points)
        assert cost.lg_traces == len(
            small_env.platforms.looking_glasses.vantage_points
        )

    def test_unknown_target_rejected(self, small_env):
        with pytest.raises(ValueError):
            run_measurement_cost(small_env, target_asn=42)

    def test_format(self, small_env):
        cost = run_measurement_cost(small_env)
        text = cost.format()
        assert "ripe-atlas" in text and "looking-glass" in text


class TestConnectivityStats:
    def test_fractions_valid(self, small_env):
        from repro.experiments import run_as_connectivity_stats

        stats = run_as_connectivity_stats(small_env)
        assert stats.ases > 0
        assert 0.0 <= stats.multi_ixp_fraction <= 1.0
        assert 0.0 <= stats.multi_facility_fraction <= 1.0

    def test_paper_shape(self, small_env):
        """§3.1.1: majorities of ASes span multiple facilities, and many
        reach multiple exchanges."""
        from repro.experiments import run_as_connectivity_stats

        stats = run_as_connectivity_stats(small_env)
        assert stats.multi_facility_fraction > 0.4
        assert stats.multi_ixp_fraction > 0.2

    def test_format(self, small_env):
        from repro.experiments import run_as_connectivity_stats

        assert "IXP" in run_as_connectivity_stats(small_env).format()


class TestAliasCensus:
    def test_census_counts_consistent(self, small_run):
        from repro.experiments import run_alias_census

        env, corpus, _ = small_run
        census = run_alias_census(env, corpus)
        assert census.interfaces_probed > 100
        assert census.alias_sets > 0
        assert census.aliased_addresses >= 2 * census.alias_sets
        assert census.conflicting_sets <= census.alias_sets
        assert census.conflicting_addresses >= census.conflicting_sets

    def test_conflicts_exist(self, small_run):
        """§4.1: shared /31s guarantee conflicting alias sets."""
        from repro.experiments import run_alias_census

        env, corpus, _ = small_run
        census = run_alias_census(env, corpus)
        assert census.conflicting_sets > 0

    def test_format(self, small_run):
        from repro.experiments import run_alias_census

        env, corpus, _ = small_run
        assert "alias" in run_alias_census(env, corpus, seed_offset=901).format()
