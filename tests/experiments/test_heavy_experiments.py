"""Small-scale smoke tests of the heavier experiment harnesses.

Figure 7, Figure 8 and the ablation suite run multiple CFS passes; the
benchmarks exercise them at full scale, these tests verify the same
shapes quickly at the small scale.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_ablation, run_fig7, run_fig8


@pytest.fixture(scope="module")
def fig7_result(small_env):
    return run_fig7(small_env)


class TestFig7Small:
    def test_three_series_present(self, fig7_result):
        assert set(fig7_result.series) == {
            "all",
            "ripe-atlas",
            "looking-glass",
        }

    def test_resolved_counts_monotone(self, fig7_result):
        for curve in fig7_result.series.values():
            resolved = [point[1] for point in curve.points]
            assert all(b >= a for a, b in zip(resolved, resolved[1:]))

    def test_all_platforms_substantial(self, fig7_result):
        assert fig7_result.series["all"].final_fraction() > 0.45

    def test_dns_baseline_below_cfs(self, fig7_result):
        assert (
            fig7_result.dns_located_fraction
            < fig7_result.series["all"].final_fraction()
        )

    def test_lg_sees_unique_interfaces(self, fig7_result):
        assert fig7_result.lg_unique_fraction > 0.0

    def test_fraction_at_is_monotone_in_iteration(self, fig7_result):
        curve = fig7_result.series["all"]
        assert curve.fraction_at(5) <= curve.fraction_at(
            curve.points[-1][0]
        ) + 0.01

    def test_format_contains_all_series(self, fig7_result):
        text = fig7_result.format(step=10)
        assert "ripe-atlas" in text and "looking-glass" in text


class TestFig8Small:
    def test_degradation_curves(self, small_run):
        env, corpus, _ = small_run
        result = run_fig8(
            env,
            corpus,
            removal_fractions=(0.2, 0.5, 0.8),
            repeats=2,
            seed=3,
        )
        assert result.baseline_resolved > 50
        points = {p.removed_fraction: p for p in result.points}
        assert points[0.8].unresolved_fraction > points[0.2].unresolved_fraction
        assert points[0.8].unresolved_fraction > 0.3
        for point in result.points:
            assert 0.0 <= point.changed_fraction <= 1.0

    def test_zero_removal_nearly_noop(self, small_run):
        """Removing nothing leaves the map intact, up to the per-run
        alias-resolution jitter of the shared IP-ID prober (velocity
        estimates shift between probes of the same counters)."""
        env, corpus, _ = small_run
        result = run_fig8(
            env, corpus, removal_fractions=(0.0,), repeats=1, seed=4
        )
        point = result.points[0]
        assert point.unresolved_fraction < 0.03
        assert point.changed_fraction < 0.03


class TestAblationSmall:
    def test_directions(self, small_env):
        corpus = small_env.run_campaign(seed_offset=55)
        result = run_ablation(small_env, corpus)
        full = result.row("full")
        assert full.resolved_fraction > result.row("no-followups").resolved_fraction
        assert full.resolved_fraction >= result.row("no-alias-step").resolved_fraction - 0.03
        assert (
            full.facility_accuracy
            >= result.row("no-asn-repair").facility_accuracy - 0.03
        )
        assert full.far_ends_resolved >= result.row("no-proximity").far_ends_resolved

    def test_all_variants_present(self, small_env):
        corpus = small_env.run_campaign(seed_offset=56)
        result = run_ablation(small_env, corpus)
        names = {row.variant for row in result.rows}
        assert names == {
            "full",
            "no-alias-step",
            "no-asn-repair",
            "no-followups",
            "random-targets",
            "no-proximity",
            "mirror-far-side",
        }
        with pytest.raises(KeyError):
            result.row("nonexistent")
