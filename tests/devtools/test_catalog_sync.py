"""The rule catalog is documented in three places — the rules.py
docstring table, ``rule_catalog()``, and DESIGN.md §5e's bullet list —
and they must agree on every id and title, verbatim."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

import repro.devtools.rules as rules_module
from repro.devtools.rules import ALL_RULES, rule_catalog

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def docstring_table() -> dict[str, str]:
    rows = re.findall(
        r"^\| (R\d{3}) \| (.*?)\s*\|$", rules_module.__doc__, flags=re.M
    )
    return dict(rows)


def design_bullets() -> dict[str, str]:
    text = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
    bullets = re.findall(r"^\* \*\*(R\d{3}) — (.*?)\.\*\*", text, flags=re.M | re.S)
    return {
        rule: re.sub(r"\s+", " ", title).strip() for rule, title in bullets
    }


def test_catalog_covers_every_rule_class_in_order():
    catalog = rule_catalog()
    assert list(catalog) == sorted(catalog)
    assert list(catalog) == [cls.id for cls in ALL_RULES]
    assert list(catalog) == [f"R{n:03d}" for n in range(1, len(catalog) + 1)]


def test_docstring_table_matches_rule_catalog():
    assert docstring_table() == rule_catalog()


def test_design_md_bullets_match_rule_catalog():
    assert design_bullets() == rule_catalog()


def test_titles_are_single_line_and_nonempty():
    for rule, title in rule_catalog().items():
        assert title.strip() == title and title, rule
        assert "\n" not in title, rule
