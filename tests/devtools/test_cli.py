"""CLI behaviour of ``repro-lint`` and the ``repro lint`` subcommand:
exit codes, JSON shape, baseline workflow, and the one-line exit-2
error style for bad inputs."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.cli import main as repro_main
from repro.devtools.cli import main as lint_main

pytestmark = pytest.mark.lint


BAD_MODULE = """
import random

def draw():
    return random.random()
"""

CLEAN_MODULE = """
from random import Random

def draw(seed: int):
    return Random(seed).random()
"""


def write_tree(tmp_path, source):
    (tmp_path / "mod.py").write_text(
        textwrap.dedent(source), encoding="utf-8"
    )
    return tmp_path


def test_clean_tree_exits_zero(tmp_path, capsys):
    root = write_tree(tmp_path, CLEAN_MODULE)
    assert lint_main([str(root)]) == 0
    assert "clean: 0 findings" in capsys.readouterr().out


def test_findings_exit_one_with_location_lines(tmp_path, capsys):
    root = write_tree(tmp_path, BAD_MODULE)
    assert lint_main([str(root)]) == 1
    out = capsys.readouterr().out
    assert "mod.py:5:11: R001" in out


def test_json_format_shape(tmp_path, capsys):
    root = write_tree(tmp_path, BAD_MODULE)
    assert lint_main([str(root), "--format", "json"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["schema"] == "repro/lint/2"
    assert document["schema_version"] == 2
    assert document["rules"] == [
        "R001", "R002", "R003", "R004", "R005", "R006", "R007", "R008",
        "R009", "R010", "R011", "R012", "R013", "R014",
    ]
    assert document["files_scanned"] == 1
    assert document["counts"] == {"R001": 1}
    (finding,) = document["findings"]
    assert set(finding) == {"rule", "path", "line", "col", "message"}
    assert finding["path"] == "mod.py"
    assert document["suppressed"] == []
    assert document["summary"] == {
        "files_scanned": 1,
        "findings": 1,
        "suppressed": 0,
        "by_rule": {
            rule: (1 if rule == "R001" else 0)
            for rule in document["rules"]
        },
    }


def test_json_output_is_deterministic(tmp_path, capsys):
    root = write_tree(tmp_path, BAD_MODULE)
    (tmp_path / "second.py").write_text(
        "import random\n\n\ndef roll():\n    return random.choice([1, 2])\n",
        encoding="utf-8",
    )
    lint_main([str(root), "--format", "json"])
    first = capsys.readouterr().out
    lint_main([str(root), "--format", "json"])
    assert capsys.readouterr().out == first


def test_no_flow_drops_flow_rules(tmp_path, capsys):
    root = tmp_path
    (root / "measurement").mkdir()
    (root / "measurement" / "probe.py").write_text(
        "from random import Random\n\n_G = Random(1)\n\n\n"
        "def draw():\n    return _G.random()\n",
        encoding="utf-8",
    )
    assert lint_main([str(root)]) == 1
    assert "R011" in capsys.readouterr().out
    assert lint_main([str(root), "--no-flow"]) == 0
    assert "clean" in capsys.readouterr().out


def test_graph_flag_writes_flow_graph_json(tmp_path, capsys):
    root = write_tree(tmp_path, CLEAN_MODULE)
    graph_path = tmp_path / "callgraph.json"
    assert lint_main([str(root), "--graph", str(graph_path)]) == 0
    document = json.loads(graph_path.read_text(encoding="utf-8"))
    assert document["schema"] == "repro/flow-graph/1"
    assert "mod.py" in document["modules"]
    assert {"imports", "calls", "layers", "stats"} <= set(document)


def test_graph_unwritable_path_is_clean_exit_2(tmp_path, capsys):
    root = write_tree(tmp_path, CLEAN_MODULE)
    target = tmp_path / "missing-dir" / "graph.json"
    assert lint_main([str(root), "--graph", str(target)]) == 2
    assert capsys.readouterr().err.startswith("error:")


def test_rule_filter_flag(tmp_path):
    root = write_tree(tmp_path, BAD_MODULE)
    assert lint_main([str(root), "--rule", "R002"]) == 0
    assert lint_main([str(root), "--rule", "R001"]) == 1


def test_unknown_rule_is_clean_exit_2(tmp_path, capsys):
    root = write_tree(tmp_path, CLEAN_MODULE)
    assert lint_main([str(root), "--rule", "R999"]) == 2
    captured = capsys.readouterr()
    error_lines = captured.err.strip().splitlines()
    assert len(error_lines) == 1
    assert error_lines[0].startswith("error: unknown rule 'R999'")


def test_missing_path_is_clean_exit_2(tmp_path, capsys):
    assert lint_main([str(tmp_path / "nowhere")]) == 2
    captured = capsys.readouterr()
    error_lines = captured.err.strip().splitlines()
    assert len(error_lines) == 1
    assert error_lines[0].startswith("error: no such file or directory")


def test_baseline_records_then_gates(tmp_path, capsys):
    root = write_tree(tmp_path, BAD_MODULE)
    baseline = tmp_path / "baseline.json"

    # First run with a fresh baseline records and exits 0.
    assert lint_main([str(root), "--baseline", str(baseline)]) == 0
    assert "baseline recorded: 1 finding(s)" in capsys.readouterr().out
    assert baseline.exists()

    # Re-running gates only new findings: the recorded one is ignored.
    assert lint_main([str(root), "--baseline", str(baseline)]) == 0
    assert "clean: 0 findings" in capsys.readouterr().out

    # A new violation still fails against the old baseline.
    (root / "fresh.py").write_text(
        "import random\n\n\ndef roll():\n    return random.choice([1, 2])\n",
        encoding="utf-8",
    )
    assert lint_main([str(root), "--baseline", str(baseline)]) == 1
    assert "fresh.py" in capsys.readouterr().out


def test_corrupt_baseline_is_clean_exit_2(tmp_path, capsys):
    root = write_tree(tmp_path, CLEAN_MODULE)
    baseline = tmp_path / "baseline.json"
    baseline.write_text("not json", encoding="utf-8")
    assert lint_main([str(root), "--baseline", str(baseline)]) == 2
    assert capsys.readouterr().err.startswith("error: cannot read baseline")


def test_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("R001", "R002", "R003", "R004", "R005", "R006", "R007"):
        assert rule_id in out


def test_repro_lint_subcommand_matches_console_script(tmp_path, capsys):
    root = write_tree(tmp_path, BAD_MODULE)
    assert repro_main(["lint", str(root)]) == 1
    via_subcommand = capsys.readouterr().out
    assert lint_main([str(root)]) == 1
    assert capsys.readouterr().out == via_subcommand


def test_repro_lint_subcommand_self_gate(capsys):
    """``python -m repro lint`` with no path lints the installed tree
    and finds it clean (the acceptance-criteria invocation)."""
    assert repro_main(["lint"]) == 0
    assert "clean: 0 findings" in capsys.readouterr().out
