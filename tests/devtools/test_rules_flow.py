"""Fixtures for the interprocedural flow rules (R011–R014): each rule
fires on a minimal multi-module bad tree and stays silent on the
corresponding good one.

The bad patterns are the static half of the static/runtime pairing —
their runtime twins (sanitizer tripwires) live in
``tests/test_sanitize.py`` and must catch the same mistakes live.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.devtools.lint import run_lint

pytestmark = pytest.mark.lint


def lint_tree(tmp_path: Path, files: dict[str, str], rules=None, flow=True):
    """Write a multi-module tree and lint it."""
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_lint(tmp_path, rules=rules, flow=flow)


def rule_ids(result):
    return [finding.rule for finding in result.findings]


#: A minimal substream helper matching the real ``repro.exec`` one, so
#: fixtures can model the provenance-carrying construction path.
SUBSTREAM = """
    from random import Random

    def substream(*parts):
        return Random(":".join(str(p) for p in parts))
"""


# ----------------------------------------------------------------------
# R011 — seed provenance
# ----------------------------------------------------------------------


class TestSeedProvenance:
    def test_flags_module_level_ambient_rng_reaching_draws(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "measurement/probe.py": """
                from random import Random

                _GLOBAL = Random(7)

                def helper(rng):
                    return rng.random()

                def run(seed):
                    ok = Random(seed).random()
                    bad = _GLOBAL.random()
                    worse = helper(_GLOBAL)
                    return ok, bad, worse
                """,
            },
            rules=["R011"],
        )
        # Both the direct module-stream draw and the one smuggled
        # through helper()'s parameter are flagged; the explicitly
        # seeded local stream is not.
        lines = [finding.line for finding in result.findings]
        assert rule_ids(result) == ["R011", "R011"]
        assert lines == [7, 11]  # helper's draw, then _GLOBAL.random()

    def test_substream_derived_draws_are_clean(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "exec/shard.py": SUBSTREAM,
                "measurement/probe.py": """
                from proj.exec.shard import substream

                def run(seed, index):
                    rng = substream("probe", seed, index)
                    return rng.random()
                """,
            },
            rules=["R011"],
        )
        assert rule_ids(result) == []

    def test_non_sink_units_are_not_flagged(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "analysis/plot.py": """
                from random import Random

                _JITTER = Random(0)

                def jitter():
                    return _JITTER.random()
                """,
            },
            rules=["R011"],
        )
        assert rule_ids(result) == []


# ----------------------------------------------------------------------
# R012 — shared-state races
# ----------------------------------------------------------------------


class TestSharedStateRace:
    BAD = {
        "serve/soaky.py": """
        import threading

        class Engine:
            def __init__(self):
                self.state = 0

        def run():
            engine = Engine()
            counts = {}

            def worker():
                engine.state = 9
                counts["x"] = 1

            thread = threading.Thread(target=worker)
            thread.start()
            return engine, counts
        """,
    }

    def test_flags_closure_mutations_of_thread_shared_state(self, tmp_path):
        result = lint_tree(tmp_path, dict(self.BAD), rules=["R012"])
        assert rule_ids(result).count("R012") >= 2  # attribute + key write
        messages = " / ".join(f.message for f in result.findings)
        assert "engine" in messages
        assert "counts" in messages

    def test_lock_guarded_mutation_is_clean(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "serve/soaky.py": """
                import threading

                def run():
                    counts = {}
                    lock = threading.Lock()

                    def worker():
                        with lock:
                            counts["x"] = 1

                    thread = threading.Thread(target=worker)
                    thread.start()
                    return counts
                """,
            },
            rules=["R012"],
        )
        assert rule_ids(result) == []


# ----------------------------------------------------------------------
# R013 — exception containment
# ----------------------------------------------------------------------


class TestExceptionContainment:
    def test_flags_exception_escaping_supervised_map(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "exec/supervise.py": """
                class ShardExecutionError(RuntimeError):
                    pass

                class WeirdFault(Exception):
                    pass

                def inner():
                    raise WeirdFault("boom")

                def supervised_map(items):
                    try:
                        return [inner() for item in items]
                    except ShardExecutionError:
                        raise
                """,
            },
            rules=["R013"],
        )
        assert rule_ids(result) == ["R013"]
        message = result.findings[0].message
        assert "WeirdFault" in message
        assert "ShardExecutionError" in message  # the allowed contract

    def test_contained_boundary_is_clean(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "exec/supervise.py": """
                class ShardExecutionError(RuntimeError):
                    pass

                class WeirdFault(Exception):
                    pass

                def inner():
                    raise WeirdFault("boom")

                def supervised_map(items):
                    try:
                        return [inner() for item in items]
                    except ShardExecutionError:
                        raise
                    except Exception:
                        return []
                """,
            },
            rules=["R013"],
        )
        assert rule_ids(result) == []


# ----------------------------------------------------------------------
# R014 — import layering
# ----------------------------------------------------------------------


class TestImportLayering:
    def test_flags_upward_import(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "serve/engine.py": """
                class Engine:
                    pass
                """,
                "faults/upward.py": """
                from proj.serve.engine import Engine

                WHO = Engine
                """,
            },
            rules=["R014"],
        )
        assert rule_ids(result) == ["R014"]
        assert result.findings[0].path == "faults/upward.py"
        assert "strictly down" in result.findings[0].message

    def test_downward_import_is_clean(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "faults/plan.py": """
                class FaultPlan:
                    pass
                """,
                "serve/engine.py": """
                from proj.faults.plan import FaultPlan

                PLAN = FaultPlan
                """,
            },
            rules=["R014"],
        )
        assert rule_ids(result) == []

    def test_flags_import_cycle(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "serve/alpha.py": """
                from proj.serve.beta import B

                class A:
                    pass
                """,
                "serve/beta.py": """
                from proj.serve.alpha import A

                class B:
                    pass
                """,
            },
            rules=["R014"],
        )
        assert rule_ids(result) == ["R014"]
        assert "import cycle" in result.findings[0].message


# ----------------------------------------------------------------------
# Flow toggle and multi-rule suppressions
# ----------------------------------------------------------------------


class TestFlowWiring:
    AMBIENT = {
        "measurement/probe.py": """
        import random

        def sample():
            return random.random()
        """,
    }

    def test_flow_rules_run_by_default(self, tmp_path):
        result = lint_tree(tmp_path, dict(self.AMBIENT))
        assert set(rule_ids(result)) == {"R001", "R011"}

    def test_no_flow_drops_flow_rules_only(self, tmp_path):
        result = lint_tree(tmp_path, dict(self.AMBIENT), flow=False)
        assert rule_ids(result) == ["R001"]

    def test_one_comment_suppresses_multiple_rules(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "measurement/probe.py": """
                import random

                def sample():
                    return random.random()  # reprolint: disable=R001, R011 fixture: ambient on purpose
                """,
            },
        )
        assert rule_ids(result) == []
        assert sorted(finding.rule for finding, _ in result.suppressed) == [
            "R001",
            "R011",
        ]
        assert all(
            reason == "fixture: ambient on purpose"
            for _, reason in result.suppressed
        )
