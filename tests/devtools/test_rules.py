"""Per-rule fixtures for reprolint: each rule must fire on a minimal
bad example and stay silent on the corresponding good one."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.devtools.lint import LintError, run_lint

pytestmark = pytest.mark.lint


def lint_source(tmp_path: Path, source: str, *, rel: str = "mod.py", rules=None):
    """Write one module into a scratch tree and lint it."""
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_lint(tmp_path, rules=rules)


def rule_ids(result):
    return [finding.rule for finding in result.findings]


# ----------------------------------------------------------------------
# R001 — unseeded randomness
# ----------------------------------------------------------------------


def test_r001_flags_module_level_random(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import random

        def draw():
            return random.random()
        """,
    )
    assert rule_ids(result) == ["R001"]
    assert "random.random" in result.findings[0].message


def test_r001_flags_unseeded_random_instance(tmp_path):
    result = lint_source(
        tmp_path,
        """
        from random import Random

        def draw():
            return Random().random()
        """,
    )
    assert rule_ids(result) == ["R001"]
    assert "no seed" in result.findings[0].message


def test_r001_flags_function_reference(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import random

        def scrambler():
            return random.shuffle
        """,
    )
    assert rule_ids(result) == ["R001"]


def test_r001_accepts_seeded_random(tmp_path):
    result = lint_source(
        tmp_path,
        """
        from random import Random

        def draw(seed: int):
            rng = Random(seed)
            return rng.random()
        """,
    )
    assert rule_ids(result) == []


# ----------------------------------------------------------------------
# R002 — wall-clock / environment reads in inference layers
# ----------------------------------------------------------------------


def test_r002_flags_wall_clock_in_core(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import time

        def stamp():
            return time.time()
        """,
        rel="core/clock.py",
    )
    assert rule_ids(result) == ["R002"]


def test_r002_flags_environ_and_datetime(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import os
        from datetime import datetime

        def snapshot():
            return os.environ.get("HOME"), datetime.now()
        """,
        rel="measurement/env.py",
    )
    assert sorted(rule_ids(result)) == ["R002", "R002"]


def test_r002_ignores_layers_outside_scope(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import time

        def stamp():
            return time.time()
        """,
        rel="experiments/clock.py",
    )
    assert rule_ids(result) == []


def test_r002_allows_monotonic_timers(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import time

        def elapsed(start: float):
            return time.perf_counter() - start
        """,
        rel="core/timer.py",
    )
    assert rule_ids(result) == []


# ----------------------------------------------------------------------
# R003 — unsorted set iteration feeding outputs
# ----------------------------------------------------------------------


def test_r003_flags_returned_accumulation(tmp_path):
    result = lint_source(
        tmp_path,
        """
        def collect(items: set):
            out = []
            for item in items:
                out.append(item)
            return out
        """,
    )
    assert rule_ids(result) == ["R003"]


def test_r003_flags_yield_from_set(tmp_path):
    result = lint_source(
        tmp_path,
        """
        def walk(seen):
            pending = set(seen)
            for node in pending:
                yield node
        """,
    )
    assert rule_ids(result) == ["R003"]


def test_r003_flags_comprehension_in_return(tmp_path):
    result = lint_source(
        tmp_path,
        """
        def labels(ids: frozenset):
            return [f"node-{i}" for i in ids]
        """,
    )
    assert rule_ids(result) == ["R003"]


def test_r003_flags_dict_keys_into_emit(tmp_path):
    result = lint_source(
        tmp_path,
        """
        def report(obs, counts: dict):
            for name in counts.keys():
                obs.emit("row", name=name)
        """,
    )
    assert "R003" in rule_ids(result)


def test_r003_accepts_sorted_iteration(tmp_path):
    result = lint_source(
        tmp_path,
        """
        def collect(items: set):
            out = []
            for item in sorted(items):
                out.append(item)
            return [f"x{i}" for i in sorted(items)]
        """,
    )
    assert rule_ids(result) == []


def test_r003_infers_set_typed_attributes_project_wide(tmp_path):
    # `tripped: set[str]` annotated in one module types `obj.tripped`
    # wherever it is read.
    (tmp_path / "state.py").write_text(
        textwrap.dedent(
            """
            class Breaker:
                def __init__(self):
                    self.tripped: set[str] = set()
            """
        ),
        encoding="utf-8",
    )
    result = lint_source(
        tmp_path,
        """
        def report(breaker):
            return [name for name in breaker.tripped]
        """,
    )
    assert rule_ids(result) == ["R003"]


def test_r003_infers_dict_of_set_lookups(tmp_path):
    result = lint_source(
        tmp_path,
        """
        def tenants(index: dict[int, set[int]], facility: int):
            out = []
            for asn in index[facility]:
                out.append(asn)
            return out
        """,
    )
    assert rule_ids(result) == ["R003"]


def test_r003_set_comprehension_is_order_free(tmp_path):
    # Building a *set* from a set cannot leak iteration order; the rule
    # re-fires wherever that set is later iterated into an output.
    result = lint_source(
        tmp_path,
        """
        def distinct(items: set):
            return {i * 2 for i in items}
        """,
    )
    assert rule_ids(result) == []


def test_r003_set_accumulator_is_order_free(tmp_path):
    result = lint_source(
        tmp_path,
        """
        def widen(items: set):
            out = set()
            for item in items:
                out.add(item + 1)
            return out
        """,
    )
    assert rule_ids(result) == []


def test_r003_ignores_order_free_consumption(tmp_path):
    # Membership tests and local aggregation don't leak iteration order.
    result = lint_source(
        tmp_path,
        """
        def total(items: set):
            acc = 0
            for item in items:
                acc += item
            return acc
        """,
    )
    assert rule_ids(result) == []


def _breaker_registry(tmp_path):
    (tmp_path / "obs").mkdir()
    (tmp_path / "obs" / "events.py").write_text(
        'EVENT_NAMES = {\n    "breaker.open": "fixture",\n}\n',
        encoding="utf-8",
    )


def test_r003_flags_set_returning_method_in_sink(tmp_path):
    # Regression for the CircuitBreaker.open_keys() bug: a method
    # annotated ``-> set[...]`` types its *call result*, so iterating
    # that result into an emit payload is flagged project-wide.
    _breaker_registry(tmp_path)
    result = lint_source(
        tmp_path,
        """
        class Breaker:
            def open_keys(self) -> set[str]:
                return {"a", "b"}

        def report(obs, breaker: Breaker):
            for key in breaker.open_keys():
                obs.emit("breaker.open", key=key)
        """,
    )
    assert rule_ids(result) == ["R003"]


def test_r003_accepts_sorted_set_returning_method(tmp_path):
    _breaker_registry(tmp_path)
    result = lint_source(
        tmp_path,
        """
        class Breaker:
            def open_keys(self) -> set[str]:
                return {"a", "b"}

        def report(obs, breaker: Breaker):
            for key in sorted(breaker.open_keys()):
                obs.emit("breaker.open", key=key)
        """,
    )
    assert rule_ids(result) == []


# ----------------------------------------------------------------------
# R004 — the event namespace
# ----------------------------------------------------------------------


def _registry(names: dict[str, str]) -> str:
    entries = "\n".join(f'    "{k}": "{v}",' for k, v in names.items())
    return f"EVENT_NAMES = {{\n{entries}\n}}\n"


def test_r004_flags_unregistered_emit(tmp_path):
    (tmp_path / "obs").mkdir()
    (tmp_path / "obs" / "events.py").write_text(
        _registry({"known.event": "fires"}), encoding="utf-8"
    )
    result = lint_source(
        tmp_path,
        """
        def run(obs):
            obs.emit("known.event", n=1)
            obs.emit("rogue.event", n=2)
        """,
    )
    assert rule_ids(result) == ["R004"]
    assert "rogue.event" in result.findings[0].message


def test_r004_flags_dead_registry_entry(tmp_path):
    (tmp_path / "obs").mkdir()
    (tmp_path / "obs" / "events.py").write_text(
        _registry({"used.event": "fires", "dead.event": "never fires"}),
        encoding="utf-8",
    )
    result = lint_source(
        tmp_path,
        """
        def run(obs):
            obs.emit("used.event")
        """,
    )
    assert rule_ids(result) == ["R004"]
    assert "dead.event" in result.findings[0].message
    assert result.findings[0].path == "obs/events.py"


def test_r004_flags_missing_registry(tmp_path):
    result = lint_source(
        tmp_path,
        """
        def run(obs):
            obs.emit("orphan.event")
        """,
    )
    assert rule_ids(result) == ["R004"]
    assert "no EVENT_NAMES registry" in result.findings[0].message


def test_r004_checks_obsevent_constructor(tmp_path):
    (tmp_path / "obs").mkdir()
    (tmp_path / "obs" / "events.py").write_text(
        _registry({"good.event": "fires"}), encoding="utf-8"
    )
    result = lint_source(
        tmp_path,
        """
        def make(ObsEvent, obs):
            obs.emit("good.event")
            return ObsEvent(name="bad.event")
        """,
    )
    assert rule_ids(result) == ["R004"]
    assert "bad.event" in result.findings[0].message


# ----------------------------------------------------------------------
# R005 — frozen config mutation
# ----------------------------------------------------------------------

_FROZEN_CONFIG = """
from dataclasses import dataclass

@dataclass(frozen=True)
class EngineConfig:
    iterations: int = 5
"""


def test_r005_flags_cross_module_attribute_write(tmp_path):
    (tmp_path / "config.py").write_text(
        textwrap.dedent(_FROZEN_CONFIG), encoding="utf-8"
    )
    result = lint_source(
        tmp_path,
        """
        from config import EngineConfig

        def tweak():
            config = EngineConfig()
            config.iterations = 10
            return config
        """,
    )
    assert rule_ids(result) == ["R005"]
    assert "EngineConfig" in result.findings[0].message


def test_r005_flags_object_setattr_bypass(tmp_path):
    result = lint_source(
        tmp_path,
        """
        def tweak(config):
            object.__setattr__(config, "iterations", 10)
        """,
    )
    assert rule_ids(result) == ["R005"]


def test_r005_allows_self_setattr_in_post_init(tmp_path):
    result = lint_source(
        tmp_path,
        """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class EngineConfig:
            iterations: int = 5

            def __post_init__(self):
                object.__setattr__(self, "iterations", max(1, self.iterations))
        """,
    )
    assert rule_ids(result) == []


def test_r005_allows_replace_derivation(tmp_path):
    (tmp_path / "config.py").write_text(
        textwrap.dedent(_FROZEN_CONFIG), encoding="utf-8"
    )
    result = lint_source(
        tmp_path,
        """
        import dataclasses
        from config import EngineConfig

        def tweak():
            config = EngineConfig()
            return dataclasses.replace(config, iterations=10)
        """,
    )
    assert rule_ids(result) == []


# ----------------------------------------------------------------------
# R006 — CLI exit discipline
# ----------------------------------------------------------------------


def test_r006_flags_hard_exit_in_cli(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import sys

        def main():
            sys.exit(1)
        """,
        rel="cli.py",
    )
    assert rule_ids(result) == ["R006"]


def test_r006_flags_raised_systemexit(tmp_path):
    result = lint_source(
        tmp_path,
        """
        def main():
            raise SystemExit(3)
        """,
        rel="__main__.py",
    )
    assert rule_ids(result) == ["R006"]


def test_r006_allows_exit_via_main_and_helper(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import sys

        def main():
            return cli_error("bad input")

        def cli_error(message):
            print(message, file=sys.stderr)
            return 2

        sys.exit(main())
        """,
        rel="cli.py",
    )
    assert rule_ids(result) == []


def test_r006_ignores_non_cli_modules(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import sys

        def bail():
            sys.exit(1)
        """,
        rel="worker.py",
    )
    assert rule_ids(result) == []


# ----------------------------------------------------------------------
# R007 — process pools confined to the exec layer
# ----------------------------------------------------------------------


def test_r007_flags_multiprocessing_import_outside_exec(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import multiprocessing

        def spawn():
            return multiprocessing.cpu_count()
        """,
        rel="measurement/campaign.py",
    )
    assert rule_ids(result) == ["R007"]
    assert "exec" in result.findings[0].message


def test_r007_flags_concurrent_futures_from_import(tmp_path):
    result = lint_source(
        tmp_path,
        """
        from concurrent.futures import ProcessPoolExecutor

        def pool():
            return ProcessPoolExecutor(max_workers=2)
        """,
        rel="core/cfs.py",
    )
    assert rule_ids(result) == ["R007"]


def test_r007_allows_imports_inside_exec(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        def pool(workers: int):
            context = multiprocessing.get_context("fork")
            return ProcessPoolExecutor(workers, mp_context=context)
        """,
        rel="exec/pool.py",
    )
    assert rule_ids(result) == []


def test_r007_ignores_relative_and_unrelated_imports(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import json
        from . import helpers
        from .exec import parallel_map
        """,
        rel="core/pipeline.py",
    )
    assert rule_ids(result) == []


def test_r007_suppressible_with_reason(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import multiprocessing  # reprolint: disable=R007 fixture only
        """,
        rel="faults/inject.py",
    )
    assert rule_ids(result) == []
    assert len(result.suppressed) == 1
    assert result.suppressed[0][0].rule == "R007"


# ----------------------------------------------------------------------
# R008 — checkpoint writes go through the atomic helper
# ----------------------------------------------------------------------


def test_r008_flags_bare_write_open_in_checkpoint(tmp_path):
    result = lint_source(
        tmp_path,
        """
        def save(path, text):
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        """,
        rel="checkpoint/store.py",
    )
    assert rule_ids(result) == ["R008"]
    assert "atomic_write" in result.findings[0].message


def test_r008_flags_path_write_text_and_dynamic_mode(tmp_path):
    result = lint_source(
        tmp_path,
        """
        def save(path, text, mode):
            path.write_text(text)
            open(path, mode)
        """,
        rel="checkpoint/stages.py",
    )
    assert rule_ids(result) == ["R008", "R008"]


def test_r008_flags_raw_os_open_outside_helper(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import os

        def save(path):
            return os.open(path, os.O_WRONLY)
        """,
        rel="checkpoint/manifest.py",
    )
    assert rule_ids(result) == ["R008"]


def test_r008_allows_reads_and_exempts_atomic_helper(tmp_path):
    result = lint_source(
        tmp_path,
        """
        def load(path):
            with open(path, "rb") as handle:
                return handle.read()

        def load_default(path):
            with open(path) as handle:
                return handle.read()
        """,
        rel="checkpoint/store.py",
    )
    assert rule_ids(result) == []
    result = lint_source(
        tmp_path,
        """
        import os

        def atomic_write_bytes(path, data):
            fd = os.open(path, os.O_WRONLY | os.O_CREAT)
            os.write(fd, data)
            os.close(fd)
        """,
        rel="checkpoint/atomic.py",
    )
    assert rule_ids(result) == []


def test_r008_ignores_writes_outside_checkpoint(tmp_path):
    result = lint_source(
        tmp_path,
        """
        def export(path, text):
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        """,
        rel="export.py",
    )
    assert rule_ids(result) == []


# ----------------------------------------------------------------------
# R009 — serve read path never mutates snapshots
# ----------------------------------------------------------------------


def test_r009_flags_attribute_and_index_writes(tmp_path):
    result = lint_source(
        tmp_path,
        """
        def poison(snapshot, address):
            snapshot.epoch = 99
            snapshot.interfaces[address] = None
        """,
        rel="serve/query.py",
    )
    assert rule_ids(result) == ["R009", "R009"]
    assert "copy-on-write" in result.findings[0].message


def test_r009_flags_mutating_container_methods(tmp_path):
    result = lint_source(
        tmp_path,
        """
        def poison(final_snapshot):
            final_snapshot.links.append(None)
            final_snapshot.stats.update({"interfaces": 0})
        """,
        rel="serve/ingest.py",
    )
    assert rule_ids(result) == ["R009", "R009"]


def test_r009_flags_setattr_bypass_and_annotated_params(tmp_path):
    result = lint_source(
        tmp_path,
        """
        def poison(published: MapSnapshot):
            setattr(published, "epoch", 0)
            published.facility_tenants.clear()
        """,
        rel="serve/service.py",
    )
    assert rule_ids(result) == ["R009", "R009"]


def test_r009_allows_swap_rebinding_and_reads(tmp_path):
    result = lint_source(
        tmp_path,
        """
        class Engine:
            def swap(self, snapshot):
                self._snapshot = snapshot  # rebinding IS the swap

            def lookup(self, address):
                snapshot = self._snapshot
                return snapshot.interfaces.get(address)

        def collect(handle, snapshot):
            handle.snapshots.append(snapshot)  # a list of them, not one
        """,
        rel="serve/query.py",
    )
    assert rule_ids(result) == []


def test_r009_ignores_modules_outside_serve(tmp_path):
    result = lint_source(
        tmp_path,
        """
        def tweak(snapshot):
            snapshot.epoch = 1
        """,
        rel="core/pipeline.py",
    )
    assert rule_ids(result) == []


# ----------------------------------------------------------------------
# Suppressions, rule filtering, error handling
# ----------------------------------------------------------------------


def test_suppression_with_reason_silences_finding(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import random

        def draw():
            return random.random()  # reprolint: disable=R001 fixture only
        """,
    )
    assert rule_ids(result) == []
    assert len(result.suppressed) == 1
    finding, reason = result.suppressed[0]
    assert finding.rule == "R001"
    assert reason == "fixture only"


def test_suppression_on_preceding_line(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import random

        def draw():
            # reprolint: disable=R001 exercised by fixtures
            return random.random()
        """,
    )
    assert rule_ids(result) == []
    assert len(result.suppressed) == 1


def test_suppression_without_reason_does_not_suppress(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import random

        def draw():
            return random.random()  # reprolint: disable=R001
        """,
    )
    assert rule_ids(result) == ["R001"]


def test_suppression_only_covers_named_rule(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import random

        def draw():
            return random.random()  # reprolint: disable=R003 wrong rule
        """,
    )
    assert rule_ids(result) == ["R001"]


def test_rule_filter_runs_only_selected_rules(tmp_path):
    source = """
    import random
    import sys

    def main():
        random.random()
        sys.exit(1)
    """
    everything = lint_source(tmp_path, source, rel="cli.py")
    assert sorted(rule_ids(everything)) == ["R001", "R006"]
    only_exit = lint_source(tmp_path, source, rel="cli.py", rules=["R006"])
    assert rule_ids(only_exit) == ["R006"]
    assert only_exit.rules == ("R006",)


def test_unknown_rule_raises_lint_error(tmp_path):
    (tmp_path / "mod.py").write_text("x = 1\n", encoding="utf-8")
    with pytest.raises(LintError, match="unknown rule"):
        run_lint(tmp_path, rules=["R999"])


def test_missing_path_raises_lint_error(tmp_path):
    with pytest.raises(LintError, match="no such file"):
        run_lint(tmp_path / "absent")


def test_syntax_error_raises_lint_error(tmp_path):
    (tmp_path / "broken.py").write_text("def (:\n", encoding="utf-8")
    with pytest.raises(LintError, match="cannot parse"):
        run_lint(tmp_path)


# ----------------------------------------------------------------------
# R010 — service health state changes only via transition()
# ----------------------------------------------------------------------


def test_r010_flags_attribute_and_augmented_writes(tmp_path):
    result = lint_source(
        tmp_path,
        """
        def poison(health):
            health._state = "ok"
            health.epochs_behind += 1
        """,
        rel="serve/supervise.py",
        rules=["R010"],
    )
    assert rule_ids(result) == ["R010", "R010"]
    assert "transition()" in result.findings[0].message


def test_r010_flags_mutators_setattr_and_annotated_params(tmp_path):
    result = lint_source(
        tmp_path,
        """
        def poison(machine: ServiceHealth, service):
            machine._history.clear()
            setattr(service.health, "_state", "stale")
        """,
        rel="serve/service.py",
        rules=["R010"],
    )
    assert rule_ids(result) == ["R010", "R010"]


def test_r010_fires_outside_serve_too(tmp_path):
    result = lint_source(
        tmp_path,
        """
        def tamper(service):
            service.health._epochs_behind = 0
        """,
        rel="cli.py",
        rules=["R010"],
    )
    assert rule_ids(result) == ["R010"]


def test_r010_exempts_health_module_itself(tmp_path):
    result = lint_source(
        tmp_path,
        """
        class ServiceHealth:
            def transition(self, new_state, *, reason):
                self._state = new_state
                self._history.append((new_state, reason))
        """,
        rel="serve/health.py",
        rules=["R010"],
    )
    assert rule_ids(result) == []


def test_r010_allows_construction_reads_and_data_health(tmp_path):
    result = lint_source(
        tmp_path,
        """
        class MapService:
            def __init__(self):
                self.health = ServiceHealth()  # construction, not a write-through

            def report(self):
                return self.health.report(None)

        def summarize(entry, counts):
            entry.data_health = "degraded"  # inference field, not the machine
            counts["ok"] = 1
        """,
        rel="serve/service.py",
        rules=["R010"],
    )
    assert rule_ids(result) == []
