"""The reprolint self-gate: this repository's own source tree must be
invariant-clean.  Tier-1, so the driver blocks any PR that introduces
unseeded randomness, wall-clock reads in the inference layers, unsorted
set iteration into an output, an undeclared event name, a frozen-config
mutation, or an ad-hoc CLI exit."""

from __future__ import annotations

from pathlib import Path

import pytest

import repro
from repro.devtools import rule_catalog, run_lint

pytestmark = [pytest.mark.tier1, pytest.mark.lint]

PACKAGE_ROOT = Path(repro.__file__).resolve().parent


def test_source_tree_is_lint_clean():
    result = run_lint(PACKAGE_ROOT)
    rendered = "\n".join(finding.render() for finding in result.findings)
    assert not result.findings, f"reprolint findings:\n{rendered}"


def test_every_rule_ran_over_the_full_tree():
    result = run_lint(PACKAGE_ROOT)
    assert result.rules == tuple(rule_catalog())
    # The tree has dozens of modules; a collapsed scan (wrong root,
    # over-aggressive exclusion) would show up as a tiny file count.
    assert result.files_scanned > 50


def test_suppressions_in_tree_all_carry_reasons():
    """Every suppression that takes effect documents itself; the lint
    engine ignores bare ``disable=`` comments, so any that exist in the
    tree would surface as findings in the self-gate above.  Here we
    additionally pin the suppression inventory so waivers can't
    accumulate unnoticed."""
    result = run_lint(PACKAGE_ROOT)
    for finding, reason in result.suppressed:
        assert reason.strip(), f"reasonless suppression at {finding.render()}"
