"""The self-healing service: health machine, supervised ingest,
publish rollback, retention, and resume hardening.

The scripted-injector tests pin each recovery path one at a time (retry
then succeed, retry-exhaust then quarantine, corrupt publish then
rollback); the seeded end-to-end test runs the real moderate-intensity
fault plan and checks the acceptance contract — the service stays
answerable throughout and the final fingerprint still equals the
fault-free stream's.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.api import serve_map
from repro.core import PipelineConfig
from repro.faults import EpochIngestFault, FaultInjector, FaultPlan
from repro.measurement.campaign import TraceCorpus
from repro.obs import Instrumentation, MemorySink
from repro.serve import (
    MapService,
    ServiceHealth,
    ServicePolicy,
    open_snapshot,
)
from repro.serve.health import HealthPolicy, snapshot_data_health
from repro.serve.ingest import StreamingCfs
from repro.serve.service import STREAM_STAGE

#: Matches the shared ``small_stream_handle`` fixture (seed 3, 3 epochs),
#: whose final fingerprint is the clean baseline the fault runs must hit.
SEED = 3
EPOCHS = 3

RESUME_SEED = 11


class ScriptedInjector(FaultInjector):
    """Fails exactly the scripted (epoch, attempt) / (stage, attempt)
    pairs — no randomness, so each recovery path is pinned in isolation.

    The non-zero plan rates only mark the plan as serve-perturbing
    (disabling the mid-stream checkpoint, as any real service-fault
    plan would); the overridden hooks ignore them.
    """

    def __init__(self, *, epoch_failures=(), corrupt_publishes=()):
        super().__init__(FaultPlan(epoch_fail=1.0, snapshot_corrupt=1.0), seed=0)
        self.epoch_failures = set(epoch_failures)
        self.corrupt_publishes = set(corrupt_publishes)

    def check_epoch(self, epoch: int, attempt: int) -> None:
        if (epoch, attempt) in self.epoch_failures:
            raise EpochIngestFault(
                f"scripted failure of epoch {epoch} attempt {attempt}"
            )

    def corrupt_snapshot_payload(self, payload, *, stage, attempt):
        if (stage, attempt) in self.corrupt_publishes:
            torn = dict(payload)
            torn["fingerprint"] = "torn"
            return torn
        return payload


def make_service(
    *,
    injector=None,
    policy=None,
    checkpoint_dir=None,
    sink=None,
    notices=None,
):
    config = PipelineConfig.small(seed=SEED)
    if checkpoint_dir is not None:
        config = dataclasses.replace(config, checkpoint_dir=str(checkpoint_dir))
    service = MapService(
        config,
        instrumentation=Instrumentation(sink) if sink is not None else None,
        policy=policy,
        progress=notices.append if notices is not None else None,
    )
    if injector is not None:
        service.environment.fault_injector = injector
    return service


def published_epochs(handle):
    return [(s.epoch, s.final) for s in handle.snapshots]


# ----------------------------------------------------------------------
# The health state machine
# ----------------------------------------------------------------------


class TestServiceHealth:
    def test_failure_then_two_publishes_is_the_two_step_recovery(
        self, small_snapshot
    ):
        health = ServiceHealth()
        assert health.state == "ok"
        health.record_failure(reason="epoch 0 attempt 0 failed")
        assert health.state == "degraded"
        assert health.consecutive_failures == 1
        health.record_publish(small_snapshot)
        assert health.state == "recovering"
        assert health.consecutive_failures == 0
        health.record_publish(small_snapshot)
        assert health.state == "ok"
        assert [edge[:2] for edge in health.transitions] == [
            ("ok", "degraded"),
            ("degraded", "recovering"),
            ("recovering", "ok"),
        ]

    def test_falling_stale_after_enough_missed_epochs(self):
        health = ServiceHealth(policy=HealthPolicy(stale_after=2))
        health.record_quarantine(1)
        assert health.state == "degraded"
        assert health.epochs_behind == 1
        health.record_rollback("snapshot-epoch-2")
        assert health.state == "stale"
        assert health.epochs_behind == 2
        assert health.quarantined_epochs == (1,)
        assert health.rollbacks == 1

    def test_transition_rejects_unknown_states(self):
        health = ServiceHealth()
        with pytest.raises(ValueError, match="unknown health state"):
            health.transition("on-fire", reason="test")
        # Same-state transitions are silent no-ops, not recorded edges.
        health.transition("ok", reason="noop")
        assert health.transitions == ()

    def test_subscribers_see_every_edge(self):
        health = ServiceHealth()
        seen = []
        health.subscribe(lambda old, new, reason: seen.append((old, new)))
        health.record_failure(reason="boom")
        assert seen == [("ok", "degraded")]

    def test_report_carries_version_and_data_aggregates(self, small_snapshot):
        health = ServiceHealth()
        bare = health.report(None)
        assert bare["state"] == "ok"
        assert "fingerprint" not in bare
        assert bare["data"] == {
            "interfaces": 0,
            "ok_fraction": None,
            "mean_confidence": None,
        }
        document = health.report(small_snapshot)
        assert document["fingerprint"] == small_snapshot.fingerprint
        data = document["data"]
        assert data["interfaces"] == len(small_snapshot.interfaces)
        assert 0.0 <= data["ok_fraction"] <= 1.0
        assert data["mean_confidence"] > 0

    def test_data_health_aggregate_matches_hand_count(self, small_snapshot):
        data = snapshot_data_health(small_snapshot)
        healthy = sum(
            1
            for entry in small_snapshot.interfaces.values()
            if entry.data_health == "ok"
        )
        assert data["ok_fraction"] == round(
            healthy / len(small_snapshot.interfaces), 6
        )


# ----------------------------------------------------------------------
# Supervised ingest: retry, quarantine, drain
# ----------------------------------------------------------------------


class TestSupervisedIngest:
    def test_epoch_retry_then_succeed_is_invisible_in_the_map(
        self, small_stream_handle
    ):
        sink = MemorySink()
        service = make_service(
            injector=ScriptedInjector(epoch_failures={(1, 0)}),
            policy=ServicePolicy(max_epoch_retries=1),
            sink=sink,
        )
        handle = service.run_stream(epochs=EPOCHS)
        assert service.supervisor.retries == 1
        assert service.supervisor.quarantined == []
        assert (
            handle.final.fingerprint
            == small_stream_handle.final.fingerprint
        )
        # Every epoch still published, in order.
        assert published_epochs(handle) == [
            (0, False), (1, False), (2, False), (3, True),
        ]
        (retry,) = sink.by_name("serve.epoch.retry")
        assert retry.payload["epoch"] == 1
        assert service.health.state == "ok"  # recovered fully

    def test_retry_exhaustion_quarantines_and_keeps_serving(
        self, small_stream_handle
    ):
        sink = MemorySink()
        during = []

        class ProbeOnQuarantine(list):
            """Queries the live engine the moment quarantine is announced."""

            service = None

            def append(self, message):
                super().append(message)
                if (
                    self.service is not None
                    and "serving last good snapshot" in message
                ):
                    during.append(self.service.engine.execute("info"))

        notices = ProbeOnQuarantine()
        service = make_service(
            injector=ScriptedInjector(epoch_failures={(1, 0), (1, 1)}),
            policy=ServicePolicy(max_epoch_retries=1),
            sink=sink,
            notices=notices,
        )
        notices.service = service
        handle = service.run_stream(epochs=EPOCHS)

        # The quarantine moment: the service still answered, from the
        # last good (epoch 0) snapshot, without an error.
        (answer,) = during
        assert "error" not in answer
        assert answer["epoch"] == 0
        assert service.supervisor.quarantined == [1]
        assert service.supervisor.drains == 1
        assert service.health.quarantined_epochs == (1,)
        # Epoch 1 has no interim snapshot; the drain still feeds its
        # traces to the final pass, so the map converges identically.
        assert published_epochs(handle) == [(0, False), (2, False), (3, True)]
        assert (
            handle.final.fingerprint
            == small_stream_handle.final.fingerprint
        )
        (quarantine,) = sink.by_name("serve.epoch.quarantine")
        assert quarantine.payload == {"epoch": 1, "attempts": 2}
        # Recovery is the observable two-step: degraded -> recovering -> ok.
        edges = [edge[:2] for edge in service.health.transitions]
        assert ("degraded", "recovering") in edges
        assert edges[-1] == ("recovering", "ok")
        assert service.health.state == "ok"

    def test_corrupt_publish_rolls_back_to_last_good_stage(
        self, small_stream_handle, tmp_path
    ):
        sink = MemorySink()
        stage = "snapshot-epoch-1"
        service = make_service(
            injector=ScriptedInjector(
                corrupt_publishes={(stage, 0), (stage, 1)}
            ),
            policy=ServicePolicy(max_publish_retries=1),
            checkpoint_dir=tmp_path,
            sink=sink,
        )
        handle = service.run_stream(epochs=EPOCHS)
        assert service.supervisor.rollbacks == 1
        assert service.supervisor.publish_retries == 1
        # The corrupt stage was dropped; its neighbours survived.
        assert service.store.stage_digest(stage) is None
        assert service.store.stage_digest("snapshot-epoch-0") is not None
        assert service.store.stage_digest("snapshot-final") is not None
        assert published_epochs(handle) == [(0, False), (2, False), (3, True)]
        assert (
            handle.final.fingerprint
            == small_stream_handle.final.fingerprint
        )
        (rollback,) = sink.by_name("serve.snapshot.rollback")
        assert rollback.payload["stage"] == stage
        assert rollback.payload["fallback"] == "snapshot-epoch-0"
        # The durable directory's best snapshot is the (good) final.
        assert (
            open_snapshot(str(tmp_path)).fingerprint
            == handle.final.fingerprint
        )

    def test_corrupt_publish_once_is_retried_and_kept(self, tmp_path):
        stage = "snapshot-epoch-1"
        service = make_service(
            injector=ScriptedInjector(corrupt_publishes={(stage, 0)}),
            policy=ServicePolicy(max_publish_retries=1),
            checkpoint_dir=tmp_path,
        )
        handle = service.run_stream(epochs=EPOCHS)
        assert service.supervisor.publish_retries == 1
        assert service.supervisor.rollbacks == 0
        assert service.store.stage_digest(stage) is not None
        assert published_epochs(handle) == [
            (0, False), (1, False), (2, False), (3, True),
        ]

    def test_retention_ring_bounds_durable_epoch_stages(self, tmp_path):
        service = make_service(
            policy=ServicePolicy(snapshot_retention=2),
            checkpoint_dir=tmp_path,
        )
        service.run_stream(epochs=4)
        assert service.store.stage_digest("snapshot-epoch-0") is None
        assert service.store.stage_digest("snapshot-epoch-1") is None
        assert service.store.stage_digest("snapshot-epoch-2") is not None
        assert service.store.stage_digest("snapshot-epoch-3") is not None
        # The final stage never rotates out.
        assert service.store.stage_digest("snapshot-final") is not None


# ----------------------------------------------------------------------
# The real fault plan, end to end
# ----------------------------------------------------------------------


class TestSeededServiceFaults:
    def test_moderate_service_faults_heal_to_the_clean_fingerprint(
        self, tmp_path
    ):
        seed, epochs = 8, 8
        sink = MemorySink()
        faulty = MapService(
            dataclasses.replace(
                PipelineConfig.small(seed=seed),
                faults=FaultPlan(epoch_fail=0.30, snapshot_corrupt=0.30),
                checkpoint_dir=str(tmp_path),
            ),
            instrumentation=Instrumentation(sink),
            policy=ServicePolicy(max_epoch_retries=1, max_publish_retries=1),
        )
        handle = faulty.run_stream(epochs=epochs)
        supervisor = faulty.supervisor
        # This seed deterministically exercises both recovery paths
        # (the soak harness and BENCH_soak.json pin the same profile).
        assert len(supervisor.quarantined) >= 1
        assert supervisor.rollbacks >= 1
        assert sink.by_name("serve.epoch.quarantine")
        assert sink.by_name("serve.snapshot.rollback")
        assert sink.by_name("serve.health.transition")

        clean = MapService(PipelineConfig.small(seed=seed)).run_stream(
            epochs=epochs
        )
        assert handle.final.fingerprint == clean.final.fingerprint

        document = handle.health()
        assert document["state"] in ("ok", "recovering")
        assert document["quarantined_epochs"] == list(supervisor.quarantined)
        assert document["rollbacks"] == supervisor.rollbacks
        json.dumps(document)  # the health verb's answer is JSON-clean

    def test_soak_smoke_zero_query_errors_under_faults(self):
        from repro.serve.soak import run_soak

        report = run_soak(
            seed=8, scale="small", epochs=4, threads=2, verify_identity=False
        )
        assert report.queries > 0
        assert report.query_errors == 0
        assert report.availability == 1.0
        assert report.identical is None  # identity gate skipped
        assert sum(report.staleness.values()) == report.queries
        json.dumps(report.as_dict())


# ----------------------------------------------------------------------
# Resume hardening: every malformed stream-stage branch
# ----------------------------------------------------------------------


def _bool_epoch(payload):
    payload["epoch"] = True


def _zero_epoch(payload):
    payload["epoch"] = 0


def _string_epoch(payload):
    payload["epoch"] = "1"


def _missing_epoch(payload):
    del payload["epoch"]


def _boundaries_not_list(payload):
    payload["boundaries"] = {"0": payload["boundaries"][0]}


def _boundaries_wrong_length(payload):
    payload["boundaries"] = payload["boundaries"] + [payload["boundaries"][-1]]


def _boundaries_bool(payload):
    payload["boundaries"] = [True]


def _boundaries_negative(payload):
    payload["boundaries"] = [-1]


def _boundaries_decreasing(payload):
    payload["epoch"] = 2
    payload["boundaries"] = [5, 3]


def _plan_mismatch(payload):
    payload["task_sizes"] = [1, 2, 3]


def _campaign_undecodable(payload):
    payload["campaign"] = {"bogus": 1}


def _campaign_missing(payload):
    del payload["campaign"]


def _corpus_boundary_mismatch(payload):
    payload["boundaries"] = [payload["boundaries"][-1] + 1]


_TAMPER_CASES = [
    pytest.param(_bool_epoch, "unknown layout", id="bool-epoch"),
    pytest.param(_zero_epoch, "unknown layout", id="zero-epoch"),
    pytest.param(_string_epoch, "unknown layout", id="string-epoch"),
    pytest.param(_missing_epoch, "unknown layout", id="missing-epoch"),
    pytest.param(
        _boundaries_not_list, "unknown layout", id="boundaries-not-list"
    ),
    pytest.param(
        _boundaries_wrong_length, "unknown layout", id="boundaries-length"
    ),
    pytest.param(_boundaries_bool, "unknown layout", id="boundaries-bool"),
    pytest.param(
        _boundaries_negative, "unknown layout", id="boundaries-negative"
    ),
    pytest.param(
        _boundaries_decreasing, "unknown layout", id="boundaries-decreasing"
    ),
    pytest.param(_plan_mismatch, "planned differently", id="plan-mismatch"),
    pytest.param(
        _campaign_undecodable, "undecodable", id="campaign-undecodable"
    ),
    pytest.param(_campaign_missing, "undecodable", id="campaign-missing"),
    pytest.param(
        _corpus_boundary_mismatch,
        "disagree with its corpus",
        id="corpus-mismatch",
    ),
]


@pytest.fixture(scope="module")
def paused_checkpoint_dir(tmp_path_factory):
    checkpoint_dir = str(tmp_path_factory.mktemp("resume") / "ckpt")
    paused = serve_map(
        seed=RESUME_SEED, scale="small", epochs=EPOCHS,
        checkpoint_dir=checkpoint_dir, stop_after_epoch=0,
    )
    assert paused.final is None
    return checkpoint_dir


@pytest.fixture(scope="module")
def resume_probe(paused_checkpoint_dir):
    """One resume-configured service plus its pristine stream payload.

    Shared across the tamper cases: each writes a mutated copy of the
    stage and calls ``_try_resume`` directly, asserting the malformed
    state is refused (never decoded into a half-restored stream).
    """
    notices: list[str] = []
    config = dataclasses.replace(
        PipelineConfig.small(seed=RESUME_SEED),
        checkpoint_dir=paused_checkpoint_dir,
        resume=True,
    )
    service = MapService(config, progress=notices.append)
    pristine = service.store.load_stage(STREAM_STAGE)
    assert isinstance(pristine, dict)
    return service, notices, pristine


class TestResumeHardening:
    @pytest.mark.parametrize("tamper, fragment", _TAMPER_CASES)
    def test_malformed_stream_stage_degrades_to_fresh(
        self, resume_probe, tamper, fragment
    ):
        service, notices, pristine = resume_probe
        payload = json.loads(json.dumps(pristine))  # deep copy
        tamper(payload)
        service.store.write_stage(STREAM_STAGE, payload)
        result = service._try_resume(
            list(pristine["task_sizes"]),
            StreamingCfs(service.environment),
            TraceCorpus(),
        )
        assert result == (0, None, [])
        assert fragment in notices[-1]

    def test_non_dict_stream_stage_degrades_to_fresh(self, resume_probe):
        service, notices, pristine = resume_probe
        service.store.write_stage(STREAM_STAGE, ["not", "a", "dict"])
        result = service._try_resume(
            list(pristine["task_sizes"]),
            StreamingCfs(service.environment),
            TraceCorpus(),
        )
        assert result == (0, None, [])
        assert "unknown layout" in notices[-1]

    def test_pristine_stage_still_resumes(self, resume_probe):
        service, _notices, pristine = resume_probe
        service.store.write_stage(STREAM_STAGE, pristine)
        corpus = TraceCorpus()
        epochs_done, snapshot, boundaries = service._try_resume(
            list(pristine["task_sizes"]),
            StreamingCfs(service.environment),
            corpus,
        )
        assert epochs_done == 1
        assert snapshot is not None and snapshot.epoch == 0
        assert boundaries == pristine["boundaries"]
        assert len(corpus) == boundaries[-1]

    def test_campaign_initial_reports_restored_traces(self, tmp_path):
        checkpoint_dir = str(tmp_path / "ckpt")
        serve_map(
            seed=RESUME_SEED, scale="small", epochs=EPOCHS,
            checkpoint_dir=checkpoint_dir, stop_after_epoch=0,
        )
        sink = MemorySink()
        resumed = serve_map(
            seed=RESUME_SEED, scale="small", epochs=EPOCHS,
            checkpoint_dir=checkpoint_dir, resume=True,
            instrumentation=Instrumentation(sink),
        )
        assert resumed.resumed is True
        (initial,) = sink.by_name("campaign.initial")
        restored = initial.payload["restored"]
        assert restored > 0
        # Replayed-forward probes plus the restored prefix reconcile
        # with what the final snapshot says it ingested.
        assert (
            initial.payload["traces"] + restored
            >= resumed.final.traces_ingested
        )

        fresh_sink = MemorySink()
        fresh = serve_map(
            seed=RESUME_SEED, scale="small", epochs=EPOCHS,
            instrumentation=Instrumentation(fresh_sink),
        )
        (fresh_initial,) = fresh_sink.by_name("campaign.initial")
        assert fresh_initial.payload["restored"] == 0
        assert fresh.final.fingerprint == resumed.final.fingerprint
