"""MapSnapshot: immutability, fingerprinting, and the payload codec."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.checkpoint import config_fingerprint
from repro.serve import (
    build_snapshot,
    open_snapshot,
    snapshot_from_payload,
    snapshot_payload,
)


class TestBuildSnapshot:
    def test_indexes_cover_the_result(self, small_run, small_snapshot):
        _, _, result = small_run
        assert set(small_snapshot.interfaces) == set(result.interfaces)
        assert len(small_snapshot.links) == len(result.links)
        assert small_snapshot.stats["interfaces"] == len(result.interfaces)
        assert small_snapshot.stats["links"] == len(result.links)

    def test_aspair_index_groups_every_link(self, small_snapshot):
        regrouped = sum(
            len(links) for links in small_snapshot.links_by_aspair.values()
        )
        assert regrouped == len(small_snapshot.links)
        for (low, high), links in small_snapshot.links_by_aspair.items():
            assert low <= high
            for link in links:
                assert {low, high} == {link.near_asn, link.far_asn} or (
                    low == high == link.near_asn
                )

    def test_facility_tenants_sorted_and_consistent(self, small_snapshot):
        for facility, tenants in small_snapshot.facility_tenants.items():
            assert list(tenants) == sorted(tenants)
            assert len(set(tenants)) == len(tenants)

    def test_rebuild_reproduces_fingerprint(self, small_run, small_snapshot):
        env, corpus, result = small_run
        again = build_snapshot(
            result,
            epoch=1,
            final=True,
            seed=env.config.seed,
            config_fingerprint=config_fingerprint(env.config),
            traces_ingested=len(corpus),
        )
        assert again.fingerprint == small_snapshot.fingerprint

    def test_fingerprint_excludes_ingest_metadata(self, small_run, small_snapshot):
        env, _, result = small_run
        relabelled = build_snapshot(
            result,
            epoch=7,
            final=False,
            seed=env.config.seed,
            config_fingerprint=config_fingerprint(env.config),
            traces_ingested=0,
        )
        assert relabelled.fingerprint == small_snapshot.fingerprint


class TestImmutability:
    def test_dataclass_fields_frozen(self, small_snapshot):
        with pytest.raises(dataclasses.FrozenInstanceError):
            small_snapshot.epoch = 99

    def test_mappings_reject_writes(self, small_snapshot):
        address = next(iter(small_snapshot.interfaces))
        with pytest.raises(TypeError):
            small_snapshot.interfaces[address] = None
        with pytest.raises(TypeError):
            small_snapshot.facility_tenants[0] = ()

    def test_entries_frozen(self, small_snapshot):
        entry = next(iter(small_snapshot.interfaces.values()))
        with pytest.raises(dataclasses.FrozenInstanceError):
            entry.facility = 0


class TestPayloadCodec:
    def test_round_trip_is_lossless(self, small_snapshot):
        payload = snapshot_payload(small_snapshot)
        restored = snapshot_from_payload(
            json.loads(json.dumps(payload))  # through real JSON
        )
        assert restored.fingerprint == small_snapshot.fingerprint
        assert restored.epoch == small_snapshot.epoch
        assert restored.final is small_snapshot.final
        assert dict(restored.interfaces) == dict(small_snapshot.interfaces)
        assert restored.links == small_snapshot.links
        assert dict(restored.facility_tenants) == dict(
            small_snapshot.facility_tenants
        )

    def test_tampered_content_rejected(self, small_snapshot):
        payload = json.loads(json.dumps(snapshot_payload(small_snapshot)))
        payload["content"]["interfaces"].pop()
        with pytest.raises(ValueError, match="fingerprint"):
            snapshot_from_payload(payload)

    def test_wrong_schema_rejected(self, small_snapshot):
        payload = snapshot_payload(small_snapshot)
        payload = {**payload, "schema": "repro/other/1"}
        with pytest.raises(ValueError, match="schema"):
            snapshot_from_payload(payload)


class TestOpenSnapshot:
    def test_opens_a_payload_file(self, tmp_path, small_snapshot):
        target = tmp_path / "snap.json"
        target.write_text(
            json.dumps(snapshot_payload(small_snapshot)), encoding="utf-8"
        )
        opened = open_snapshot(target)
        assert opened.fingerprint == small_snapshot.fingerprint

    def test_rejects_garbage_file(self, tmp_path):
        target = tmp_path / "snap.json"
        target.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="not valid JSON"):
            open_snapshot(target)

    def test_rejects_directory_without_manifest(self, tmp_path):
        with pytest.raises(ValueError, match="manifest"):
            open_snapshot(tmp_path)
