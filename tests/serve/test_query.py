"""The query protocol and the copy-on-write read path.

The torn-map test is the serving contract: snapshots swap under
concurrent queries and every answer must be internally consistent with
exactly one published version — never a mix of two.
"""

from __future__ import annotations

import json
import threading

from repro.obs import Instrumentation
from repro.serve import QueryEngine, query_snapshot
from repro.topology.addressing import int_to_ip


class TestQueryProtocol:
    def test_iface_accepts_dotted_and_integer_forms(self, small_snapshot):
        address = next(iter(small_snapshot.interfaces))
        dotted = query_snapshot(small_snapshot, f"iface {int_to_ip(address)}")
        numeric = query_snapshot(small_snapshot, f"iface {address}")
        assert dotted == numeric
        assert dotted["found"] is True
        assert dotted["address"] == int_to_ip(address)
        assert dotted["owner_asn"] == small_snapshot.interfaces[address].owner_asn

    def test_iface_unknown_address_not_found(self, small_snapshot):
        absent = max(small_snapshot.interfaces) + 1
        response = query_snapshot(small_snapshot, f"iface {absent}")
        assert response["found"] is False
        assert response["fingerprint"] == small_snapshot.fingerprint

    def test_link_is_order_insensitive(self, small_snapshot):
        (low, high) = next(iter(small_snapshot.links_by_aspair))
        forward = query_snapshot(small_snapshot, f"link {low} {high}")
        backward = query_snapshot(small_snapshot, f"link {high} {low}")
        assert forward == backward
        assert forward["found"] is True
        assert len(forward["links"]) == len(
            small_snapshot.links_by_aspair[(low, high)]
        )

    def test_tenants_lists_facility_presence(self, small_snapshot):
        facility = next(iter(small_snapshot.facility_tenants))
        response = query_snapshot(small_snapshot, f"tenants {facility}")
        assert response["found"] is True
        assert tuple(response["tenants"]) == (
            small_snapshot.facility_tenants[facility]
        )

    def test_info_reports_version_and_sizes(self, small_snapshot):
        response = query_snapshot(small_snapshot, "info")
        assert response["epoch"] == small_snapshot.epoch
        assert response["fingerprint"] == small_snapshot.fingerprint
        assert response["interfaces"] == small_snapshot.stats["interfaces"]
        assert response["links"] == small_snapshot.stats["links"]

    def test_help_lists_commands(self, small_snapshot):
        response = query_snapshot(small_snapshot, "help")
        assert "iface <address>" in response["commands"]

    def test_errors_never_raise(self, small_snapshot):
        for line in (
            "",
            "   ",
            "bogus",
            "iface",
            "iface not-an-address",
            "link 1",
            "link a b",
            "tenants many",
        ):
            response = query_snapshot(small_snapshot, line)
            assert "error" in response
            assert response["fingerprint"] == small_snapshot.fingerprint


class TestQueryEngine:
    def test_no_snapshot_yet_is_an_error(self):
        engine = QueryEngine(Instrumentation())
        assert engine.current() is None
        assert engine.execute("info") == {"error": "no snapshot published yet"}

    def test_swap_switches_the_read_path(self, small_snapshot):
        obs = Instrumentation()
        engine = QueryEngine(obs)
        engine.swap(small_snapshot)
        assert engine.current() is small_snapshot
        response = engine.execute("info")
        assert response["fingerprint"] == small_snapshot.fingerprint
        assert obs.counter("serve.swaps") == 1
        assert obs.counter("serve.queries") == 1

    def test_execute_line_is_canonical_json(self, small_snapshot):
        engine = QueryEngine()
        engine.swap(small_snapshot)
        line = engine.execute_line("info")
        assert "\n" not in line
        document = json.loads(line)
        assert list(document) == sorted(document)


class TestTornMap:
    def test_swaps_under_concurrent_queries_never_tear(
        self, small_stream_handle
    ):
        """Hammer the engine from threads while the main thread swaps
        through every published version; each answer must match a pure
        recomputation against the single version it names."""
        snapshots = list(small_stream_handle.snapshots)
        assert len(snapshots) >= 2
        versions = {snapshot.fingerprint: snapshot for snapshot in snapshots}
        engine = QueryEngine()
        engine.swap(snapshots[0])

        address = next(iter(snapshots[-1].interfaces))
        pair = next(iter(snapshots[-1].links_by_aspair))
        lines = ["info", f"iface {address}", f"link {pair[0]} {pair[1]}"]

        stop = threading.Event()
        observed: list[list[tuple[str, dict]]] = [[] for _ in range(4)]

        def hammer(slot: int) -> None:
            i = 0
            while not stop.is_set():
                line = lines[i % len(lines)]
                observed[slot].append((line, engine.execute(line)))
                i += 1

        threads = [
            threading.Thread(target=hammer, args=(slot,)) for slot in range(4)
        ]
        for thread in threads:
            thread.start()
        for round_ in range(200):
            engine.swap(snapshots[round_ % len(snapshots)])
        stop.set()
        for thread in threads:
            thread.join()

        answered = 0
        for slot in observed:
            for line, response in slot:
                fingerprint = response["fingerprint"]
                assert fingerprint in versions  # a published version...
                # ...and the whole answer came from that one version.
                assert response == query_snapshot(
                    versions[fingerprint], line
                )
                answered += 1
        assert answered > 0


class TestAddressBounds:
    """Integer forms are re-bounded to [0, 2^32) — `isdigit` alone let
    oversized digit strings blow up inside `int_to_ip`."""

    def test_oversized_iface_integer_is_a_clean_error(self, small_snapshot):
        response = query_snapshot(small_snapshot, "iface 99999999999999")
        assert "bad address" in response["error"]
        assert response["fingerprint"] == small_snapshot.fingerprint

    def test_max_ipv4_is_still_a_valid_address(self, small_snapshot):
        response = query_snapshot(small_snapshot, "iface 4294967295")
        assert "error" not in response
        assert response["found"] is False

    def test_tenants_rejects_out_of_range_ids(self, small_snapshot):
        for bad in ("-5", "99999999999999"):
            response = query_snapshot(small_snapshot, f"tenants {bad}")
            assert "error" in response
            assert "found" not in response
        assert "outside [0, 2^32)" in query_snapshot(
            small_snapshot, "tenants 99999999999999"
        )["error"]

    def test_tenants_rejects_non_integer_ids(self, small_snapshot):
        response = query_snapshot(small_snapshot, "tenants five")
        assert response["error"] == "usage: tenants <facility-id>"


class TestHealthVerb:
    def test_snapshot_health_needs_a_live_service(self, small_snapshot):
        response = query_snapshot(small_snapshot, "health")
        assert "live service" in response["error"]

    def test_engine_answers_health_even_before_first_publish(self):
        from repro.serve import ServiceHealth

        engine = QueryEngine(Instrumentation(), health=ServiceHealth())
        response = engine.execute("health")
        assert response["state"] == "ok"
        assert response["epochs_behind"] == 0
        assert "error" not in response
        assert "fingerprint" not in response  # nothing published yet

    def test_engine_health_names_the_served_version(self, small_snapshot):
        from repro.serve import ServiceHealth

        engine = QueryEngine(Instrumentation(), health=ServiceHealth())
        engine.swap(small_snapshot)
        response = engine.execute("health")
        assert response["fingerprint"] == small_snapshot.fingerprint
        assert response["epoch"] == small_snapshot.epoch
        assert response["data"]["interfaces"] == len(small_snapshot.interfaces)

    def test_health_rejects_extra_arguments(self):
        from repro.serve import ServiceHealth

        engine = QueryEngine(Instrumentation(), health=ServiceHealth())
        error = engine.execute("health 1 2")["error"]
        assert error == "usage: health [facility-id]"

    def test_facility_health_reports_alarm_status(self, small_snapshot):
        from repro.serve import ServiceHealth

        health = ServiceHealth()
        health.record_map_assessment(
            {
                "assessment": "topology-change",
                "alarmed_facilities": [17],
                "active_alarms": 1,
                "observations": 4,
                "global_loss": 0.0,
                "fault_pressure": 0.0,
            }
        )
        engine = QueryEngine(Instrumentation(), health=health)
        engine.swap(small_snapshot)
        alarmed = engine.execute("health 17")
        assert alarmed["alarmed"] is True
        assert alarmed["assessment"] == "topology-change"
        assert alarmed["fingerprint"] == small_snapshot.fingerprint
        quiet = engine.execute("health 3")
        assert quiet["alarmed"] is False

    def test_facility_health_bounds_checked_like_tenants(self):
        from repro.serve import ServiceHealth

        engine = QueryEngine(Instrumentation(), health=ServiceHealth())
        # Same guard and error shape as the tenants argument: parse
        # failures are usage errors, out-of-range ids name the range.
        assert (
            engine.execute("health sideways")["error"]
            == "usage: health [facility-id]"
        )
        assert "outside [0, 2^32)" in engine.execute("health -1")["error"]
        assert (
            "outside [0, 2^32)" in engine.execute(f"health {2**32}")["error"]
        )
        # Before any publish the verb still answers for a valid id.
        response = engine.execute("health 5")
        assert response["alarmed"] is False
        assert "fingerprint" not in response
