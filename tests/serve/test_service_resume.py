"""Mid-stream crash/resume: a service restored from its checkpoint
re-publishes byte-identical snapshots and converges to the same map."""

from __future__ import annotations

from repro.api import serve_map
from repro.serve.service import STREAM_STAGE

SEED = 11
EPOCHS = 3


def fingerprints(handle):
    return [(s.epoch, s.final, s.fingerprint) for s in handle.snapshots]


class TestResume:
    def test_resumed_stream_republishes_identically(self, tmp_path):
        baseline = serve_map(
            seed=SEED, scale="small", epochs=EPOCHS,
            checkpoint_dir=str(tmp_path / "baseline"),
        )
        assert baseline.final is not None

        interrupted_dir = str(tmp_path / "interrupted")
        paused = serve_map(
            seed=SEED, scale="small", epochs=EPOCHS,
            checkpoint_dir=interrupted_dir, stop_after_epoch=1,
        )
        assert paused.final is None
        assert [s.epoch for s in paused.snapshots] == [0, 1]
        assert fingerprints(paused) == fingerprints(baseline)[:2]

        resumed = serve_map(
            seed=SEED, scale="small", epochs=EPOCHS,
            checkpoint_dir=interrupted_dir, resume=True,
        )
        assert resumed.resumed is True
        assert resumed.final is not None
        # The handle re-publishes the last pre-pause snapshot (epoch 1)
        # and then continues: epoch 2 plus the final convergence pass.
        assert fingerprints(resumed) == fingerprints(baseline)[1:]
        assert resumed.final.fingerprint == baseline.final.fingerprint

    def test_published_snapshots_carry_store_watermarks(self, tmp_path):
        handle = serve_map(
            seed=SEED, scale="small", epochs=2,
            checkpoint_dir=str(tmp_path / "store"),
        )
        store = handle.service.store
        assert store is not None
        for stage in ("snapshot-epoch-0", "snapshot-epoch-1", "snapshot-final"):
            digest = store.stage_digest(stage)
            assert isinstance(digest, str) and len(digest) == 64
        assert store.stage_digest(STREAM_STAGE) is not None

    def test_mismatched_epoch_plan_degrades_to_fresh_start(self, tmp_path):
        checkpoint_dir = str(tmp_path / "mismatch")
        paused = serve_map(
            seed=SEED, scale="small", epochs=4,
            checkpoint_dir=checkpoint_dir, stop_after_epoch=0,
        )
        assert paused.final is None
        notices: list[str] = []
        # Different epoch count -> different slice sizes: the stored
        # stream state no longer lines up and must not be decoded.
        from repro.core import PipelineConfig
        from repro.serve import MapService
        from dataclasses import replace

        config = replace(
            PipelineConfig.small(seed=SEED),
            checkpoint_dir=checkpoint_dir,
            resume=True,
        )
        service = MapService(config, progress=notices.append)
        handle = service.run_stream(EPOCHS)
        assert handle.resumed is False
        assert handle.final is not None
        fresh = serve_map(seed=SEED, scale="small", epochs=EPOCHS)
        assert handle.final.fingerprint == fresh.final.fingerprint
        assert any("starting fresh" in notice for notice in notices)
