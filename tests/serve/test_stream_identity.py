"""Stream/batch identity: the service's final snapshot fingerprints
byte-identical to the one-shot batch pipeline's map.

This is the acceptance contract of the streaming redesign — chopping
the campaign into epochs and folding deltas incrementally must be an
implementation detail invisible in the published map.  Checked on
seeds 0-4 at both the small and default scales.
"""

from __future__ import annotations

import pytest

from repro.api import run_pipeline, serve_map
from repro.checkpoint import config_fingerprint
from repro.core import PipelineConfig
from repro.serve import build_snapshot, slice_epochs


def batch_fingerprint(config: PipelineConfig) -> str:
    """The one-shot batch pipeline's map fingerprint for ``config``."""
    result = run_pipeline(config=config)
    snapshot = build_snapshot(
        result.cfs_result,
        epoch=0,
        final=True,
        seed=config.seed,
        config_fingerprint=config_fingerprint(config),
        traces_ingested=len(result.corpus),
    )
    return snapshot.fingerprint


class TestSliceEpochs:
    def test_concatenation_reproduces_the_plan(self):
        plan = list(range(11))
        for epochs in (1, 2, 3, 4, 11):
            slices = slice_epochs(plan, epochs)
            assert len(slices) == epochs
            assert [task for chunk in slices for task in chunk] == plan
            sizes = {len(chunk) for chunk in slices}
            assert max(sizes) - min(sizes) <= 1

    def test_more_epochs_than_tasks_leaves_empty_tails(self):
        slices = slice_epochs([1, 2], 4)
        assert slices == [[1], [2], [], []]

    def test_zero_epochs_rejected(self):
        with pytest.raises(ValueError, match="at least 1"):
            slice_epochs([1], 0)


class TestStreamIdentity:
    def test_shared_fixture_identity_seed3(
        self, small_stream_handle, small_snapshot
    ):
        """The session stream run (seed 3) matches the session batch run."""
        final = small_stream_handle.final
        assert final is not None
        assert final.final is True
        assert final.fingerprint == small_snapshot.fingerprint

    def test_snapshot_history_is_versioned(self, small_stream_handle):
        snapshots = small_stream_handle.snapshots
        assert [s.epoch for s in snapshots if not s.final] == [0, 1, 2]
        assert snapshots[-1].final is True
        assert snapshots[-1].epoch == 3  # the epoch count
        ingested = [s.traces_ingested for s in snapshots if not s.final]
        assert ingested == sorted(ingested)  # the stream only grows
        fingerprint = config_fingerprint(
            small_stream_handle.environment.config
        )
        assert all(s.config_fingerprint == fingerprint for s in snapshots)

    @pytest.mark.parametrize("seed", range(5))
    def test_small_scale_identity(self, seed):
        handle = serve_map(seed=seed, scale="small", epochs=3)
        assert handle.final is not None
        assert handle.final.fingerprint == batch_fingerprint(
            PipelineConfig.for_scale("small", seed=seed)
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_default_scale_identity(self, seed):
        handle = serve_map(seed=seed, scale="default", epochs=2)
        assert handle.final is not None
        assert handle.final.fingerprint == batch_fingerprint(
            PipelineConfig.for_scale("default", seed=seed)
        )
