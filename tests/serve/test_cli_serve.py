"""The ``repro serve`` subcommand: stream summary plus the query loop."""

from __future__ import annotations

import json

from repro.cli import main


class TestServeCli:
    def test_streams_and_answers_queries(self, tmp_path, capsys):
        queries = tmp_path / "queries.txt"
        queries.write_text("info\nhelp\nbogus\n", encoding="utf-8")
        code = main(
            [
                "--seed", "0", "--scale", "small",
                "serve", "--epochs", "2", "--queries", str(queries),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "map service" in out
        # One summary line per published snapshot: 2 epochs + final.
        summaries = [l for l in out.splitlines() if "snapshot" in l and "fingerprint" in l]
        assert len(summaries) >= 3
        assert any("final" in line for line in summaries)
        responses = [
            json.loads(line)
            for line in out.splitlines()
            if line.startswith("{")
        ]
        assert len(responses) == 3
        info, help_, bogus = responses
        assert info["query"] == "info" and info["final"] is True
        assert "commands" in help_
        assert "error" in bogus
        # Every response names the same (final) published version.
        assert info["fingerprint"] == bogus["fingerprint"]

    def test_rejects_invalid_epochs(self, capsys):
        code = main(["serve", "--epochs", "0"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: ")

    def test_resume_requires_checkpoint_dir(self, capsys):
        code = main(["serve", "--resume"])
        captured = capsys.readouterr()
        assert code == 2
        assert "checkpoint-dir" in captured.err
