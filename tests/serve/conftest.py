"""Serve-suite fixtures: one session snapshot built from the shared
small run (treat it as read-only — that is the whole point)."""

from __future__ import annotations

import pytest

from repro.checkpoint import config_fingerprint
from repro.core import PipelineConfig
from repro.serve import MapService, build_snapshot


@pytest.fixture(scope="session")
def small_snapshot(small_run):
    """A final snapshot of the shared small run's converged map."""
    env, corpus, result = small_run
    return build_snapshot(
        result,
        epoch=1,
        final=True,
        seed=env.config.seed,
        config_fingerprint=config_fingerprint(env.config),
        traces_ingested=len(corpus),
    )


@pytest.fixture(scope="session")
def small_stream_handle():
    """One streamed service run at the shared small seed (seed=3, the
    same config as ``small_env`` — so its final snapshot must match
    ``small_snapshot`` byte for byte)."""
    service = MapService(PipelineConfig.small(seed=3))
    return service.run_stream(epochs=3)
