"""Temporal-mode service tests: churned streams, detection, empty tails.

The expensive end-to-end cases share one module-scoped churned run (an
injected facility power loss at the largest facility) and assert the
whole chain: per-epoch re-planning, censored traces, snapshot diffs,
a localised alarm, the clear after power returns, and the health
surface's change-vs-fault verdict.
"""

from __future__ import annotations

import pytest

from repro.core import PipelineConfig
from repro.measurement.campaign import CampaignDriver
from repro.serve import MapService
from repro.topology.churn import (
    FACILITY_POWER_LOSS,
    ChurnConfig,
    ChurnEvent,
    ChurnPlan,
    apply_events,
    plan_churn,
)

EPOCHS = 7
OUTAGE_EPOCH = 2
OUTAGE_DURATION = 2


def _largest_facility(topology) -> int:
    counts: dict[int, int] = {}
    for link in topology.interconnections.values():
        for facility in (link.facility_a, link.facility_b):
            if facility is not None:
                counts[facility] = counts.get(facility, 0) + 1
    return max(sorted(counts), key=lambda f: counts[f])


def _injected_plan(topology, target: int) -> ChurnPlan:
    events = (
        ChurnEvent(
            kind=FACILITY_POWER_LOSS,
            epoch=OUTAGE_EPOCH,
            duration=OUTAGE_DURATION,
            facility_id=target,
        ),
    )
    views = tuple(
        apply_events(topology, events, epoch) for epoch in range(EPOCHS)
    )
    return ChurnPlan(
        seed=3,
        epochs=EPOCHS,
        config=ChurnConfig.zero(),
        events=events,
        views=views,
    )


@pytest.fixture(scope="module")
def churned_run():
    """One churned stream with a single injected power loss."""
    service = MapService(PipelineConfig.small(seed=3))
    target = _largest_facility(service.environment.topology)
    plan = _injected_plan(service.environment.topology, target)
    handle = service.run_stream(EPOCHS, churn=plan)
    return service, handle, target


class TestChurnedStream:
    def test_one_snapshot_per_epoch_no_final(self, churned_run):
        _, handle, _ = churned_run
        assert [s.epoch for s in handle.snapshots] == list(range(EPOCHS))
        # The temporal stream never converges to a batch map: the world
        # moved mid-run, so there is no single truth to converge to.
        assert handle.final is None

    def test_outage_alarm_is_localised_and_cleared(self, churned_run):
        service, _, target = churned_run
        assert service.detector is not None
        kinds = [(r.kind, r.facility_id) for r in service.detector.reports]
        assert ("alarm", target) in kinds
        assert ("clear", target) in kinds
        assert all(facility == target for _, facility in kinds)
        alarm = next(
            r for r in service.detector.reports if r.kind == "alarm"
        )
        # Onset at OUTAGE_EPOCH, confirm_epochs=2 -> alarm one epoch on.
        assert alarm.epoch == OUTAGE_EPOCH + 1
        clear = next(
            r for r in service.detector.reports if r.kind == "clear"
        )
        assert clear.epoch >= OUTAGE_EPOCH + OUTAGE_DURATION + 1

    def test_health_surface_reports_the_verdict(self, churned_run):
        service, _, _ = churned_run
        # After recovery and the clear, the map settled back down.
        assert service.health.map_assessment == "stable"
        assert service.health.alarmed_facilities() == ()
        document = service.health.as_dict()
        assert document["map_change"]["observations"] == EPOCHS

    def test_outage_epoch_snapshot_lost_the_facility(self, churned_run):
        _, handle, target = churned_run
        from repro.inference.disruption import facility_endpoint_counts

        before = facility_endpoint_counts(handle.snapshots[OUTAGE_EPOCH - 1])
        during = facility_endpoint_counts(handle.snapshots[OUTAGE_EPOCH])
        assert before.get(target, 0) > 0
        # Not necessarily zero: censoring cannot hide the VP's first
        # egress, and far-side constraint narrowing can still pin a few
        # links there — the detector keys on the crater, not emptiness.
        assert during.get(target, 0) < before.get(target, 0) * 0.5

    def test_epochs_beyond_plan_horizon_rejected(self, churned_run):
        service, _, target = churned_run
        plan = _injected_plan(service.environment.topology, target)
        with pytest.raises(ValueError, match="covers 7 epochs"):
            MapService(PipelineConfig.small(seed=3)).run_stream(
                EPOCHS + 1, churn=plan
            )


class TestQuietChurnIsQuiet:
    def test_zero_churn_plan_never_alarms(self):
        service = MapService(PipelineConfig.small(seed=3))
        plan = plan_churn(
            service.environment.topology, 3, ChurnConfig.zero(), seed=3
        )
        service.run_stream(3, churn=plan)
        assert service.detector is not None
        assert service.detector.reports == []
        assert service.health.map_assessment == "stable"


class TestEmptyTailEpochs:
    def test_dry_feed_publishes_unchanged_fingerprint_and_stays_ok(
        self, monkeypatch
    ):
        """``epochs > len(plan)``: the pinned slice_epochs behavior at
        the service level — trailing empty epochs publish snapshots
        with the fingerprint unchanged and health never leaves ok."""
        original = CampaignDriver.plan_initial_campaign

        def tiny(self, targets):
            return original(self, targets)[:4]

        monkeypatch.setattr(CampaignDriver, "plan_initial_campaign", tiny)
        service = MapService(PipelineConfig.small(seed=3))
        handle = service.run_stream(6)
        streamed = [s for s in handle.snapshots if not s.final]
        assert len(streamed) == 6
        # Epochs 4 and 5 folded nothing: identical content, same
        # fingerprint, and the trace counter stops growing.
        assert streamed[4].fingerprint == streamed[3].fingerprint
        assert streamed[5].fingerprint == streamed[3].fingerprint
        assert streamed[5].traces_ingested == streamed[3].traces_ingested
        assert service.health.state == "ok"
