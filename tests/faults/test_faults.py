"""Unit tests for the fault plan and injector."""

from __future__ import annotations

import pytest

from repro.datasets.peeringdb import PeeringDBSnapshot
from repro.faults import (
    FaultInjector,
    FaultPlan,
    QueryTimeout,
    RateLimitExceeded,
    VantagePointOutage,
)
from repro.measurement.platforms import VantagePoint
from repro.measurement.traceroute import TraceHop, Traceroute


def _vp(vp_id: str = "atlas-0", asn: int = 64500) -> VantagePoint:
    return VantagePoint(
        vp_id=vp_id,
        platform="ripe-atlas",
        asn=asn,
        router_id=1,
        metro="Frankfurt",
        country="DE",
        region="Europe",
    )


def _trace(n_hops: int = 6) -> Traceroute:
    hops = tuple(
        TraceHop(ttl=ttl, address=1000 + ttl, rtt_ms=float(ttl))
        for ttl in range(1, n_hops + 1)
    )
    return Traceroute(
        source_id="atlas-0",
        platform="ripe-atlas",
        src_asn=64500,
        dst_address=9999,
        hops=hops,
        reached=True,
    )


class TestFaultPlan:
    def test_zero_is_zero(self):
        assert FaultPlan.zero().is_zero
        assert not FaultPlan.zero().perturbs_datasets

    def test_moderate_matches_issue_profile(self):
        plan = FaultPlan.moderate()
        assert plan.hop_loss == pytest.approx(0.10)
        assert plan.vp_outage == pytest.approx(0.05)
        assert plan.netfac_stale == pytest.approx(0.05)
        assert not plan.is_zero
        assert plan.perturbs_datasets

    def test_rates_validated(self):
        with pytest.raises(ValueError, match="hop_loss"):
            FaultPlan(hop_loss=1.5)
        with pytest.raises(ValueError, match="vp_outage"):
            FaultPlan(vp_outage=-0.1)
        with pytest.raises(ValueError):
            FaultPlan.moderate().replace(lg_timeout=2.0)

    def test_scaled(self):
        plan = FaultPlan.moderate().scaled(0.5)
        assert plan.hop_loss == pytest.approx(0.05)
        assert FaultPlan.moderate().scaled(0.0).is_zero
        # Clamped, not rejected, when scaling past 1.
        assert FaultPlan(hop_loss=0.8).scaled(2.0).hop_loss == 1.0
        with pytest.raises(ValueError):
            FaultPlan.moderate().scaled(-1.0)

    def test_as_dict_round_trip(self):
        plan = FaultPlan.moderate()
        assert FaultPlan(**plan.as_dict()) == plan


class TestFaultInjector:
    def test_zero_plan_never_perturbs(self):
        injector = FaultInjector(FaultPlan.zero(), seed=3)
        trace = _trace()
        assert injector.perturb_trace(trace) is trace
        injector.check_vp(_vp())
        injector.check_looking_glass(64500)
        assert injector.alias_false_negative() is False
        assert injector.counts == {}

    def test_deterministic_across_instances(self):
        traces = [_trace(n) for n in (3, 5, 8, 6, 4)] * 4
        first = FaultInjector(FaultPlan(hop_loss=0.5), seed=7)
        second = FaultInjector(FaultPlan(hop_loss=0.5), seed=7)
        assert [first.perturb_trace(t).hops for t in traces] == [
            second.perturb_trace(t).hops for t in traces
        ]

    def test_hop_loss_blanks_hops(self):
        injector = FaultInjector(FaultPlan(hop_loss=1.0), seed=0)
        perturbed = injector.perturb_trace(_trace())
        assert all(hop.address is None for hop in perturbed.hops)
        assert all(hop.rtt_ms is None for hop in perturbed.hops)
        assert not perturbed.reached
        assert injector.counts["fault.hop_lost"] == 6

    def test_truncation_shortens_trace(self):
        injector = FaultInjector(FaultPlan(trace_truncation=1.0), seed=1)
        original = _trace()
        perturbed = injector.perturb_trace(original)
        assert len(perturbed.hops) < len(original.hops)
        assert not perturbed.reached

    def test_vp_outage_raises(self):
        injector = FaultInjector(FaultPlan(vp_outage=1.0), seed=0)
        with pytest.raises(VantagePointOutage):
            injector.check_vp(_vp())
        assert injector.counts["fault.vp_outage"] == 1

    def test_lg_faults_raise(self):
        injector = FaultInjector(FaultPlan(lg_timeout=1.0), seed=0)
        with pytest.raises(QueryTimeout):
            injector.check_looking_glass(64500)
        injector = FaultInjector(FaultPlan(lg_rate_limit=1.0), seed=0)
        with pytest.raises(RateLimitExceeded):
            injector.check_looking_glass(64500)

    def test_fault_kinds_are_stable(self):
        assert VantagePointOutage.kind == "vp-outage"
        assert RateLimitExceeded.kind == "rate-limit"
        assert QueryTimeout.kind == "timeout"


class TestCorruptPeeringdb:
    @pytest.fixture(scope="class")
    def snapshot(self, small_topology) -> PeeringDBSnapshot:
        return PeeringDBSnapshot.build(small_topology, seed=2)

    def test_zero_plan_returns_same_object(self, snapshot):
        injector = FaultInjector(FaultPlan.zero(), seed=0)
        assert injector.corrupt_peeringdb(snapshot) is snapshot

    def test_netfac_missing_drops_rows(self, snapshot):
        injector = FaultInjector(FaultPlan(netfac_missing=1.0), seed=0)
        corrupted = injector.corrupt_peeringdb(snapshot)
        assert corrupted is not snapshot
        assert corrupted.netfac == []
        assert len(snapshot.netfac) > 0  # original untouched
        assert injector.counts["fault.netfac_dropped"] == len(snapshot.netfac)

    def test_netfac_stale_adds_contradictions(self, snapshot):
        injector = FaultInjector(FaultPlan(netfac_stale=1.0), seed=0)
        corrupted = injector.corrupt_peeringdb(snapshot)
        added = len(corrupted.netfac) - len(snapshot.netfac)
        assert added > 0
        assert injector.counts["fault.netfac_stale"] == added
        # Every added row contradicts the original snapshot.
        original = snapshot.as_facility_map()
        stale_rows = corrupted.netfac[len(snapshot.netfac) :]
        for row in stale_rows:
            assert row.facility_id not in original.get(row.asn, set())

    def test_ixfac_missing_drops_rows(self, snapshot):
        injector = FaultInjector(FaultPlan(ixfac_missing=1.0), seed=0)
        corrupted = injector.corrupt_peeringdb(snapshot)
        assert corrupted.ixfac == []
        assert len(snapshot.ixfac) > 0

    def test_other_tables_shared(self, snapshot):
        injector = FaultInjector(FaultPlan(netfac_missing=0.5), seed=0)
        corrupted = injector.corrupt_peeringdb(snapshot)
        assert corrupted.facilities is snapshot.facilities
        assert corrupted.ixlan is snapshot.ixlan
        assert corrupted.netixlan is snapshot.netixlan
        assert corrupted.quality is snapshot.quality
