"""Chaos smoke tests: zero-fault identity and graceful degradation."""

from __future__ import annotations

import dataclasses

from repro.api import FaultPlan, PipelineConfig, run_pipeline
from repro.faults.chaos import comparable_export
from repro.obs import Instrumentation


class TestZeroFaultIdentity:
    def test_zero_plan_byte_identical_to_no_injector(self):
        """The acceptance property: installing a zero FaultPlan must not
        move a single byte of the exported inference map."""
        seed = 0
        plain = run_pipeline(config=PipelineConfig.for_scale("small", seed=seed))
        injected = run_pipeline(
            config=PipelineConfig.for_scale("small", seed=seed),
            faults=FaultPlan.zero(),
        )
        assert injected.environment.fault_injector is not None
        assert injected.environment.fault_injector.counts == {}
        assert comparable_export(
            plain.environment, plain.cfs_result
        ) == comparable_export(injected.environment, injected.cfs_result)


class TestModerateProfile:
    def test_moderate_profile_completes_gracefully(self):
        """The ISSUE's moderate profile: no exceptions escape, resilience
        activity is visible on the metrics, and the pipeline still
        resolves a useful share of interfaces."""
        config = PipelineConfig.for_scale("small", seed=0)
        config = dataclasses.replace(
            config,
            faults=FaultPlan.moderate(),
            cfs=config.cfs.replace(degraded_mode=True),
        )
        obs = Instrumentation()
        run = run_pipeline(config=config, instrumentation=obs)
        result = run.cfs_result
        metrics = result.metrics
        assert metrics is not None
        # Faults were injected and retried, and probes still went out.
        assert metrics.counter("campaign.probe_faults") > 0
        assert metrics.counter("campaign.retries") > 0
        assert metrics.counter("campaign.probes_issued") > 0
        assert metrics.counter("fault.hop_lost") > 0
        # Dataset faults happen at build time and land on the injector.
        injector = run.environment.fault_injector
        assert injector is not None
        assert injector.counts.get("fault.netfac_dropped", 0) > 0
        # The run degrades, it does not collapse.
        assert len(result.interfaces) > 0
        assert result.resolved_fraction() > 0.2

    def test_accuracy_degrades_not_crashes_with_intensity(self):
        """A mini two-point sweep: full intensity completes, still sees
        and resolves interfaces, and what it resolves stays reasonably
        accurate (graceful degradation, not collapse).  Per-seed accuracy
        is noisy in both directions, so the test asserts floors rather
        than monotonicity."""
        from repro.validation.metrics import score_interfaces

        for intensity in (0.0, 1.0):
            config = PipelineConfig.for_scale("small", seed=1)
            config = dataclasses.replace(
                config,
                faults=FaultPlan.moderate().scaled(intensity),
                cfs=config.cfs.replace(degraded_mode=True),
            )
            run = run_pipeline(config=config)
            result = run.cfs_result
            assert result.peering_interfaces_seen > 0
            assert result.resolved_fraction() > 0.2
            report = score_interfaces(run.environment.topology, result)
            assert report.facility_accuracy > 0.5


class TestDegradedMode:
    def test_degraded_mode_widens_instead_of_emptying(self):
        """With every netfac row gone, plain CFS leaves interfaces at
        missing-data; degraded mode recovers candidates (marked)."""
        wipe = FaultPlan(netfac_missing=1.0)
        results = {}
        for degraded in (False, True):
            config = PipelineConfig.for_scale("small", seed=0)
            config = dataclasses.replace(
                config,
                faults=wipe,
                cfs=config.cfs.replace(degraded_mode=degraded),
            )
            obs = Instrumentation()
            results[degraded] = run_pipeline(config=config, instrumentation=obs)
        plain = results[False].cfs_result
        tolerant = results[True].cfs_result

        def missing(result):
            return sum(
                1
                for state in result.interfaces.values()
                if state.status.value == "missing-data"
            )

        # The mechanism under test: widening converts missing-data
        # interfaces into constrained (often resolvable) ones.
        assert missing(tolerant) < missing(plain)
        widened = [
            state
            for state in tolerant.interfaces.values()
            if state.data_health == "degraded"
        ]
        assert widened
        assert tolerant.metrics.counter("cfs.degraded_widenings") > 0
        for state in widened:
            assert state.candidates  # widened, not emptied
            assert state.confidence < 1.0

    def test_confidence_annotations_exported(self):
        config = PipelineConfig.for_scale("small", seed=0)
        config = dataclasses.replace(
            config,
            faults=FaultPlan(netfac_missing=1.0),
            cfs=config.cfs.replace(degraded_mode=True),
        )
        run = run_pipeline(config=config)
        from repro.export import export_result

        document = export_result(run.cfs_result, run.environment.facility_db)
        assert all(
            "confidence" in record and "data_health" in record
            for record in document["interfaces"]
        )
        assert any(
            record["data_health"] == "degraded"
            for record in document["interfaces"]
        )
        assert all("confidence" in link for link in document["links"])
