"""Resilience layer: retry policy, circuit breaker, budget, driver wiring."""

from __future__ import annotations

import dataclasses
from random import Random

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.measurement.campaign import CampaignDriver, Hitlist, TraceCorpus
from repro.measurement.platforms import (
    LG_QUERY_INTERVAL_S,
    LookingGlassPlatform,
)
from repro.measurement.resilience import (
    CircuitBreaker,
    ProbeBudget,
    ResilienceConfig,
    RetryPolicy,
)
from repro.obs import Instrumentation, MemorySink


class TestRetryPolicy:
    def test_exponential_growth(self):
        policy = RetryPolicy(jitter_fraction=0.0)
        assert policy.backoff_s(0) == pytest.approx(1.0)
        assert policy.backoff_s(1) == pytest.approx(2.0)
        assert policy.backoff_s(2) == pytest.approx(4.0)

    def test_jitter_bounded(self):
        policy = RetryPolicy(jitter_fraction=0.25)
        rng = Random(0)
        values = [policy.backoff_s(1, rng) for _ in range(50)]
        assert all(1.5 <= value <= 2.5 for value in values)
        assert len(set(values)) > 1  # actually jittered

    def test_no_rng_is_midpoint(self):
        policy = RetryPolicy(jitter_fraction=0.25)
        assert policy.backoff_s(3) == pytest.approx(8.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="base_backoff_s"):
            RetryPolicy(base_backoff_s=-1.0)
        with pytest.raises(ValueError, match="backoff_multiplier"):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError, match="jitter_fraction"):
            RetryPolicy(jitter_fraction=1.0)


class TestCircuitBreaker:
    def test_opens_at_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=60.0)
        assert breaker.record_failure("vp") is False
        assert not breaker.is_open("vp")
        assert breaker.record_failure("vp") is False
        assert breaker.record_failure("vp") is True  # newly opened
        assert breaker.is_open("vp")
        assert breaker.tripped == {"vp"}
        assert breaker.open_keys() == ("vp",)
        # Further failures while open are not "newly opened".
        assert breaker.record_failure("vp") is False

    def test_half_open_after_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=60.0)
        breaker.record_failure("vp")
        assert breaker.is_open("vp")
        breaker.advance(59.0)
        assert breaker.is_open("vp")
        breaker.advance(1.0)
        assert not breaker.is_open("vp")  # half-open: trial allowed

    def test_trial_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=10.0)
        breaker.record_failure("vp")
        breaker.record_failure("vp")
        breaker.advance(10.0)
        breaker.record_success("vp")
        assert not breaker.is_open("vp")
        # Failure count was reset: one new failure does not re-open.
        assert breaker.record_failure("vp") is False
        assert not breaker.is_open("vp")

    def test_trial_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=10.0)
        breaker.record_failure("vp")
        breaker.advance(10.0)
        assert not breaker.is_open("vp")
        breaker.record_failure("vp")
        assert breaker.is_open("vp")

    def test_keys_independent(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure("a")
        assert breaker.is_open("a")
        assert not breaker.is_open("b")

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


class TestProbeBudget:
    def test_unlimited_by_default(self):
        budget = ProbeBudget()
        budget.attempts = 10_000
        assert budget.allow()

    def test_hard_cap(self):
        budget = ProbeBudget(max_probes=2)
        assert budget.allow()
        budget.attempts = 2
        assert not budget.allow()

    def test_as_dict(self):
        budget = ProbeBudget(max_probes=5)
        budget.attempts = 3
        budget.retried = 1
        rendered = budget.as_dict()
        assert rendered["max_probes"] == 5
        assert rendered["attempts"] == 3
        assert rendered["retried"] == 1

    def test_check_raises_on_overrun(self):
        budget = ProbeBudget(max_probes=2)
        budget.attempts = 2
        budget.check()  # at the cap is legitimate
        budget.attempts = 3
        with pytest.raises(RuntimeError, match="overrun"):
            budget.check()

    def test_check_unlimited_never_raises(self):
        budget = ProbeBudget()
        budget.attempts = 10_000
        budget.check()


@pytest.fixture()
def outage_atlas(small_env):
    """The shared atlas platform with a 100% VP-outage injector, restored
    on exit so the session environment stays pristine."""
    platform = small_env.platforms.atlas
    platform.fault_injector = FaultInjector(FaultPlan(vp_outage=1.0), seed=0)
    try:
        yield platform
    finally:
        platform.fault_injector = None


class TestDriverResilience:
    def _driver(self, small_env, obs=None, resilience=None):
        config = small_env.config.campaign
        if resilience is not None:
            config = dataclasses.replace(config, resilience=resilience)
        return CampaignDriver(
            small_env.platforms,
            small_env.hitlist,
            config=config,
            seed=99,
            instrumentation=obs or Instrumentation(),
        )

    def test_retries_then_quarantines_failing_vp(self, small_env, outage_atlas):
        obs = Instrumentation()
        driver = self._driver(small_env, obs)
        vp = outage_atlas.vantage_points[0]
        dst = small_env.hitlist.all_targets()[0]
        for _ in range(3):
            assert driver._resilient_trace(outage_atlas, vp, dst) is None
        # Call 1 burns all 3 attempts (2 retries), call 2's first failure
        # trips the 4-failure breaker, call 3 is skipped outright.
        assert obs.counter("campaign.probe_faults") == 4
        assert obs.counter("campaign.retries") == 2
        assert obs.counter("campaign.vp_quarantined") == 1
        assert obs.counter("campaign.quarantined_skips") == 1
        assert driver.quarantined_vantage_points() == {vp.vp_id}
        assert driver.budget.retried == 2
        assert driver.budget.failed == 2
        assert driver.budget.skipped_quarantined == 1
        assert driver.simulated_backoff_s > 0.0

    def test_healthy_probe_resets_breaker(self, small_env):
        driver = self._driver(small_env)
        platform = small_env.platforms.atlas
        vp = platform.vantage_points[0]
        dst = small_env.hitlist.all_targets()[0]
        trace = driver._resilient_trace(platform, vp, dst)
        assert trace is not None
        assert driver.quarantined_vantage_points() == set()
        assert driver.budget.attempts == 1
        assert driver.simulated_backoff_s == 0.0

    def test_probe_budget_cap_enforced(self, small_env):
        obs = Instrumentation()
        driver = self._driver(
            small_env, obs, resilience=ResilienceConfig(max_probes=3)
        )
        platform = small_env.platforms.atlas
        dst = small_env.hitlist.all_targets()[0]
        issued = [
            driver._resilient_trace(platform, vp, dst)
            for vp in platform.vantage_points[:5]
        ]
        assert sum(trace is not None for trace in issued) == 3
        assert driver.budget.skipped_budget == 2
        assert obs.counter("campaign.budget_exhausted") == 2

    def test_budget_straddle_counts_failed_not_skipped(
        self, small_env, outage_atlas
    ):
        """Regression: a probe whose retries straddle the budget cap
        already burned attempts, so it lands in the ``failed`` bucket —
        it used to be miscounted as ``skipped_budget``, inflating the
        'never probed' story while hiding the abandoned probe."""
        obs = Instrumentation()
        driver = self._driver(
            small_env, obs, resilience=ResilienceConfig(max_probes=2)
        )
        dst = small_env.hitlist.all_targets()[0]
        # Probe 1 burns both budgeted attempts on outages, then hits
        # the cap mid-retry: failed, not skipped.
        vp = outage_atlas.vantage_points[0]
        assert driver._resilient_trace(outage_atlas, vp, dst) is None
        assert driver.budget.attempts == 2
        assert driver.budget.failed == 1
        assert driver.budget.skipped_budget == 0
        assert obs.counter("campaign.probe_gave_up") == 1
        assert obs.counter("campaign.budget_exhausted") == 1
        # Probe 2 never gets an attempt: skipped, not failed.
        vp2 = outage_atlas.vantage_points[1]
        assert driver._resilient_trace(outage_atlas, vp2, dst) is None
        assert driver.budget.failed == 1
        assert driver.budget.skipped_budget == 1
        assert obs.counter("campaign.budget_exhausted") == 2
        # Every probe sits in exactly one bucket and the cap held.
        assert driver.budget.failed + driver.budget.skipped_budget == 2
        driver.budget.check()

    def test_campaign_emits_final_budget(self, small_env):
        sink = MemorySink()
        obs = Instrumentation(sink)
        driver = self._driver(small_env, obs)
        driver.initial_campaign([999_999], include_archives=False)
        events = sink.by_name("campaign.budget")
        assert len(events) == 1
        assert events[0].payload == driver.budget.as_dict()


class TestLookingGlassResilience:
    @pytest.fixture()
    def fresh_lg(self, small_env) -> LookingGlassPlatform:
        """A private LG platform so rate-limit state never leaks into the
        session environment."""
        return LookingGlassPlatform.build(small_env.topology, small_env.engine)

    def test_rate_limit_spacing(self, small_env, fresh_lg):
        vp = fresh_lg.vantage_points[0]
        dst = small_env.hitlist.all_targets()[0]
        assert fresh_lg.simulated_wait_s == 0.0
        fresh_lg.trace(vp, dst)
        assert fresh_lg.simulated_wait_s == 0.0  # first query is free
        fresh_lg.trace(vp, dst)
        assert fresh_lg.simulated_wait_s == pytest.approx(LG_QUERY_INTERVAL_S)
        fresh_lg.trace(vp, dst)
        assert fresh_lg.simulated_wait_s == pytest.approx(
            2 * LG_QUERY_INTERVAL_S
        )

    def test_rate_limit_independent_per_lg(self, small_env, fresh_lg):
        by_asn = {}
        for vp in fresh_lg.vantage_points:
            by_asn.setdefault(vp.asn, vp)
            if len(by_asn) == 2:
                break
        first, second = by_asn.values()
        dst = small_env.hitlist.all_targets()[0]
        fresh_lg.trace(first, dst)
        fresh_lg.trace(second, dst)  # different LG: no pause yet
        assert fresh_lg.simulated_wait_s == 0.0

    def test_failed_query_still_pays_rate_limit(self, small_env, fresh_lg):
        from repro.faults import QueryTimeout

        fresh_lg.fault_injector = FaultInjector(
            FaultPlan(lg_timeout=1.0), seed=0
        )
        vp = fresh_lg.vantage_points[0]
        dst = small_env.hitlist.all_targets()[0]
        with pytest.raises(QueryTimeout):
            fresh_lg.trace(vp, dst)
        with pytest.raises(QueryTimeout):
            fresh_lg.trace(vp, dst)
        assert fresh_lg.simulated_wait_s == pytest.approx(LG_QUERY_INTERVAL_S)

    def test_breaker_opens_after_repeated_timeouts(self, small_env, fresh_lg):
        fresh_lg.fault_injector = FaultInjector(
            FaultPlan(lg_timeout=1.0), seed=0
        )
        obs = Instrumentation()
        driver = CampaignDriver(
            small_env.platforms,
            small_env.hitlist,
            config=small_env.config.campaign,
            seed=7,
            instrumentation=obs,
        )
        vp = fresh_lg.vantage_points[0]
        dst = small_env.hitlist.all_targets()[0]
        for _ in range(3):
            assert driver._resilient_trace(fresh_lg, vp, dst) is None
        assert obs.counter("campaign.fault.timeout") > 0
        assert obs.counter("campaign.vp_quarantined") == 1
        assert vp.vp_id in driver.quarantined_vantage_points()
        assert driver.budget.skipped_quarantined >= 1


class TestHitlistMiss:
    def test_unknown_asn_emits_miss(self, small_env):
        sink = MemorySink()
        obs = Instrumentation(sink)
        hitlist = Hitlist(small_env.topology, instrumentation=obs)
        assert hitlist.targets_for(999_999) == []
        assert obs.counter("hitlist.miss") == 1
        events = sink.by_name("hitlist.miss")
        assert len(events) == 1
        assert events[0].payload["asn"] == 999_999

    def test_known_asn_does_not_emit(self, small_env):
        obs = Instrumentation()
        hitlist = Hitlist(small_env.topology, instrumentation=obs)
        asn = next(iter(small_env.topology.ases))
        hitlist.targets_for(asn)
        assert obs.counter("hitlist.miss") == 0

    def test_campaign_survives_empty_hitlist(self, small_env):
        obs = Instrumentation()
        driver = CampaignDriver(
            small_env.platforms,
            small_env.hitlist,
            config=small_env.config.campaign,
            seed=11,
            instrumentation=obs,
        )
        corpus = driver.initial_campaign([999_999], include_archives=False)
        assert len(corpus) == 0
        assert obs.counter("campaign.empty_hitlist") == 1
        assert obs.counter("hitlist.miss") == 0  # driver's own hitlist is real

    def test_cfs_tolerates_empty_corpus(self, small_env):
        result = small_env.run_cfs(TraceCorpus())
        assert result.interfaces == {}
        assert result.links == []
        assert result.peering_interfaces_seen == 0
