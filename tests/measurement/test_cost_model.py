"""Campaign-flag and archive behaviour tests."""

from __future__ import annotations

import pytest

from repro.measurement import CampaignConfig, CampaignDriver, Hitlist, build_platforms
from repro.measurement.traceroute import TracerouteEngine


@pytest.fixture(scope="module")
def fresh_driver(small_topology):
    engine = TracerouteEngine(small_topology, seed=80)
    platforms = build_platforms(small_topology, engine, seed=81)
    return CampaignDriver(
        platforms,
        Hitlist(small_topology),
        CampaignConfig(
            atlas_sample_per_target=3,
            lg_sample_per_target=2,
            archive_targets_per_node=4,
            followup_traces=2,
        ),
        seed=82,
    )


class TestArchiveInclusion:
    def test_archives_included_by_default(self, fresh_driver, small_topology):
        target = next(iter(small_topology.ases))
        corpus = fresh_driver.initial_campaign([target])
        platforms = {trace.platform for trace in corpus.traces}
        assert "iplane" in platforms and "ark" in platforms

    def test_archives_excluded_on_request(self, fresh_driver, small_topology):
        target = next(iter(small_topology.ases))
        corpus = fresh_driver.initial_campaign([target], include_archives=False)
        platforms = {trace.platform for trace in corpus.traces}
        assert "iplane" not in platforms and "ark" not in platforms
        assert "ripe-atlas" in platforms

    def test_incremental_campaigns_smaller(self, fresh_driver, small_topology):
        target = next(iter(small_topology.ases))
        with_archives = fresh_driver.initial_campaign([target])
        without = fresh_driver.initial_campaign([target], include_archives=False)
        assert len(without) < len(with_archives)
