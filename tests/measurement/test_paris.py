"""Paris vs classic traceroute semantics over ECMP backbones."""

from __future__ import annotations

import random

import pytest

from repro.measurement.traceroute import TracerouteConfig, TracerouteEngine
from repro.topology import Forwarder


@pytest.fixture(scope="module")
def forwarder(small_topology):
    return Forwarder(small_topology)


def routers_with_ecmp(topology, forwarder, limit=400, seed=0):
    """(src, dst, flows...) triples whose intra-AS path is flow-sensitive."""
    rng = random.Random(seed)
    routers = sorted(topology.routers)
    addresses = sorted(topology.interfaces)
    found = []
    for _ in range(limit):
        src = rng.choice(routers)
        dst = rng.choice(addresses)
        path_a = forwarder.router_path(src, dst, flow_id=1)
        path_b = forwarder.router_path(src, dst, flow_id=2)
        if path_a is None or path_b is None:
            continue
        if [h.router_id for h in path_a] != [h.router_id for h in path_b]:
            found.append((src, dst))
    return found


class TestEcmpForwarding:
    def test_same_flow_same_path(self, small_topology, forwarder):
        rng = random.Random(1)
        routers = sorted(small_topology.routers)
        addresses = sorted(small_topology.interfaces)
        for _ in range(30):
            src = rng.choice(routers)
            dst = rng.choice(addresses)
            first = forwarder.router_path(src, dst, flow_id=7)
            second = forwarder.router_path(src, dst, flow_id=7)
            assert first == second

    def test_equal_cost_paths_have_equal_length(self, small_topology, forwarder):
        diverging = routers_with_ecmp(small_topology, forwarder)
        if not diverging:
            pytest.skip("no ECMP diversity in this seed")
        for src, dst in diverging[:10]:
            path_a = forwarder.router_path(src, dst, flow_id=1)
            path_b = forwarder.router_path(src, dst, flow_id=2)
            assert len(path_a) == len(path_b)
            assert path_a[-1].router_id == path_b[-1].router_id

    def test_flow_divergence_exists(self, small_topology, forwarder):
        """Backbone chords must create real ECMP diversity."""
        assert routers_with_ecmp(small_topology, forwarder)


class TestParisSemantics:
    def test_paris_trace_consistent_across_repeats(self, small_topology):
        engine = TracerouteEngine(
            small_topology,
            config=TracerouteConfig(hop_loss_prob=0.0, paris=True),
            seed=2,
        )
        forwarder = engine.forwarder
        diverging = routers_with_ecmp(small_topology, forwarder)
        if not diverging:
            pytest.skip("no ECMP diversity in this seed")
        src, dst = diverging[0]
        first = [h.router_id for h in engine.trace(src, dst).hops]
        second = [h.router_id for h in engine.trace(src, dst).hops]
        assert first == second

    def test_paris_hops_form_real_adjacencies(self, small_topology):
        engine = TracerouteEngine(
            small_topology,
            config=TracerouteConfig(hop_loss_prob=0.0, paris=True),
            seed=3,
        )
        rng = random.Random(3)
        for _ in range(20):
            src = rng.choice(sorted(small_topology.routers))
            dst = rng.choice(sorted(small_topology.interfaces))
            trace = engine.trace(src, dst)
            previous = src
            for hop in trace.hops:
                neighbors = {
                    adj.neighbor_router
                    for adj in small_topology.adjacencies(previous)
                }
                assert hop.router_id in neighbors or hop.router_id == previous
                previous = hop.router_id

    def test_classic_can_stitch_paths(self, small_topology):
        """Classic mode must exhibit the artifact Paris fixes: on some
        ECMP-diverse pair, consecutive reported hops are NOT adjacent
        routers (the probe hopped between parallel paths)."""
        engine = TracerouteEngine(
            small_topology,
            config=TracerouteConfig(hop_loss_prob=0.0, paris=False),
            seed=4,
        )
        forwarder = engine.forwarder
        diverging = routers_with_ecmp(small_topology, forwarder, limit=800)
        if not diverging:
            pytest.skip("no ECMP diversity in this seed")
        artifact_found = False
        for src, dst in diverging:
            trace = engine.trace(src, dst)
            previous = src
            for hop in trace.hops:
                neighbors = {
                    adj.neighbor_router
                    for adj in small_topology.adjacencies(previous)
                }
                if hop.router_id not in neighbors and hop.router_id != previous:
                    artifact_found = True
                previous = hop.router_id
            if artifact_found:
                break
        assert artifact_found

    def test_classic_still_reaches_destination(self, small_topology):
        engine = TracerouteEngine(
            small_topology,
            config=TracerouteConfig(hop_loss_prob=0.0, paris=False),
            seed=5,
        )
        rng = random.Random(5)
        reached = 0
        for _ in range(20):
            src = rng.choice(sorted(small_topology.routers))
            dst = rng.choice(sorted(small_topology.interfaces))
            if engine.trace(src, dst).reached:
                reached += 1
        assert reached >= 15
