"""IP-ID responder tests: counter behaviours per operator mode."""

from __future__ import annotations

import pytest

from repro.measurement.ipid import IPID_MODULUS, IpidResponder
from repro.topology import IPIDMode
from repro.topology.network import InterfaceKind


def routers_with_mode(topology, mode, min_interfaces=2):
    result = []
    for router in topology.routers.values():
        if topology.ases[router.asn].ipid_mode is not mode:
            continue
        usable = [
            a
            for a in router.interfaces
            if topology.interfaces[a].kind
            not in (InterfaceKind.LOOPBACK, InterfaceKind.HOST)
        ]
        if len(usable) >= min_interfaces:
            result.append((router, usable))
    return result


@pytest.fixture(scope="module")
def responder(small_topology):
    return IpidResponder(small_topology, seed=42)


class TestProbeBasics:
    def test_unknown_address(self, responder):
        assert responder.probe(1) is None

    def test_values_in_16bit_range(self, small_topology):
        responder = IpidResponder(small_topology, seed=1)
        for address in list(small_topology.interfaces)[:100]:
            sample = responder.probe(address)
            if sample is not None:
                assert 0 <= sample < IPID_MODULUS

    def test_probe_train_length(self, small_topology, responder):
        address = next(iter(small_topology.interfaces))
        assert len(responder.probe_train(address, 5)) == 5


class TestModes:
    def test_shared_counter_monotonic_across_interfaces(self, small_topology):
        responder = IpidResponder(small_topology, seed=2)
        pairs = routers_with_mode(small_topology, IPIDMode.SHARED_COUNTER)
        assert pairs
        router, interfaces = pairs[0]
        a, b = interfaces[0], interfaces[1]
        samples = [responder.probe(addr) for addr in (a, b, a, b, a, b)]
        assert all(s is not None for s in samples)
        advance = 0
        for prev, cur in zip(samples, samples[1:]):
            step = (cur - prev) % IPID_MODULUS
            assert step > 0
            advance += step
        assert advance < IPID_MODULUS

    def test_unresponsive_mode(self, small_topology):
        responder = IpidResponder(small_topology, seed=3)
        pairs = routers_with_mode(small_topology, IPIDMode.UNRESPONSIVE, 1)
        if not pairs:
            pytest.skip("no unresponsive routers in this seed")
        _, interfaces = pairs[0]
        assert responder.probe(interfaces[0]) is None

    def test_constant_mode(self, small_topology):
        responder = IpidResponder(small_topology, seed=4)
        pairs = routers_with_mode(small_topology, IPIDMode.CONSTANT, 1)
        if not pairs:
            pytest.skip("no constant-IPID routers in this seed")
        _, interfaces = pairs[0]
        assert responder.probe_train(interfaces[0], 4) == [0, 0, 0, 0]

    def test_random_mode_not_monotonic(self, small_topology):
        responder = IpidResponder(small_topology, seed=5)
        pairs = routers_with_mode(small_topology, IPIDMode.RANDOM, 1)
        if not pairs:
            pytest.skip("no random-IPID routers in this seed")
        _, interfaces = pairs[0]
        samples = responder.probe_train(interfaces[0], 12)
        advance = sum(
            (cur - prev) % IPID_MODULUS for prev, cur in zip(samples, samples[1:])
        )
        assert advance >= IPID_MODULUS  # wraps: not one slow counter

    def test_per_interface_counters_independent(self, small_topology):
        responder = IpidResponder(small_topology, seed=6)
        pairs = routers_with_mode(small_topology, IPIDMode.PER_INTERFACE)
        if not pairs:
            pytest.skip("no per-interface routers in this seed")
        _, interfaces = pairs[0]
        a, b = interfaces[0], interfaces[1]
        # Each interface's own train is monotonic...
        train_a = [responder.probe(a) for _ in range(4)]
        advance_a = sum(
            (cur - prev) % IPID_MODULUS for prev, cur in zip(train_a, train_a[1:])
        )
        assert advance_a < IPID_MODULUS
        # ...but the two counters start at unrelated offsets.
        sample_b = responder.probe(b)
        assert sample_b is not None

    def test_velocity_stable_per_router(self, small_topology):
        responder = IpidResponder(small_topology, seed=7)
        pairs = routers_with_mode(small_topology, IPIDMode.SHARED_COUNTER)
        router, interfaces = pairs[0]
        train = [responder.probe(interfaces[0]) for _ in range(6)]
        steps = [
            (cur - prev) % IPID_MODULUS for prev, cur in zip(train, train[1:])
        ]
        assert max(steps) - min(steps) <= 1  # float accumulation quantised
