"""Campaign driver tests: hitlists, corpora, follow-up probing."""

from __future__ import annotations

import pytest

from repro.measurement import (
    CampaignConfig,
    CampaignDriver,
    Hitlist,
    TraceCorpus,
    TracerouteEngine,
    build_platforms,
)
from repro.topology import InterfaceKind


@pytest.fixture(scope="module")
def driver(small_topology):
    engine = TracerouteEngine(small_topology, seed=40)
    platforms = build_platforms(small_topology, engine, seed=41)
    hitlist = Hitlist(small_topology)
    config = CampaignConfig(
        atlas_sample_per_target=4,
        lg_sample_per_target=2,
        archive_targets_per_node=3,
        followup_traces=2,
    )
    return CampaignDriver(platforms, hitlist, config, seed=42)


class TestHitlist:
    def test_targets_are_hosts_in_as_space(self, small_topology):
        hitlist = Hitlist(small_topology)
        for asn in list(small_topology.ases)[:20]:
            for address in hitlist.targets_for(asn):
                iface = small_topology.interfaces[address]
                assert iface.kind is InterfaceKind.HOST
                assert small_topology.true_asn_of_address(address) == asn

    def test_unknown_asn_empty(self, small_topology):
        assert Hitlist(small_topology).targets_for(42) == []

    def test_all_targets_cover_all_ases(self, small_topology):
        hitlist = Hitlist(small_topology)
        owners = {
            small_topology.true_asn_of_address(a) for a in hitlist.all_targets()
        }
        assert owners == set(small_topology.ases)


class TestTraceCorpus:
    def test_accumulation_and_iteration(self):
        corpus = TraceCorpus()
        assert len(corpus) == 0
        assert list(corpus) == []

    def test_by_platform_and_addresses(self, driver, small_topology):
        target_asn = next(iter(small_topology.ases))
        corpus = driver.initial_campaign([target_asn])
        atlas = corpus.by_platform("ripe-atlas")
        assert atlas
        assert all(t.platform == "ripe-atlas" for t in atlas)
        addresses = corpus.observed_addresses()
        assert addresses
        for trace in corpus.traces[:10]:
            for address in trace.responsive_addresses():
                assert address in addresses


class TestInitialCampaign:
    def test_uses_all_platforms(self, driver, small_topology):
        target_asn = next(iter(small_topology.ases))
        corpus = driver.initial_campaign([target_asn])
        platforms_seen = {trace.platform for trace in corpus.traces}
        assert {"ripe-atlas", "looking-glass", "iplane", "ark"} <= platforms_seen

    def test_targets_probed(self, driver, small_topology):
        target_asn = next(iter(small_topology.ases))
        corpus = driver.initial_campaign([target_asn])
        hitlist = Hitlist(small_topology)
        probed = {
            trace.dst_address
            for trace in corpus.by_platform("ripe-atlas")
        }
        assert set(hitlist.targets_for(target_asn)) <= probed


class TestFollowupProbing:
    def test_probe_peering_appends_traces(self, driver, small_topology):
        asns = sorted(small_topology.ases)
        corpus = TraceCorpus()
        issued = driver.probe_peering(asns[0], asns[1], corpus)
        assert issued == len(corpus)
        assert issued > 0

    def test_probe_peering_targets_both_directions(self, driver, small_topology):
        # Pick two ASes that both host vantage points.
        platforms = driver.platforms
        hosted = {
            vp.asn
            for platform in (platforms.atlas, platforms.looking_glasses)
            for vp in platform.vantage_points
        }
        pair = sorted(hosted)[:2]
        if len(pair) < 2:
            pytest.skip("not enough VP-hosting ASes")
        corpus = TraceCorpus()
        driver.probe_peering(pair[0], pair[1], corpus)
        sources = {trace.src_asn for trace in corpus.traces}
        assert pair[0] in sources and pair[1] in sources
