"""RTT model tests: propagation, jitter, the metro-local bound."""

from __future__ import annotations

import pytest

from repro.measurement.rtt import RttConfig, RttModel
from repro.topology.geo import GeoLocation

LONDON = GeoLocation(51.5074, -0.1278)
FRANKFURT = GeoLocation(50.1109, 8.6821)
TOKYO = GeoLocation(35.6762, 139.6503)


class TestPathRtt:
    def test_monotone_with_path_extension(self):
        model = RttModel(seed=1)
        short = model.path_rtt_ms([LONDON, FRANKFURT])
        longer = model.path_rtt_ms([LONDON, FRANKFURT, TOKYO])
        assert longer > short

    def test_zero_hop_path(self):
        model = RttModel(seed=1)
        assert model.path_rtt_ms([LONDON]) == pytest.approx(
            model.config.access_ms
        )

    def test_incremental_matches_batch(self):
        model = RttModel(seed=1)
        locations = [LONDON, FRANKFURT, TOKYO]
        one_way = model.config.access_ms / 2.0
        for here, there in zip(locations, locations[1:]):
            one_way += model.step_one_way_ms(here, there)
        assert 2.0 * one_way == pytest.approx(model.path_rtt_ms(locations))

    def test_transcontinental_magnitude(self):
        model = RttModel(seed=1)
        rtt = model.path_rtt_ms([LONDON, TOKYO])
        assert 80 < rtt < 250  # ~9,500 km of inflated fiber, both ways


class TestSampling:
    def test_sample_at_least_base(self):
        model = RttModel(seed=2)
        base = model.path_rtt_ms([LONDON, FRANKFURT])
        for _ in range(50):
            assert model.sample_rtt_ms([LONDON, FRANKFURT]) >= base

    def test_min_of_samples_approaches_base(self):
        config = RttConfig(congestion_prob=0.5)
        model = RttModel(config, seed=3)
        base = model.path_rtt_ms([LONDON, FRANKFURT])
        best = min(model.sample_rtt_ms([LONDON, FRANKFURT]) for _ in range(100))
        assert best <= base + config.jitter_ms

    def test_congestion_spikes_occur(self):
        config = RttConfig(congestion_prob=1.0, congestion_ms=100.0, jitter_ms=0.0)
        model = RttModel(config, seed=4)
        base = model.path_rtt_ms([LONDON, FRANKFURT])
        samples = [model.sample_rtt_ms([LONDON, FRANKFURT]) for _ in range(20)]
        assert max(samples) > base + 1.0


class TestMetroLocalBound:
    def test_bound_separates_local_from_remote(self):
        model = RttModel(seed=5)
        bound = model.metro_local_bound_ms()
        # Same metro (a few km): far below the bound.
        nearby = GeoLocation(51.52, -0.10)
        local_step = 2 * model.step_one_way_ms(LONDON, nearby)
        assert local_step < bound
        # Frankfurt is not in the London metro: far above the bound.
        remote_step = 2 * model.step_one_way_ms(LONDON, FRANKFURT)
        assert remote_step > bound
