"""Platform tests: populations, rate limits, BGP queries, Table 1."""

from __future__ import annotations

import random

import pytest

from repro.measurement import (
    Hitlist,
    LookingGlassPlatform,
    TracerouteEngine,
    build_platforms,
)
from repro.measurement.platforms import LG_QUERY_INTERVAL_S
from repro.topology import ASRole


@pytest.fixture(scope="module")
def platforms(small_topology):
    engine = TracerouteEngine(small_topology, seed=20)
    return build_platforms(small_topology, engine, seed=21)


class TestPopulations:
    def test_atlas_hosts_edge_networks(self, platforms, small_topology):
        for vp in platforms.atlas.vantage_points:
            role = small_topology.ases[vp.asn].role
            assert role in (ASRole.ACCESS, ASRole.STUB, ASRole.TRANSIT)

    def test_atlas_europe_skew(self, platforms):
        regions = [vp.region for vp in platforms.atlas.vantage_points]
        europe = sum(1 for region in regions if region == "Europe")
        assert europe > len(regions) * 0.35

    def test_lg_vps_cover_all_routers_of_lg_ases(self, platforms, small_topology):
        by_asn: dict[int, set[int]] = {}
        for vp in platforms.looking_glasses.vantage_points:
            by_asn.setdefault(vp.asn, set()).add(vp.router_id)
        for asn, router_ids in by_asn.items():
            assert small_topology.ases[asn].runs_looking_glass
            assert router_ids == set(small_topology.routers_of(asn))

    def test_vantage_points_in(self, platforms):
        vp = platforms.atlas.vantage_points[0]
        assert vp in platforms.atlas.vantage_points_in(vp.asn)
        assert platforms.atlas.vantage_points_in(999999) == []

    def test_archive_sizes(self, platforms):
        assert 1 <= len(platforms.iplane.vantage_points) <= 30
        assert 1 <= len(platforms.ark.vantage_points) <= 30


class TestTable1:
    def test_rows_present(self, platforms):
        rows = {stats.platform for stats in platforms.table1()}
        assert rows == {
            "ripe-atlas",
            "looking-glass",
            "iplane",
            "ark",
            "total-unique",
        }

    def test_paper_ordering(self, platforms):
        stats = {s.platform: s for s in platforms.table1()}
        assert (
            stats["ripe-atlas"].vantage_points
            > stats["looking-glass"].vantage_points
            > stats["iplane"].vantage_points
        )
        assert stats["ripe-atlas"].asns > stats["looking-glass"].asns

    def test_total_unique_consistency(self, platforms):
        stats = {s.platform: s for s in platforms.table1()}
        total = stats["total-unique"]
        per_platform = [
            stats[name]
            for name in ("ripe-atlas", "looking-glass", "iplane", "ark")
        ]
        assert total.vantage_points == sum(s.vantage_points for s in per_platform)
        assert total.asns <= sum(s.asns for s in per_platform)
        assert total.asns >= max(s.asns for s in per_platform)


class TestTracing:
    def test_trace_tags_platform_and_source(self, platforms, small_topology):
        hitlist = Hitlist(small_topology)
        target = hitlist.all_targets()[0]
        vp = platforms.atlas.vantage_points[0]
        trace = platforms.atlas.trace(vp, target)
        assert trace.platform == "ripe-atlas"
        assert trace.source_id == vp.vp_id
        assert trace.src_asn == vp.asn

    def test_trace_from_sample_size(self, platforms, small_topology):
        hitlist = Hitlist(small_topology)
        target = hitlist.all_targets()[0]
        traces = platforms.atlas.trace_from_sample(target, 5, random.Random(1))
        assert len(traces) == 5

    def test_lg_rate_limit_accounting(self, small_topology):
        engine = TracerouteEngine(small_topology, seed=30)
        lgs = LookingGlassPlatform.build(small_topology, engine, seed=31)
        hitlist = Hitlist(small_topology)
        target = hitlist.all_targets()[0]
        vp = lgs.vantage_points[0]
        lgs.trace(vp, target)
        assert lgs.simulated_wait_s == 0.0
        lgs.trace(vp, target)
        assert lgs.simulated_wait_s == LG_QUERY_INTERVAL_S


class TestBgpQueries:
    def test_non_bgp_lg_returns_none(self, platforms, small_topology):
        lgs = platforms.looking_glasses
        non_bgp = [
            vp for vp in lgs.vantage_points if vp.asn not in lgs.bgp_capable_asns
        ]
        if not non_bgp:
            pytest.skip("all LGs are BGP capable in this seed")
        hitlist = Hitlist(small_topology)
        assert lgs.bgp_route(non_bgp[0], hitlist.all_targets()[0]) is None

    def test_bgp_route_communities_point_at_true_egress(
        self, platforms, small_topology
    ):
        lgs = platforms.looking_glasses
        capable = [
            vp for vp in lgs.vantage_points if vp.asn in lgs.bgp_capable_asns
        ]
        if not capable:
            pytest.skip("no BGP-capable LGs in this seed")
        hitlist = Hitlist(small_topology)
        vp = capable[0]
        checked = 0
        for target in hitlist.all_targets()[:40]:
            answer = lgs.bgp_route(vp, target)
            if answer is None:
                continue
            as_path, communities = answer
            assert as_path[0] == vp.asn
            for asn, value in communities:
                assert asn == vp.asn
                assert value.startswith("ingress-fac:")
                facility = int(value.split(":")[1])
                assert facility in small_topology.facilities
            checked += 1
        assert checked > 0


class TestArchiveSweeps:
    def test_collect_sweep_counts(self, platforms, small_topology):
        hitlist = Hitlist(small_topology)
        targets = hitlist.all_targets()[:30]
        traces = platforms.iplane.collect_sweep(targets, per_node=4, seed=7)
        assert len(traces) == 4 * len(platforms.iplane.vantage_points)
        assert all(trace.platform == "iplane" for trace in traces)
