"""Traceroute engine tests: hop semantics, loss, RTTs, helpers."""

from __future__ import annotations

import random

import pytest

from repro.measurement.traceroute import (
    TraceHop,
    Traceroute,
    TracerouteConfig,
    TracerouteEngine,
)
from repro.topology import InterfaceKind


@pytest.fixture(scope="module")
def lossless_engine(small_topology):
    return TracerouteEngine(
        small_topology,
        config=TracerouteConfig(hop_loss_prob=0.0),
        seed=1,
    )


def sample_targets(topology, n, seed=0):
    rng = random.Random(seed)
    routers = sorted(topology.routers)
    addresses = sorted(topology.interfaces)
    return [(rng.choice(routers), rng.choice(addresses)) for _ in range(n)]


class TestTraceSemantics:
    def test_reaches_destination(self, lossless_engine, small_topology):
        for src, dst in sample_targets(small_topology, 20, seed=1):
            trace = lossless_engine.trace(src, dst)
            assert trace.reached
            assert trace.hops[-1].address == dst

    def test_no_stars_when_lossless(self, lossless_engine, small_topology):
        for src, dst in sample_targets(small_topology, 10, seed=2):
            trace = lossless_engine.trace(src, dst)
            assert all(hop.address is not None for hop in trace.hops)

    def test_ttls_sequential(self, lossless_engine, small_topology):
        src, dst = sample_targets(small_topology, 1, seed=3)[0]
        trace = lossless_engine.trace(src, dst)
        assert [hop.ttl for hop in trace.hops] == list(
            range(1, len(trace.hops) + 1)
        )

    def test_hops_reply_from_ingress(self, lossless_engine, small_topology):
        """Every non-final hop address is an interface of the router that
        answered — the ingress-reply convention of Section 4.3."""
        for src, dst in sample_targets(small_topology, 15, seed=4):
            trace = lossless_engine.trace(src, dst)
            for hop in trace.hops[:-1]:
                iface = small_topology.interfaces[hop.address]
                assert iface.router_id == hop.router_id

    def test_ixp_crossing_shows_lan_address(self, lossless_engine, small_topology):
        """Paths crossing a public peering must show a peering-LAN hop."""
        found = False
        for src, dst in sample_targets(small_topology, 200, seed=5):
            trace = lossless_engine.trace(src, dst)
            for hop in trace.hops:
                if hop.address is None:
                    continue
                iface = small_topology.interfaces.get(hop.address)
                if iface is not None and iface.kind is InterfaceKind.IXP_LAN:
                    found = True
                    assert small_topology.ixp_of_address(hop.address) is not None
        assert found

    def test_rtts_present_and_positive(self, lossless_engine, small_topology):
        src, dst = sample_targets(small_topology, 1, seed=6)[0]
        trace = lossless_engine.trace(src, dst)
        for hop in trace.hops:
            assert hop.rtt_ms is not None and hop.rtt_ms > 0

    def test_rtt_roughly_accumulates(self, lossless_engine, small_topology):
        """Later hops should not show wildly smaller RTTs than the total
        path base (jitter aside, propagation accumulates)."""
        src, dst = sample_targets(small_topology, 1, seed=7)[0]
        trace = lossless_engine.trace(src, dst)
        if len(trace.hops) >= 3:
            assert trace.hops[-1].rtt_ms >= trace.hops[0].rtt_ms - 1.0

    def test_unroutable_destination(self, small_topology):
        engine = TracerouteEngine(small_topology, seed=8)
        trace = engine.trace(next(iter(small_topology.routers)), 1)
        assert not trace.reached
        assert trace.hops == ()

    def test_destination_on_source_router(self, lossless_engine, small_topology):
        router = next(iter(small_topology.routers.values()))
        trace = lossless_engine.trace(router.router_id, router.interfaces[0])
        assert trace.reached
        assert len(trace.hops) == 1

    def test_loss_produces_stars(self, small_topology):
        engine = TracerouteEngine(
            small_topology,
            config=TracerouteConfig(hop_loss_prob=0.5),
            seed=9,
        )
        stars = 0
        for src, dst in sample_targets(small_topology, 30, seed=10):
            trace = engine.trace(src, dst)
            stars += sum(1 for hop in trace.hops if hop.address is None)
        assert stars > 0

    def test_max_ttl_truncates(self, small_topology):
        engine = TracerouteEngine(
            small_topology,
            config=TracerouteConfig(hop_loss_prob=0.0, max_ttl=2),
            seed=11,
        )
        for src, dst in sample_targets(small_topology, 20, seed=12):
            trace = engine.trace(src, dst)
            assert len(trace.hops) <= 2

    def test_counts_traces(self, small_topology):
        engine = TracerouteEngine(small_topology, seed=13)
        src, dst = sample_targets(small_topology, 1, seed=13)[0]
        engine.trace(src, dst)
        engine.trace(src, dst)
        assert engine.traces_issued == 2


class TestTracerouteHelpers:
    def _trace(self, hops):
        return Traceroute(
            source_id="t",
            platform="test",
            src_asn=1,
            dst_address=99,
            hops=tuple(hops),
            reached=True,
        )

    def test_responsive_addresses(self):
        trace = self._trace(
            [
                TraceHop(1, 10, 1.0),
                TraceHop(2, None, None),
                TraceHop(3, 30, 3.0),
            ]
        )
        assert trace.responsive_addresses() == [10, 30]

    def test_hop_triples_skip_stars(self):
        trace = self._trace(
            [
                TraceHop(1, 10, 1.0),
                TraceHop(2, 20, 2.0),
                TraceHop(3, 30, 3.0),
                TraceHop(4, None, None),
                TraceHop(5, 50, 5.0),
            ]
        )
        triples = trace.hop_triples()
        assert [(a.address, b.address, c.address) for a, b, c in triples] == [
            (10, 20, 30),
        ]
