"""Entity-layer tests: ASes, facilities, routers, interconnection types."""

from __future__ import annotations

import pytest

from repro.topology.addressing import Prefix
from repro.topology.asn import ASRole, AutonomousSystem, IPIDMode, PeeringPolicy
from repro.topology.facility import Facility, FacilityOperator
from repro.topology.geo import GeoLocation
from repro.topology.links import (
    BackboneLink,
    Interconnection,
    InterconnectionType,
    Relationship,
)
from repro.topology.network import Interface, InterfaceKind, Router


def _make_as(asn=64512, role=ASRole.TRANSIT):
    return AutonomousSystem(
        asn=asn,
        name=f"as-{asn}",
        role=role,
        policy=PeeringPolicy.OPEN,
        home_metro="London",
    )


class TestAutonomousSystem:
    def test_invalid_asn(self):
        with pytest.raises(ValueError):
            _make_as(asn=0)
        with pytest.raises(ValueError):
            _make_as(asn=2**32)

    def test_membership_helpers(self):
        record = _make_as()
        record.ixp_ids.add(1)
        record.remote_ixp_ids.add(2)
        assert record.is_member_of(1)
        assert record.is_member_of(2)
        assert not record.is_member_of(3)
        assert record.all_ixp_ids == {1, 2}

    def test_presence_helper(self):
        record = _make_as()
        record.facility_ids.add(9)
        assert record.is_present_at(9)
        assert not record.is_present_at(10)

    def test_default_ipid_mode(self):
        assert _make_as().ipid_mode is IPIDMode.SHARED_COUNTER


class TestFacility:
    def _facility(self, facility_id=5, name="Equinor DC London 1"):
        return Facility(
            facility_id=facility_id,
            name=name,
            operator_id=1,
            metro="London",
            country="GB",
            region="Europe",
            location=GeoLocation(51.5, -0.1),
        )

    def test_dns_code_derived_and_unique_per_building(self):
        a = self._facility(facility_id=5)
        b = self._facility(facility_id=6)
        assert a.dns_code != b.dns_code
        assert str(5) in a.dns_code

    def test_explicit_dns_code_kept(self):
        facility = Facility(
            facility_id=1,
            name="Telehouse North",
            operator_id=1,
            metro="London",
            country="GB",
            region="Europe",
            location=GeoLocation(51.5, -0.1),
            dns_code="thn",
        )
        assert facility.dns_code == "thn"

    def test_hosts_ixp(self):
        facility = self._facility()
        facility.ixp_ids.add(3)
        assert facility.hosts_ixp(3)
        assert not facility.hosts_ixp(4)


class TestFacilityOperator:
    def test_campus_flag(self):
        operator = FacilityOperator(operator_id=1, name="Equinor")
        assert not operator.connects_campus_in("London")
        operator.connected_metros.add("London")
        assert operator.connects_campus_in("London")


class TestRouterAndInterface:
    def test_add_interface_idempotent(self):
        router = Router(router_id=1, asn=64512, facility_id=2)
        router.add_interface(100)
        router.add_interface(100)
        assert router.interfaces == [100]

    def test_interface_ip_rendering(self):
        iface = Interface(
            address=(10 << 24) + 1,
            router_id=1,
            kind=InterfaceKind.BACKBONE,
            space_owner_asn=64512,
        )
        assert iface.ip == "10.0.0.1"


class TestInterconnection:
    def _link(self, kind=InterconnectionType.PRIVATE_CROSS_CONNECT, **overrides):
        fields = dict(
            link_id=1,
            kind=kind,
            relationship=Relationship.PEER_PEER,
            asn_a=1,
            asn_b=2,
            router_a=10,
            router_b=20,
            facility_a=5,
            facility_b=5,
            p2p_prefix=Prefix.parse("10.0.0.0/31"),
            p2p_owner_asn=1,
        )
        fields.update(overrides)
        return Interconnection(**fields)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            self._link(asn_b=1)

    def test_public_requires_ixp(self):
        with pytest.raises(ValueError):
            self._link(
                kind=InterconnectionType.PUBLIC_PEERING,
                ixp_id=None,
                p2p_prefix=None,
                p2p_owner_asn=None,
            )

    def test_cross_connect_rejects_ixp(self):
        with pytest.raises(ValueError):
            self._link(ixp_id=7)

    def test_private_requires_p2p_prefix(self):
        with pytest.raises(ValueError):
            self._link(p2p_prefix=None)

    def test_tethering_is_private_but_uses_fabric(self):
        tether = self._link(kind=InterconnectionType.TETHERING, ixp_id=3)
        assert tether.kind.is_private
        assert tether.kind.uses_ixp_fabric

    def test_public_is_not_private(self):
        public = self._link(
            kind=InterconnectionType.PUBLIC_PEERING,
            ixp_id=3,
            p2p_prefix=None,
            p2p_owner_asn=None,
        )
        assert not public.kind.is_private
        assert public.kind.uses_ixp_fabric

    def test_involves_and_peer_of(self):
        link = self._link()
        assert link.involves(1) and link.involves(2)
        assert not link.involves(3)
        assert link.peer_of(1) == 2
        assert link.peer_of(2) == 1
        with pytest.raises(ValueError):
            link.peer_of(3)

    def test_side_of(self):
        link = self._link(facility_a=5, facility_b=6)
        assert link.side_of(1) == (10, 5)
        assert link.side_of(2) == (20, 6)
        with pytest.raises(ValueError):
            link.side_of(3)


class TestBackboneLink:
    def test_other_end(self):
        link = BackboneLink(
            link_id=1,
            asn=64512,
            router_a=1,
            router_b=2,
            prefix=Prefix.parse("10.0.0.0/31"),
        )
        assert link.other_end(1) == 2
        assert link.other_end(2) == 1
        with pytest.raises(ValueError):
            link.other_end(3)
