"""Churn-plan tests: determinism, purity, censoring, database lag."""

from __future__ import annotations

import pytest

from repro.measurement.traceroute import TraceHop, Traceroute
from repro.topology.churn import (
    AS_ENTER,
    AS_LEAVE,
    FACILITY_POWER_LOSS,
    LINK_FLAP,
    ChurnConfig,
    ChurnEvent,
    ChurnPlan,
    apply_events,
    censor_trace,
    lagged_membership,
    plan_churn,
)

EPOCHS = 10


@pytest.fixture(scope="module")
def moderate_plan(small_topology):
    return plan_churn(small_topology, EPOCHS, ChurnConfig.moderate(), seed=7)


def _trace(hops, reached=True):
    return Traceroute(
        source_id="vp-0",
        platform="synthetic",
        src_asn=1,
        dst_address=99,
        hops=tuple(
            TraceHop(ttl=i + 1, address=100 + r, rtt_ms=1.0, router_id=r)
            for i, r in enumerate(hops)
        ),
        reached=reached,
    )


class TestPlanChurn:
    def test_deterministic(self, small_topology, moderate_plan):
        again = plan_churn(
            small_topology, EPOCHS, ChurnConfig.moderate(), seed=7
        )
        assert again == moderate_plan

    def test_seed_sensitivity(self, small_topology, moderate_plan):
        other = plan_churn(
            small_topology, EPOCHS, ChurnConfig.moderate(), seed=8
        )
        assert other.events != moderate_plan.events

    def test_zero_config_is_quiet(self, small_topology):
        plan = plan_churn(small_topology, EPOCHS, ChurnConfig.zero(), seed=7)
        assert plan.events == ()
        assert plan.is_quiet
        assert all(plan.view(epoch).is_quiet for epoch in range(EPOCHS))

    def test_no_events_during_warmup(self, moderate_plan):
        warmup = moderate_plan.config.warmup_epochs
        assert all(event.epoch >= warmup for event in moderate_plan.events)

    def test_power_losses_complete_within_horizon(self, moderate_plan):
        duration = moderate_plan.config.outage_duration
        for event in moderate_plan.power_loss_events():
            assert event.epoch + duration <= EPOCHS

    def test_outage_targets_large_facilities(
        self, small_topology, moderate_plan
    ):
        counts: dict[int, int] = {}
        for link in small_topology.interconnections.values():
            for facility in (link.facility_a, link.facility_b):
                if facility is not None:
                    counts[facility] = counts.get(facility, 0) + 1
        floor = moderate_plan.config.min_facility_links
        for event in moderate_plan.power_loss_events():
            assert counts[event.facility_id] >= floor

    def test_view_range_validated(self, moderate_plan):
        with pytest.raises(ValueError):
            moderate_plan.view(EPOCHS)
        with pytest.raises(ValueError):
            moderate_plan.view(-1)

    def test_scaled_zero_is_quiet(self):
        assert ChurnConfig.moderate().scaled(0.0).is_zero

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            ChurnConfig(link_flap_rate=1.5)
        with pytest.raises(ValueError):
            ChurnEvent(kind="meteor-strike", epoch=0, duration=1)


class TestApplyEvents:
    def test_pure_no_topology_mutation(self, small_topology):
        before = len(small_topology.routers)
        plan_churn(small_topology, EPOCHS, ChurnConfig.moderate(), seed=7)
        assert len(small_topology.routers) == before

    def test_power_loss_darkens_facility_routers(self, small_topology):
        plan = plan_churn(
            small_topology, EPOCHS, ChurnConfig.moderate(), seed=7
        )
        losses = plan.power_loss_events()
        if not losses:
            pytest.skip("seed drew no power loss")
        event = losses[0]
        routers = {
            router.router_id
            for router in small_topology.routers.values()
            if router.facility_id == event.facility_id
        }
        during = plan.view(event.epoch)
        assert routers <= during.dark_routers
        if event.epoch > 0:
            before = plan.view(event.epoch - 1)
            overlap = routers & before.dark_routers
            # The epoch before onset, the facility's routers are only
            # dark if some other event (an AS departure) darkened them.
            assert overlap < routers or not overlap

    def test_as_enter_perturbs_db_only(self, small_topology):
        events = (
            ChurnEvent(
                kind=AS_ENTER,
                epoch=2,
                duration=4,
                facility_id=3,
                asn=42,
                db_epoch=4,
            ),
        )
        early = apply_events(small_topology, events, 2)
        late = apply_events(small_topology, events, 4)
        assert early.dark_routers == frozenset()
        assert (42, 3) not in early.db_added
        assert (42, 3) in late.db_added
        assert late.dark_routers == frozenset()

    def test_lagged_membership(self, small_topology):
        events = (
            ChurnEvent(
                kind=AS_LEAVE,
                epoch=1,
                duration=5,
                facility_id=9,
                asn=7,
                db_epoch=3,
            ),
        )
        membership = {7: frozenset({9, 11})}
        fresh = lagged_membership(
            membership, apply_events(small_topology, events, 1)
        )
        stale = lagged_membership(
            membership, apply_events(small_topology, events, 3)
        )
        # Reality changed at epoch 1, the database learns at epoch 3.
        assert fresh[7] == frozenset({9, 11})
        assert stale[7] == frozenset({11})


class TestCensorTrace:
    def test_quiet_view_returns_trace_unchanged(self, small_topology):
        view = apply_events(small_topology, (), 0)
        trace = _trace([1, 2, 3])
        assert censor_trace(trace, view) is trace

    def test_dark_router_truncates(self, small_topology):
        events = (
            ChurnEvent(
                kind=FACILITY_POWER_LOSS, epoch=0, duration=1, facility_id=0
            ),
        )
        view = apply_events(small_topology, events, 0)
        dark = next(iter(view.dark_routers))
        bright = max(small_topology.routers) + 1
        censored = censor_trace(_trace([bright, dark, bright + 1]), view)
        assert len(censored.hops) == 1
        assert censored.reached is False

    def test_down_pair_truncates_at_crossing(self, small_topology):
        link = next(iter(small_topology.interconnections.values()))
        events = (
            ChurnEvent(
                kind=LINK_FLAP, epoch=0, duration=1, link_id=link.link_id
            ),
        )
        view = apply_events(small_topology, events, 0)
        a, b = link.router_a, link.router_b
        censored = censor_trace(_trace([a, b]), view)
        assert len(censored.hops) == 1
        assert censored.reached is False
        # The pair is undirected: the reverse crossing censors too.
        reverse = censor_trace(_trace([b, a]), view)
        assert len(reverse.hops) == 1
