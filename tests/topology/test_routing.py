"""Routing tests: valley-free policy, path expansion, hot potato."""

from __future__ import annotations

import random

import pytest

from repro.topology import Forwarder, InterfaceKind, RouteComputer
from repro.topology.routing import CUSTOMER_ROUTE, PEER_ROUTE, PROVIDER_ROUTE


@pytest.fixture(scope="module")
def routes(small_topology):
    return RouteComputer(small_topology)


@pytest.fixture(scope="module")
def forwarder(small_topology, routes):
    return Forwarder(small_topology, routes)


def classify_edge(topology, a, b):
    """Edge class from a's perspective: 'up' (to provider), 'down', 'peer'."""
    if b in topology.providers_of(a):
        return "up"
    if a in topology.providers_of(b):
        return "down"
    return "peer"


def is_valley_free(topology, path):
    """Gao-Rexford pattern: up* (peer)? down*."""
    phases = [classify_edge(topology, a, b) for a, b in zip(path, path[1:])]
    state = "up"
    peers_seen = 0
    for phase in phases:
        if phase == "up":
            if state != "up":
                return False
        elif phase == "peer":
            peers_seen += 1
            if peers_seen > 1 or state == "down":
                return False
            state = "peer"
        else:
            state = "down"
    return True


class TestAsRouting:
    def test_origin_route(self, routes, small_topology):
        asn = next(iter(small_topology.ases))
        table = routes.routes_to(asn)
        assert table[asn].as_path_length == 0
        assert table[asn].next_hop is None

    def test_unknown_destination(self, routes):
        with pytest.raises(KeyError):
            routes.routes_to(999999999)

    def test_full_reachability(self, routes, small_topology):
        """Every AS reaches every destination (Tier-1 clique + transit)."""
        asns = sorted(small_topology.ases)
        rng = random.Random(5)
        for dest in rng.sample(asns, 12):
            table = routes.routes_to(dest)
            assert set(table) == set(asns)

    def test_paths_are_valley_free(self, routes, small_topology):
        asns = sorted(small_topology.ases)
        rng = random.Random(7)
        for _ in range(200):
            src, dest = rng.sample(asns, 2)
            path = routes.as_path(src, dest)
            assert path is not None
            assert path[0] == src and path[-1] == dest
            assert len(set(path)) == len(path), "loop in AS path"
            assert is_valley_free(small_topology, path), path

    def test_path_uses_existing_links(self, routes, small_topology):
        asns = sorted(small_topology.ases)
        rng = random.Random(11)
        for _ in range(50):
            src, dest = rng.sample(asns, 2)
            path = routes.as_path(src, dest)
            for a, b in zip(path, path[1:]):
                assert small_topology.links_between(a, b), (a, b)

    def test_self_path(self, routes, small_topology):
        asn = next(iter(small_topology.ases))
        assert routes.as_path(asn, asn) == [asn]

    def test_route_class_preference(self, routes, small_topology):
        """An AS with a customer route to the destination never selects a
        peer or provider route."""
        asns = sorted(small_topology.ases)
        rng = random.Random(13)
        for dest in rng.sample(asns, 8):
            table = routes.routes_to(dest)
            for asn, route in table.items():
                assert route.route_class in (
                    CUSTOMER_ROUTE,
                    PEER_ROUTE,
                    PROVIDER_ROUTE,
                )
                if route.next_hop is not None:
                    assert route.next_hop in small_topology.as_neighbors(asn)

    def test_deterministic(self, small_topology):
        a = RouteComputer(small_topology)
        b = RouteComputer(small_topology)
        dest = sorted(small_topology.ases)[3]
        assert a.routes_to(dest) == b.routes_to(dest)


class TestRouterPaths:
    def _sample_pairs(self, topology, n, seed=3):
        rng = random.Random(seed)
        routers = sorted(topology.routers)
        addresses = sorted(topology.interfaces)
        pairs = []
        while len(pairs) < n:
            src = rng.choice(routers)
            dst = rng.choice(addresses)
            pairs.append((src, dst))
        return pairs

    def test_path_terminates_at_destination_router(self, forwarder, small_topology):
        for src, dst in self._sample_pairs(small_topology, 40):
            path = forwarder.router_path(src, dst)
            assert path is not None
            assert path[0].router_id == src
            assert path[-1].router_id == small_topology.interfaces[dst].router_id

    def test_consecutive_hops_adjacent(self, forwarder, small_topology):
        for src, dst in self._sample_pairs(small_topology, 25, seed=9):
            path = forwarder.router_path(src, dst)
            for here, there in zip(path, path[1:]):
                neighbors = {
                    adj.neighbor_router
                    for adj in small_topology.adjacencies(here.router_id)
                }
                assert there.router_id in neighbors

    def test_ingress_is_interface_of_hop_router(self, forwarder, small_topology):
        for src, dst in self._sample_pairs(small_topology, 25, seed=17):
            path = forwarder.router_path(src, dst)
            for hop in path[1:]:
                assert hop.ingress_address is not None
                iface = small_topology.interfaces[hop.ingress_address]
                assert iface.router_id == hop.router_id

    def test_crossing_hops_use_link_interfaces(self, forwarder, small_topology):
        """At AS boundaries the recorded interface is the far router's
        link-facing interface (IXP LAN or point-to-point)."""
        found_crossing = False
        for src, dst in self._sample_pairs(small_topology, 30, seed=23):
            path = forwarder.router_path(src, dst)
            for here, there in zip(path, path[1:]):
                asn_here = small_topology.routers[here.router_id].asn
                asn_there = small_topology.routers[there.router_id].asn
                if asn_here != asn_there:
                    found_crossing = True
                    assert there.ingress_kind in (
                        InterfaceKind.IXP_LAN,
                        InterfaceKind.PRIVATE_P2P,
                    )
        assert found_crossing

    def test_unknown_destination(self, forwarder):
        src = 0
        assert forwarder.router_path(src, 1) is None

    def test_same_router_destination(self, forwarder, small_topology):
        router = next(iter(small_topology.routers.values()))
        loopback = router.interfaces[0]
        path = forwarder.router_path(router.router_id, loopback)
        assert len(path) == 1

    def test_deterministic_paths(self, small_topology):
        a = Forwarder(small_topology)
        b = Forwarder(small_topology)
        routers = sorted(small_topology.routers)
        addresses = sorted(small_topology.interfaces)
        for src, dst in [(routers[0], addresses[-1]), (routers[5], addresses[7])]:
            assert a.router_path(src, dst) == b.router_path(src, dst)
