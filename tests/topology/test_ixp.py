"""IXP fabric tests: switch trees, proximity semantics, member ports."""

from __future__ import annotations

import pytest

from repro.topology.addressing import Prefix, ip_to_int
from repro.topology.ixp import IXP, MemberPort, Switch, SwitchKind


def make_ixp(ixp_id=1):
    return IXP(
        ixp_id=ixp_id,
        name="TEST-IX",
        metro="Frankfurt",
        country="DE",
        region="Europe",
        peering_lans=[Prefix.parse("185.0.0.0/22")],
        asn=59001,
    )


def build_paper_fabric(ixp):
    """The Figure 6 layout: core at facility 1, two backhauls, access
    switches at facilities 2..6 split across the backhauls."""
    core = Switch(switch_id=0, ixp_id=ixp.ixp_id, kind=SwitchKind.CORE, facility_id=1)
    ixp.add_switch(core)
    bh1 = Switch(switch_id=1, ixp_id=ixp.ixp_id, kind=SwitchKind.BACKHAUL, facility_id=1)
    bh2 = Switch(switch_id=2, ixp_id=ixp.ixp_id, kind=SwitchKind.BACKHAUL, facility_id=1)
    ixp.add_switch(bh1, parent_id=0)
    ixp.add_switch(bh2, parent_id=0)
    # facilities 2, 3 behind backhaul 1; facilities 4, 5 behind backhaul 2;
    # facility 6 directly on the core.
    for switch_id, facility, parent in (
        (3, 2, 1),
        (4, 3, 1),
        (5, 4, 2),
        (6, 5, 2),
        (7, 6, 0),
    ):
        ixp.add_switch(
            Switch(
                switch_id=switch_id,
                ixp_id=ixp.ixp_id,
                kind=SwitchKind.ACCESS,
                facility_id=facility,
            ),
            parent_id=parent,
        )
    return ixp


class TestFabricConstruction:
    def test_single_core(self):
        ixp = make_ixp()
        ixp.add_switch(Switch(0, ixp.ixp_id, SwitchKind.CORE, 1))
        with pytest.raises(ValueError):
            ixp.add_switch(Switch(1, ixp.ixp_id, SwitchKind.CORE, 2))

    def test_duplicate_switch_id(self):
        ixp = make_ixp()
        ixp.add_switch(Switch(0, ixp.ixp_id, SwitchKind.CORE, 1))
        with pytest.raises(ValueError):
            ixp.add_switch(Switch(0, ixp.ixp_id, SwitchKind.ACCESS, 2))

    def test_unknown_parent(self):
        ixp = make_ixp()
        with pytest.raises(ValueError):
            ixp.add_switch(
                Switch(0, ixp.ixp_id, SwitchKind.ACCESS, 1), parent_id=99
            )

    def test_foreign_switch_rejected(self):
        ixp = make_ixp()
        with pytest.raises(ValueError):
            ixp.add_switch(Switch(0, ixp_id=999, kind=SwitchKind.CORE, facility_id=1))

    def test_facility_ids(self):
        ixp = build_paper_fabric(make_ixp())
        assert ixp.facility_ids == {1, 2, 3, 4, 5, 6}


class TestFabricQueries:
    @pytest.fixture()
    def ixp(self):
        return build_paper_fabric(make_ixp())

    def test_access_switch_at(self, ixp):
        assert ixp.access_switch_at(2).switch_id == 3
        # The hub facility falls back to the core switch itself.
        assert ixp.access_switch_at(1).kind is SwitchKind.CORE

    def test_access_switch_unknown_facility(self, ixp):
        assert ixp.access_switch_at(99) is None

    def test_switch_hops_same(self, ixp):
        assert ixp.switch_hops(3, 3) == 0

    def test_switch_hops_same_backhaul(self, ixp):
        assert ixp.switch_hops(3, 4) == 2  # access -> backhaul -> access

    def test_switch_hops_across_core(self, ixp):
        assert ixp.switch_hops(3, 5) == 4

    def test_switch_hops_unknown(self, ixp):
        with pytest.raises(KeyError):
            ixp.switch_hops(3, 99)

    def test_traffic_is_local_same_backhaul(self, ixp):
        # Figure 6: facilities 2 and 3 share backhaul BH1.
        assert ixp.traffic_is_local(2, 3)

    def test_traffic_not_local_across_core(self, ixp):
        assert not ixp.traffic_is_local(2, 4)
        assert not ixp.traffic_is_local(2, 6)

    def test_traffic_is_local_same_facility(self, ixp):
        assert ixp.traffic_is_local(2, 2)

    def test_traffic_unknown_facility(self, ixp):
        with pytest.raises(KeyError):
            ixp.traffic_is_local(2, 42)

    def test_owns_address(self, ixp):
        assert ixp.owns_address(ip_to_int("185.0.1.1"))
        assert not ixp.owns_address(ip_to_int("186.0.0.1"))


class TestMemberPorts:
    def test_multi_port_registration(self):
        ixp = build_paper_fabric(make_ixp())
        ixp.add_member_port(MemberPort(asn=65000, address=1, access_switch_id=3, facility_id=2))
        ixp.add_member_port(MemberPort(asn=65000, address=2, access_switch_id=5, facility_id=4))
        assert len(ixp.ports_of(65000)) == 2
        assert ixp.primary_port(65000).address == 1
        assert ixp.member_asns == {65000}

    def test_primary_port_unknown_member(self):
        ixp = make_ixp()
        with pytest.raises(KeyError):
            ixp.primary_port(65000)

    def test_local_vs_remote_members(self):
        ixp = build_paper_fabric(make_ixp())
        ixp.add_member_port(MemberPort(asn=65000, address=1, access_switch_id=3, facility_id=2))
        ixp.add_member_port(
            MemberPort(
                asn=65001, address=2, access_switch_id=3, facility_id=None,
                reseller_asn=64999,
            )
        )
        assert ixp.local_member_asns() == {65000}
        assert ixp.remote_member_asns() == {65001}
        assert ixp.is_remote_member(65001)
        assert not ixp.is_remote_member(65000)
        assert not ixp.is_remote_member(64000)  # non-member

    def test_member_port_is_remote_property(self):
        local = MemberPort(asn=1, address=1, access_switch_id=1, facility_id=2)
        remote = MemberPort(
            asn=1, address=2, access_switch_id=1, facility_id=None, reseller_asn=9
        )
        assert not local.is_remote
        assert remote.is_remote
