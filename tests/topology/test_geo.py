"""Geography substrate tests: distances, delays, the metro catalogue."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.geo import (
    DEFAULT_METROS,
    GeoLocation,
    Metro,
    MetroCatalogue,
    haversine_km,
    km_to_miles,
    miles_to_km,
    propagation_delay_ms,
)

locations = st.builds(
    GeoLocation,
    latitude=st.floats(min_value=-90, max_value=90, allow_nan=False),
    longitude=st.floats(min_value=-180, max_value=180, allow_nan=False),
)


class TestGeoLocation:
    def test_valid_coordinates(self):
        loc = GeoLocation(51.5, -0.12)
        assert loc.latitude == 51.5
        assert loc.longitude == -0.12

    @pytest.mark.parametrize("lat", [-91, 91, 200])
    def test_latitude_out_of_range(self, lat):
        with pytest.raises(ValueError):
            GeoLocation(lat, 0.0)

    @pytest.mark.parametrize("lon", [-181, 181, 400])
    def test_longitude_out_of_range(self, lon):
        with pytest.raises(ValueError):
            GeoLocation(0.0, lon)

    def test_distance_method_matches_function(self):
        a = GeoLocation(48.85, 2.35)
        b = GeoLocation(52.52, 13.40)
        assert a.distance_km(b) == haversine_km(a, b)


class TestHaversine:
    def test_london_new_york(self):
        london = GeoLocation(51.5074, -0.1278)
        new_york = GeoLocation(40.7128, -74.0060)
        distance = haversine_km(london, new_york)
        assert 5500 < distance < 5620  # great-circle ~5570 km

    def test_frankfurt_amsterdam(self):
        frankfurt = GeoLocation(50.1109, 8.6821)
        amsterdam = GeoLocation(52.3676, 4.9041)
        assert 350 < haversine_km(frankfurt, amsterdam) < 400

    def test_zero_distance(self):
        loc = GeoLocation(10.0, 20.0)
        assert haversine_km(loc, loc) == 0.0

    def test_antipodal_bounded_by_half_circumference(self):
        a = GeoLocation(0.0, 0.0)
        b = GeoLocation(0.0, 180.0)
        assert haversine_km(a, b) == pytest.approx(20015, rel=0.01)

    @given(locations, locations)
    @settings(max_examples=100)
    def test_symmetry(self, a, b):
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))

    @given(locations, locations)
    @settings(max_examples=100)
    def test_non_negative_and_bounded(self, a, b):
        distance = haversine_km(a, b)
        assert 0.0 <= distance <= 20040  # half the Earth's circumference

    @given(locations, locations, locations)
    @settings(max_examples=100)
    def test_triangle_inequality(self, a, b, c):
        direct = haversine_km(a, c)
        via = haversine_km(a, b) + haversine_km(b, c)
        assert direct <= via + 1e-6


class TestUnitConversions:
    def test_roundtrip(self):
        assert miles_to_km(km_to_miles(123.4)) == pytest.approx(123.4)

    def test_five_miles(self):
        assert miles_to_km(5.0) == pytest.approx(8.0467, rel=1e-3)


class TestPropagationDelay:
    def test_zero_distance(self):
        assert propagation_delay_ms(0.0) == 0.0

    def test_scales_linearly(self):
        assert propagation_delay_ms(200.0) == pytest.approx(
            2 * propagation_delay_ms(100.0)
        )

    def test_transatlantic_magnitude(self):
        # ~5600 km should be tens of ms one way in fiber.
        delay = propagation_delay_ms(5600.0)
        assert 20.0 < delay < 80.0

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            propagation_delay_ms(-1.0)

    def test_deflation_rejected(self):
        with pytest.raises(ValueError):
            propagation_delay_ms(100.0, inflation=0.5)


class TestMetro:
    def test_bad_country_code(self):
        with pytest.raises(ValueError):
            Metro("X", "gbr", "Europe", GeoLocation(0, 0))

    def test_bad_weight(self):
        with pytest.raises(ValueError):
            Metro("X", "GB", "Europe", GeoLocation(0, 0), market_weight=0)


class TestMetroCatalogue:
    @pytest.fixture(scope="class")
    def catalogue(self):
        return MetroCatalogue()

    def test_default_size(self, catalogue):
        assert len(catalogue) == len(DEFAULT_METROS)

    def test_resolve_canonical(self, catalogue):
        assert catalogue.resolve("London").country == "GB"

    def test_resolve_alias(self, catalogue):
        # Jersey City folds into the New York metro (Section 3.1.1).
        assert catalogue.resolve("Jersey City").name == "New York"

    def test_resolve_case_insensitive(self, catalogue):
        assert catalogue.resolve("frankfurt am main").name == "Frankfurt"

    def test_resolve_unknown_raises(self, catalogue):
        with pytest.raises(KeyError):
            catalogue.resolve("Atlantis")

    def test_get_unknown_returns_none(self, catalogue):
        assert catalogue.get("Atlantis") is None

    def test_in_region(self, catalogue):
        europe = catalogue.in_region("Europe")
        names = {metro.name for metro in europe}
        assert {"London", "Frankfurt", "Amsterdam"} <= names
        assert all(metro.region == "Europe" for metro in europe)

    def test_in_country(self, catalogue):
        germany = {metro.name for metro in catalogue.in_country("DE")}
        assert {"Frankfurt", "Berlin", "Hamburg", "Duesseldorf"} <= germany

    def test_nearest(self, catalogue):
        near_slough = GeoLocation(51.51, -0.59)
        assert catalogue.nearest(near_slough).name == "London"

    def test_distance_between_metros(self, catalogue):
        distance = catalogue.distance_km("London", "Paris")
        assert 300 < distance < 400

    def test_figure3_metros_present(self, catalogue):
        # Every metro from the paper's Figure 3 skyline must exist.
        for name in (
            "London", "New York", "Paris", "Frankfurt", "Amsterdam",
            "San Jose", "Moscow", "Los Angeles", "Stockholm", "Manchester",
            "Miami", "Berlin", "Tokyo", "Kiev", "Sao Paulo", "Vienna",
            "Singapore", "Auckland", "Hong Kong", "Melbourne", "Montreal",
            "Zurich", "Prague", "Seattle", "Chicago", "Dallas", "Hamburg",
            "Atlanta", "Bucharest", "Madrid", "Milan", "Duesseldorf",
            "Sofia", "St. Petersburg",
        ):
            assert catalogue.get(name) is not None, name

    def test_weights_descend_with_figure3_rank(self, catalogue):
        assert (
            catalogue.resolve("London").market_weight
            > catalogue.resolve("Tokyo").market_weight
            > catalogue.resolve("Phoenix").market_weight
        )

    def test_duplicate_names_rejected(self):
        metro = DEFAULT_METROS[0]
        with pytest.raises(ValueError):
            MetroCatalogue((metro, metro))

    def test_empty_catalogue_rejected(self):
        with pytest.raises(ValueError):
            MetroCatalogue(())

    def test_all_regions_covered(self, catalogue):
        regions = {metro.region for metro in catalogue}
        assert regions == {
            "Europe",
            "North America",
            "South America",
            "Asia",
            "Oceania",
            "Africa",
        }
