"""Cross-seed invariants: properties every generated Internet must hold.

The single-seed builder tests pin behaviour for one topology; these
parametrized checks guard the invariants the inference pipeline relies
on across different random worlds.
"""

from __future__ import annotations

import random

import pytest

from repro.topology import (
    ASRole,
    InterfaceKind,
    RouteComputer,
    TopologyConfig,
    build_topology,
)

SEEDS = (5, 21, 99)


@pytest.fixture(scope="module", params=SEEDS)
def seeded_topology(request):
    return build_topology(TopologyConfig.small(seed=request.param))


class TestStructuralInvariants:
    def test_every_interface_on_exactly_one_router(self, seeded_topology):
        owners: dict[int, int] = {}
        for router in seeded_topology.routers.values():
            for address in router.interfaces:
                assert address not in owners
                owners[address] = router.router_id
        assert set(owners) == set(seeded_topology.interfaces)

    def test_every_router_in_a_known_facility(self, seeded_topology):
        for router in seeded_topology.routers.values():
            assert router.facility_id in seeded_topology.facilities

    def test_interconnection_endpoints_consistent(self, seeded_topology):
        for link in seeded_topology.interconnections.values():
            assert seeded_topology.routers[link.router_a].asn == link.asn_a
            assert seeded_topology.routers[link.router_b].asn == link.asn_b

    def test_ixp_ports_have_interfaces(self, seeded_topology):
        for ixp in seeded_topology.ixps.values():
            for ports in ixp.member_ports.values():
                for port in ports:
                    iface = seeded_topology.interfaces[port.address]
                    assert iface.kind is InterfaceKind.IXP_LAN
                    assert iface.ixp_id == ixp.ixp_id

    def test_remote_ports_not_in_partner_facilities(self, seeded_topology):
        for ixp in seeded_topology.ixps.values():
            for ports in ixp.member_ports.values():
                for port in ports:
                    router = seeded_topology.router_of_address(port.address)
                    if port.is_remote:
                        assert router.facility_id not in ixp.facility_ids
                    else:
                        assert router.facility_id == port.facility_id

    def test_host_and_loopback_per_router(self, seeded_topology):
        for router in seeded_topology.routers.values():
            kinds = [
                seeded_topology.interfaces[a].kind for a in router.interfaces
            ]
            assert kinds.count(InterfaceKind.LOOPBACK) == 1
            assert kinds.count(InterfaceKind.HOST) == 1

    def test_every_role_present(self, seeded_topology):
        roles = {record.role for record in seeded_topology.ases.values()}
        assert roles == set(ASRole)


class TestRoutingInvariants:
    def test_universal_reachability(self, seeded_topology):
        routes = RouteComputer(seeded_topology)
        asns = sorted(seeded_topology.ases)
        rng = random.Random(1)
        for dest in rng.sample(asns, 6):
            assert set(routes.routes_to(dest)) == set(asns)

    def test_paths_terminate(self, seeded_topology):
        routes = RouteComputer(seeded_topology)
        asns = sorted(seeded_topology.ases)
        rng = random.Random(2)
        for _ in range(40):
            src, dest = rng.sample(asns, 2)
            path = routes.as_path(src, dest)
            assert path is not None
            assert len(path) <= 12  # no pathological wandering
