"""Topology container tests: indexes, adjacency, ground-truth queries."""

from __future__ import annotations

import pytest

from repro.topology import (
    InterconnectionType,
    InterfaceKind,
    MetroCatalogue,
    Topology,
)


class TestFinalize:
    def test_double_finalize_rejected(self):
        topology = Topology(seed=0, metros=MetroCatalogue())
        topology.finalize()
        with pytest.raises(RuntimeError):
            topology.finalize()


class TestAdjacency:
    def test_adjacency_symmetric(self, small_topology):
        topology = small_topology
        for router_id in topology.routers:
            for adj in topology.adjacencies(router_id):
                back = [
                    a
                    for a in topology.adjacencies(adj.neighbor_router)
                    if a.neighbor_router == router_id and a.link_id == adj.link_id
                ]
                assert back, (router_id, adj)
                assert back[0].ingress_address == adj.egress_address
                assert back[0].egress_address == adj.ingress_address

    def test_ingress_address_belongs_to_neighbor(self, small_topology):
        topology = small_topology
        for router_id in topology.routers:
            for adj in topology.adjacencies(router_id):
                iface = topology.interfaces[adj.ingress_address]
                assert iface.router_id == adj.neighbor_router

    def test_public_adjacency_uses_lan_addresses(self, small_topology):
        topology = small_topology
        for link in topology.interconnections.values():
            if link.kind.is_private:
                continue
            adjs = [
                a
                for a in topology.adjacencies(link.router_a)
                if a.link_id == link.link_id
            ]
            assert adjs
            assert adjs[0].kind is InterfaceKind.IXP_LAN
            assert topology.ixp_of_address(adjs[0].ingress_address) == link.ixp_id


class TestGroundTruthQueries:
    def test_true_asn_vs_space_owner(self, small_topology):
        topology = small_topology
        mismatches = 0
        for address, iface in topology.interfaces.items():
            true_asn = topology.true_asn_of_address(address)
            assert true_asn == topology.routers[iface.router_id].asn
            if iface.kind is InterfaceKind.PRIVATE_P2P and iface.space_owner_asn != true_asn:
                mismatches += 1
        # Shared point-to-point subnets guarantee such mismatches exist -
        # the error source Section 4.1 repairs.
        assert mismatches > 0

    def test_announced_origin_follows_space_owner(self, small_topology):
        topology = small_topology
        for address, iface in topology.interfaces.items():
            if iface.kind is InterfaceKind.IXP_LAN:
                continue
            assert topology.announced_origin(address) == iface.space_owner_asn

    def test_ixp_of_address(self, small_topology):
        topology = small_topology
        for ixp in topology.ixps.values():
            for ports in ixp.member_ports.values():
                for port in ports:
                    assert topology.ixp_of_address(port.address) == ixp.ixp_id

    def test_true_facility_of_address(self, small_topology):
        topology = small_topology
        some = list(topology.interfaces)[:50]
        for address in some:
            router = topology.router_of_address(address)
            assert topology.true_facility_of_address(address) == router.facility_id

    def test_links_between_symmetric(self, small_topology):
        topology = small_topology
        link = next(iter(topology.interconnections.values()))
        forward = topology.links_between(link.asn_a, link.asn_b)
        backward = topology.links_between(link.asn_b, link.asn_a)
        assert forward == backward
        assert link in forward

    def test_providers_customers_peers_partition(self, small_topology):
        topology = small_topology
        for asn in list(topology.ases)[:40]:
            providers = topology.providers_of(asn)
            customers = topology.customers_of(asn)
            peers = topology.peers_of(asn)
            assert not providers & peers
            assert not customers & peers

    def test_side_type_values(self, small_topology):
        topology = small_topology
        seen = set()
        for link in topology.interconnections.values():
            for asn in (link.asn_a, link.asn_b):
                side = topology.side_type(link, asn)
                seen.add(side)
                assert side in {
                    "public-local",
                    "public-remote",
                    "cross-connect",
                    "tethering",
                }
        assert "cross-connect" in seen
        assert "public-local" in seen

    def test_side_type_wrong_asn(self, small_topology):
        topology = small_topology
        link = next(iter(topology.interconnections.values()))
        with pytest.raises(ValueError):
            topology.side_type(link, 999999999)

    def test_remote_side_classification(self, small_topology):
        topology = small_topology
        remote_sides = [
            (link, asn)
            for link in topology.interconnections.values()
            if link.kind is InterconnectionType.REMOTE_PEERING
            for asn in (link.asn_a, link.asn_b)
            if topology.ixps[link.ixp_id].is_remote_member(asn)
        ]
        assert remote_sides
        for link, asn in remote_sides:
            assert topology.side_type(link, asn) == "public-remote"

    def test_campus_facilities_contains_self(self, small_topology):
        topology = small_topology
        for facility_id in topology.facilities:
            campus = topology.campus_facilities(facility_id)
            assert facility_id in campus
            metro = topology.facilities[facility_id].metro
            assert all(
                topology.facilities[f].metro == metro for f in campus
            )

    def test_facilities_in_metro(self, small_topology):
        topology = small_topology
        metro = next(iter(topology.facilities.values())).metro
        facilities = topology.facilities_in_metro(metro)
        assert facilities
        assert all(f.metro == metro for f in facilities)

    def test_summary_keys(self, small_topology):
        summary = small_topology.summary()
        assert summary["facilities"] == len(small_topology.facilities)
        assert summary["routers"] == len(small_topology.routers)
        assert summary["interconnections"] == len(
            small_topology.interconnections
        )
