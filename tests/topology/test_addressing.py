"""IPv4 addressing tests: parsing, prefixes, allocation, LPM trie."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.addressing import (
    MAX_IPV4,
    LongestPrefixMatcher,
    PoolExhaustedError,
    Prefix,
    PrefixAllocator,
    int_to_ip,
    ip_to_int,
)

addresses = st.integers(min_value=0, max_value=MAX_IPV4)


def prefix_strategy(min_len=0, max_len=32):
    return st.tuples(
        addresses, st.integers(min_value=min_len, max_value=max_len)
    ).map(
        lambda pair: Prefix(
            pair[0] & ((MAX_IPV4 << (32 - pair[1])) & MAX_IPV4 if pair[1] else 0),
            pair[1],
        )
    )


class TestIpConversions:
    @pytest.mark.parametrize(
        "dotted,value",
        [
            ("0.0.0.0", 0),
            ("255.255.255.255", MAX_IPV4),
            ("10.0.0.1", (10 << 24) + 1),
            ("192.168.1.1", (192 << 24) + (168 << 16) + (1 << 8) + 1),
        ],
    )
    def test_known_values(self, dotted, value):
        assert ip_to_int(dotted) == value
        assert int_to_ip(value) == dotted

    @given(addresses)
    @settings(max_examples=200)
    def test_roundtrip(self, value):
        assert ip_to_int(int_to_ip(value)) == value

    @pytest.mark.parametrize(
        "bad",
        ["1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1.2.3.-4", "01.2.3.4", ""],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            ip_to_int(bad)

    @pytest.mark.parametrize("bad", [-1, MAX_IPV4 + 1])
    def test_int_to_ip_range(self, bad):
        with pytest.raises(ValueError):
            int_to_ip(bad)


class TestPrefix:
    def test_parse(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert prefix.network == 10 << 24
        assert prefix.length == 8
        assert str(prefix) == "10.0.0.0/8"

    def test_parse_rejects_non_cidr(self):
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.0")

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError):
            Prefix(ip_to_int("10.0.0.1"), 8)

    def test_bad_length(self):
        with pytest.raises(ValueError):
            Prefix(0, 33)

    def test_contains(self):
        prefix = Prefix.parse("192.168.0.0/16")
        assert ip_to_int("192.168.5.5") in prefix
        assert ip_to_int("192.169.0.0") not in prefix

    def test_first_last_num(self):
        prefix = Prefix.parse("10.0.0.0/30")
        assert prefix.first == ip_to_int("10.0.0.0")
        assert prefix.last == ip_to_int("10.0.0.3")
        assert prefix.num_addresses == 4

    def test_hosts_regular_skips_network_broadcast(self):
        prefix = Prefix.parse("10.0.0.0/30")
        assert list(prefix.hosts()) == [
            ip_to_int("10.0.0.1"),
            ip_to_int("10.0.0.2"),
        ]

    def test_hosts_slash31_uses_both(self):
        prefix = Prefix.parse("10.0.0.0/31")
        assert len(list(prefix.hosts())) == 2

    def test_hosts_slash32(self):
        prefix = Prefix.parse("10.0.0.7/32")
        assert list(prefix.hosts()) == [ip_to_int("10.0.0.7")]

    def test_subnets(self):
        prefix = Prefix.parse("10.0.0.0/24")
        subnets = list(prefix.subnets(26))
        assert len(subnets) == 4
        assert subnets[0] == Prefix.parse("10.0.0.0/26")
        assert subnets[-1] == Prefix.parse("10.0.0.192/26")

    def test_subnets_invalid_length(self):
        with pytest.raises(ValueError):
            list(Prefix.parse("10.0.0.0/24").subnets(23))

    def test_contains_prefix_and_overlap(self):
        big = Prefix.parse("10.0.0.0/8")
        small = Prefix.parse("10.1.0.0/16")
        other = Prefix.parse("11.0.0.0/8")
        assert big.contains_prefix(small)
        assert not small.contains_prefix(big)
        assert big.overlaps(small) and small.overlaps(big)
        assert not big.overlaps(other)

    @given(prefix_strategy(max_len=28), addresses)
    @settings(max_examples=200)
    def test_contains_matches_mask_math(self, prefix, address):
        expected = (address >> (32 - prefix.length)) == (
            prefix.network >> (32 - prefix.length)
        ) if prefix.length else True
        assert (address in prefix) == expected

    def test_zero_prefix_contains_everything(self):
        default = Prefix(0, 0)
        assert 0 in default
        assert MAX_IPV4 in default
        assert default.num_addresses == 1 << 32


class TestPrefixAllocator:
    def test_sequential_subnets_disjoint(self):
        allocator = PrefixAllocator(Prefix.parse("10.0.0.0/16"))
        taken = [allocator.allocate_prefix(24) for _ in range(4)]
        for i, a in enumerate(taken):
            for b in taken[i + 1 :]:
                assert not a.overlaps(b)

    def test_alignment_after_smaller_allocation(self):
        allocator = PrefixAllocator(Prefix.parse("10.0.0.0/16"))
        allocator.allocate_prefix(31)
        aligned = allocator.allocate_prefix(24)
        assert aligned.network % aligned.num_addresses == 0

    def test_allocations_stay_in_pool(self):
        pool = Prefix.parse("10.0.0.0/20")
        allocator = PrefixAllocator(pool)
        for _ in range(10):
            assert pool.contains_prefix(allocator.allocate_prefix(26))

    def test_exhaustion(self):
        allocator = PrefixAllocator(Prefix.parse("10.0.0.0/30"))
        allocator.allocate_prefix(31)
        allocator.allocate_prefix(31)
        with pytest.raises(PoolExhaustedError):
            allocator.allocate_prefix(31)

    def test_cannot_allocate_larger_than_pool(self):
        allocator = PrefixAllocator(Prefix.parse("10.0.0.0/24"))
        with pytest.raises(ValueError):
            allocator.allocate_prefix(16)

    def test_allocate_address(self):
        allocator = PrefixAllocator(Prefix.parse("10.0.0.0/24"))
        first = allocator.allocate_address()
        second = allocator.allocate_address()
        assert first != second

    def test_remaining_decreases(self):
        allocator = PrefixAllocator(Prefix.parse("10.0.0.0/24"))
        before = allocator.remaining
        allocator.allocate_prefix(28)
        assert allocator.remaining == before - 16


class TestLongestPrefixMatcher:
    def test_lookup_prefers_longest(self):
        trie = LongestPrefixMatcher()
        trie.insert(Prefix.parse("10.0.0.0/8"), "big")
        trie.insert(Prefix.parse("10.1.0.0/16"), "small")
        assert trie.lookup(ip_to_int("10.1.2.3")) == "small"
        assert trie.lookup(ip_to_int("10.2.2.3")) == "big"

    def test_miss_returns_none(self):
        trie = LongestPrefixMatcher()
        trie.insert(Prefix.parse("10.0.0.0/8"), "x")
        assert trie.lookup(ip_to_int("11.0.0.1")) is None

    def test_replace_value(self):
        trie = LongestPrefixMatcher()
        prefix = Prefix.parse("10.0.0.0/8")
        trie.insert(prefix, "old")
        trie.insert(prefix, "new")
        assert trie.lookup(ip_to_int("10.0.0.1")) == "new"
        assert len(trie) == 1

    def test_default_route(self):
        trie = LongestPrefixMatcher()
        trie.insert(Prefix(0, 0), "default")
        assert trie.lookup(ip_to_int("200.1.2.3")) == "default"

    def test_lookup_prefix_returns_match(self):
        trie = LongestPrefixMatcher()
        trie.insert(Prefix.parse("192.168.0.0/16"), 7)
        match = trie.lookup_prefix(ip_to_int("192.168.3.4"))
        assert match == (Prefix.parse("192.168.0.0/16"), 7)

    def test_lookup_rejects_out_of_range(self):
        trie = LongestPrefixMatcher()
        with pytest.raises(ValueError):
            trie.lookup(-1)

    def test_covers(self):
        trie = LongestPrefixMatcher()
        trie.insert(Prefix.parse("10.0.0.0/8"), 1)
        assert trie.covers(ip_to_int("10.9.9.9"))
        assert not trie.covers(ip_to_int("11.0.0.0"))

    @given(
        st.lists(prefix_strategy(min_len=1, max_len=28), min_size=1, max_size=20),
        addresses,
    )
    @settings(max_examples=200)
    def test_matches_brute_force(self, prefixes, address):
        trie = LongestPrefixMatcher()
        table = {}
        for index, prefix in enumerate(prefixes):
            trie.insert(prefix, index)
            table[prefix] = index  # later insert wins, as in the trie
        expected = None
        best_length = -1
        for prefix, value in table.items():
            if address in prefix and prefix.length > best_length:
                best_length = prefix.length
                expected = value
        assert trie.lookup(address) == expected
