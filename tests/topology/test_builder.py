"""Topology builder invariants over generated Internets."""

from __future__ import annotations

import pytest

from repro.topology import (
    ASRole,
    InterconnectionType,
    InterfaceKind,
    Relationship,
    TopologyConfig,
    build_topology,
)
from repro.topology.builder import TopologyBuilder


@pytest.fixture(scope="module")
def topology(small_topology):
    return small_topology


class TestConfigValidation:
    def test_needs_two_tier1(self):
        config = TopologyConfig.small()
        config.n_tier1 = 1
        with pytest.raises(ValueError):
            TopologyBuilder(config)

    def test_needs_facilities(self):
        config = TopologyConfig.small()
        config.n_facilities = 2
        with pytest.raises(ValueError):
            TopologyBuilder(config)

    def test_remote_peering_needs_reseller(self):
        config = TopologyConfig.small()
        config.n_reseller = 0
        with pytest.raises(ValueError):
            TopologyBuilder(config)

    def test_bad_probability(self):
        config = TopologyConfig.small()
        config.remote_member_prob = 1.5
        with pytest.raises(ValueError):
            TopologyBuilder(config)


class TestPopulation:
    def test_population_counts(self, topology):
        config = TopologyConfig.small(seed=1)
        expected = (
            config.n_tier1
            + config.n_transit
            + config.n_content
            + config.n_access
            + config.n_stub
            + config.n_reseller
        )
        assert len(topology.ases) == expected

    def test_facility_count(self, topology):
        assert len(topology.facilities) == TopologyConfig.small().n_facilities

    def test_ixp_count_including_inactive(self, topology):
        config = TopologyConfig.small()
        assert len(topology.ixps) == config.n_ixps + config.n_inactive_ixps
        active = [ixp for ixp in topology.ixps.values() if ixp.active]
        assert len(active) == config.n_ixps

    def test_every_as_has_presence_and_routers(self, topology):
        for asn, record in topology.ases.items():
            assert record.facility_ids, asn
            routers = topology.routers_of(asn)
            assert routers, asn
            router_facilities = {
                topology.routers[r].facility_id for r in routers
            }
            assert router_facilities == record.facility_ids

    def test_every_facility_belongs_to_operator(self, topology):
        for facility in topology.facilities.values():
            operator = topology.operators[facility.operator_id]
            assert facility.facility_id in operator.facility_ids


class TestAddressing:
    def test_loopbacks_in_own_space(self, topology):
        for router in topology.routers.values():
            record = topology.ases[router.asn]
            loopbacks = [
                a
                for a in router.interfaces
                if topology.interfaces[a].kind is InterfaceKind.LOOPBACK
            ]
            assert len(loopbacks) == 1
            assert any(loopbacks[0] in p for p in record.prefixes)

    def test_p2p_addresses_in_owner_space(self, topology):
        for link in topology.interconnections.values():
            if link.p2p_prefix is None:
                continue
            owner = topology.ases[link.p2p_owner_asn]
            assert any(
                owner_prefix.contains_prefix(link.p2p_prefix)
                for owner_prefix in owner.prefixes
            )

    def test_ixp_lan_addresses_inside_lans(self, topology):
        for ixp in topology.ixps.values():
            for ports in ixp.member_ports.values():
                for port in ports:
                    assert ixp.owns_address(port.address)

    def test_no_duplicate_interface_addresses(self, topology):
        # add_interface enforces it; double-check via router walk.
        seen = set()
        for router in topology.routers.values():
            for address in router.interfaces:
                assert address not in seen
                seen.add(address)

    def test_as_aggregates_disjoint(self, topology):
        prefixes = [
            prefix
            for record in topology.ases.values()
            for prefix in record.prefixes
        ]
        for i, a in enumerate(prefixes):
            for b in prefixes[i + 1 :]:
                assert not a.overlaps(b)


class TestInterconnections:
    def test_transit_links_are_cross_connects_or_tethers(self, topology):
        for link in topology.interconnections.values():
            if link.relationship is not Relationship.CUSTOMER_PROVIDER:
                continue
            if link.kind is InterconnectionType.PRIVATE_CROSS_CONNECT:
                assert link.facility_a == link.facility_b
            else:
                # Section 2: tethering reaches transit providers over a
                # shared fabric when no building is shared.
                assert link.kind is InterconnectionType.TETHERING
                assert link.ixp_id is not None
                ixp = topology.ixps[link.ixp_id]
                assert link.asn_a in ixp.member_asns
                assert link.asn_b in ixp.member_asns

    def test_some_transit_tethering_exists(self):
        """Transit-over-tethering requires a customer and a non-colocated
        provider to share an exchange — seed luck at the small scale, so
        probe a few worlds."""
        found = 0
        for seed in (1, 2, 3, 4, 5):
            world = build_topology(TopologyConfig.small(seed=seed))
            found += sum(
                1
                for link in world.interconnections.values()
                if link.relationship is Relationship.CUSTOMER_PROVIDER
                and link.kind is InterconnectionType.TETHERING
            )
        assert found > 0, "transit-over-tethering should occur somewhere"

    def test_every_nontier1_has_provider_link(self, topology):
        for asn, record in topology.ases.items():
            if record.role is ASRole.TIER1:
                continue
            assert record.transit_provider_asns, asn
            for provider in record.transit_provider_asns:
                assert topology.links_between(asn, provider), (asn, provider)

    def test_tier1_clique(self, topology):
        tier1s = [
            asn
            for asn, record in topology.ases.items()
            if record.role is ASRole.TIER1
        ]
        for i, a in enumerate(tier1s):
            for b in tier1s[i + 1 :]:
                assert topology.links_between(a, b), (a, b)

    def test_public_links_use_member_routers(self, topology):
        for link in topology.interconnections.values():
            if link.kind is not InterconnectionType.PUBLIC_PEERING:
                continue
            ixp = topology.ixps[link.ixp_id]
            for asn, router_id in (
                (link.asn_a, link.router_a),
                (link.asn_b, link.router_b),
            ):
                port_routers = {
                    topology.interfaces[port.address].router_id
                    for port in ixp.ports_of(asn)
                }
                assert router_id in port_routers

    def test_cross_connect_within_campus(self, topology):
        for link in topology.interconnections.values():
            if link.kind is not InterconnectionType.PRIVATE_CROSS_CONNECT:
                continue
            assert link.facility_b in topology.campus_facilities(link.facility_a)

    def test_remote_links_have_remote_member(self, topology):
        for link in topology.interconnections.values():
            if link.kind is not InterconnectionType.REMOTE_PEERING:
                continue
            ixp = topology.ixps[link.ixp_id]
            assert ixp.is_remote_member(link.asn_a) or ixp.is_remote_member(
                link.asn_b
            )

    def test_remote_members_exist(self, topology):
        remote = {
            asn
            for ixp in topology.ixps.values()
            for asn in ixp.remote_member_asns()
        }
        assert remote, "the small topology should include remote peers"

    def test_facilities_match_router_placement(self, topology):
        for link in topology.interconnections.values():
            assert topology.routers[link.router_a].facility_id == link.facility_a
            assert topology.routers[link.router_b].facility_id == link.facility_b


class TestBackbone:
    def test_backbone_connected_per_as(self, topology):
        for asn in topology.ases:
            routers = topology.routers_of(asn)
            if len(routers) < 2:
                continue
            seen = {routers[0]}
            frontier = [routers[0]]
            while frontier:
                current = frontier.pop()
                for adj in topology.adjacencies(current):
                    if adj.is_interconnection:
                        continue
                    if adj.neighbor_router not in seen:
                        seen.add(adj.neighbor_router)
                        frontier.append(adj.neighbor_router)
            assert seen == set(routers), asn

    def test_backbone_links_intra_as(self, topology):
        for link in topology.backbone_links.values():
            assert (
                topology.routers[link.router_a].asn
                == topology.routers[link.router_b].asn
                == link.asn
            )


class TestDeterminism:
    def test_same_seed_same_topology(self):
        a = build_topology(TopologyConfig.small(seed=77))
        b = build_topology(TopologyConfig.small(seed=77))
        assert a.summary() == b.summary()
        assert sorted(a.interfaces) == sorted(b.interfaces)
        assert {
            (link.asn_a, link.asn_b, link.kind.value)
            for link in a.interconnections.values()
        } == {
            (link.asn_a, link.asn_b, link.kind.value)
            for link in b.interconnections.values()
        }

    def test_different_seed_differs(self):
        a = build_topology(TopologyConfig.small(seed=77))
        b = build_topology(TopologyConfig.small(seed=78))
        assert sorted(a.interfaces) != sorted(b.interfaces)


class TestShape:
    def test_dual_port_members_exist(self, topology):
        dual = [
            (ixp.ixp_id, asn)
            for ixp in topology.ixps.values()
            for asn, ports in ixp.member_ports.items()
            if len(ports) > 1
        ]
        assert dual, "multi-port members drive the proximity experiment"

    def test_multi_ixp_facilities_exist(self, topology):
        shared = [
            facility
            for facility in topology.facilities.values()
            if len(facility.ixp_ids) >= 2
        ]
        assert shared, "IXPs must co-locate for multi-IXP routers to exist"

    def test_content_ases_join_many_ixps(self, topology):
        content = [
            record
            for record in topology.ases.values()
            if record.role is ASRole.CONTENT
        ]
        assert sum(len(record.all_ixp_ids) for record in content) >= len(content)
