"""Unit tests of the observability subsystem (events, sinks, timers)."""

from __future__ import annotations

import logging

import pytest

from repro.obs import (
    EVENT_NAMES,
    Instrumentation,
    LoggingSink,
    MemorySink,
    MetricsSnapshot,
    NullSink,
    ObsEvent,
    ObsSink,
    UnregisteredEventError,
)


class TestSinks:
    def test_null_sink_drops_events(self):
        sink = NullSink()
        sink.emit(ObsEvent(name="x"))  # no error, no state

    def test_memory_sink_records_in_order(self):
        sink = MemorySink()
        sink.emit(ObsEvent(name="a", payload={"n": 1}))
        sink.emit(ObsEvent(name="b"))
        sink.emit(ObsEvent(name="a", payload={"n": 2}))
        assert len(sink) == 3
        assert [e.name for e in sink.events] == ["a", "b", "a"]
        assert [e.get("n") for e in sink.by_name("a")] == [1, 2]
        sink.clear()
        assert len(sink) == 0

    def test_logging_sink_renders_payload(self, caplog):
        logger = logging.getLogger("repro.test.obs")
        sink = LoggingSink(logger=logger, level=logging.INFO)
        with caplog.at_level(logging.INFO, logger="repro.test.obs"):
            sink.emit(
                ObsEvent(name="cfs.iteration", payload={"n": 3}, stage="map")
            )
        assert len(caplog.records) == 1
        message = caplog.records[0].getMessage()
        assert "cfs.iteration" in message
        assert "n=3" in message
        assert "map" in message

    def test_sinks_satisfy_protocol(self):
        for sink in (NullSink(), MemorySink(), LoggingSink()):
            assert isinstance(sink, ObsSink)


class TestInstrumentation:
    def test_counters_accumulate(self):
        obs = Instrumentation()
        obs.count("a")
        obs.count("a", 4)
        obs.count("b", 0)
        assert obs.counter("a") == 5
        assert obs.counter("b") == 0
        assert obs.counter("missing", default=-1) == -1

    def test_stage_timer_accumulates_across_entries(self):
        obs = Instrumentation()
        with obs.stage("work"):
            pass
        with obs.stage("work"):
            pass
        snap = obs.snapshot()
        assert snap.stage_calls["work"] == 2
        assert snap.stage_seconds["work"] >= 0.0

    def test_stage_nesting_tracks_current_stage(self):
        obs = Instrumentation(sink=MemorySink())
        assert obs.current_stage is None
        with obs.stage("outer"):
            assert obs.current_stage == "outer"
            with obs.stage("inner"):
                assert obs.current_stage == "inner"
                obs.emit("probe", x=1)
            assert obs.current_stage == "outer"
        assert obs.current_stage is None
        (event,) = obs.sink.by_name("probe")
        assert event.stage == "inner"

    def test_stage_timer_survives_exceptions(self):
        obs = Instrumentation()
        with pytest.raises(RuntimeError):
            with obs.stage("boom"):
                raise RuntimeError("x")
        assert obs.current_stage is None
        assert obs.snapshot().stage_calls["boom"] == 1

    def test_emit_to_memory_sink(self):
        sink = MemorySink()
        obs = Instrumentation(sink=sink)
        obs.emit("hello", value=7)
        (event,) = sink.events
        assert event.name == "hello"
        assert event.get("value") == 7

    def test_emit_allows_name_collision_in_payload(self):
        sink = MemorySink()
        obs = Instrumentation(sink=sink)
        obs.emit("evt", name="payload-name")
        (event,) = sink.events
        assert event.name == "evt"
        assert event.get("name") == "payload-name"

    def test_null_sink_emit_is_silent(self):
        obs = Instrumentation()
        obs.emit("dropped", x=1)  # must not raise
        assert isinstance(obs.sink, NullSink)

    def test_snapshot_is_frozen_copy(self):
        obs = Instrumentation()
        obs.count("a")
        snap = obs.snapshot()
        obs.count("a")
        assert snap.counter("a") == 1
        assert obs.counter("a") == 2

    def test_snapshot_as_dict_schema(self):
        obs = Instrumentation()
        obs.count("z", 3)
        with obs.stage("s"):
            pass
        rendered = obs.snapshot().as_dict()
        assert rendered["counters"] == {"z": 3}
        assert set(rendered["stages"]) == {"s"}
        assert set(rendered["stages"]["s"]) == {"seconds", "calls"}
        assert rendered["stages"]["s"]["calls"] == 1

    def test_empty_snapshot(self):
        snap = MetricsSnapshot()
        assert snap.as_dict() == {"counters": {}, "stages": {}}


class TestEventRegistry:
    """EVENT_NAMES and strict-mode emit (the runtime twin of R004)."""

    def test_registry_entries_are_documented(self):
        assert EVENT_NAMES
        for name, description in EVENT_NAMES.items():
            assert name == name.strip() and name, name
            assert description.strip(), f"{name} has no description"

    def test_strict_emit_accepts_registered_names(self):
        sink = MemorySink()
        obs = Instrumentation(sink=sink, strict=True)
        obs.emit("cfs.iteration", iteration=1)
        (event,) = sink.events
        assert event.name == "cfs.iteration"

    def test_strict_emit_rejects_unregistered_names(self):
        obs = Instrumentation(sink=MemorySink(), strict=True)
        with pytest.raises(UnregisteredEventError, match="rogue.name"):
            obs.emit("rogue.name", x=1)

    def test_strict_checks_even_with_null_sink(self):
        # The check guards the namespace, not the sink: a NullSink run
        # in strict mode still refuses to mint new names.
        obs = Instrumentation(strict=True)
        with pytest.raises(UnregisteredEventError):
            obs.emit("rogue.name")

    def test_default_mode_stays_permissive(self):
        sink = MemorySink()
        Instrumentation(sink=sink).emit("rogue.name")
        assert sink.events[0].name == "rogue.name"

    def test_stage_timer_emits_registered_name_under_strict(self):
        obs = Instrumentation(sink=MemorySink(), strict=True)
        with obs.stage("extract"):
            pass  # the closing "stage" event must be registered

    def test_full_pipeline_emits_only_registered_names(self):
        """A whole campaign + CFS run in strict mode: every name any
        instrumented component actually emits is in EVENT_NAMES."""
        from repro.api import PipelineConfig, run_pipeline

        sink = MemorySink()
        obs = Instrumentation(sink=sink, strict=True)
        run_pipeline(
            config=PipelineConfig.small(seed=11), instrumentation=obs
        )  # raises UnregisteredEventError on any rogue name
        emitted = {event.name for event in sink.events}
        assert emitted <= set(EVENT_NAMES)
        assert "cfs.iteration" in emitted
