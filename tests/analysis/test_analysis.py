"""Analysis subpackage tests: resilience, profiles, map diffs."""

from __future__ import annotations

import pytest

from repro.analysis import (
    CriticalityIndex,
    build_profile,
    build_profiles,
    diff_results,
)
from repro.core.types import (
    CfsResult,
    InferredType,
    InterfaceState,
    LinkInference,
    PeeringKind,
)
from repro.experiments.context import clone_corpus
from repro.topology import ASRole


def make_result(interfaces=None, links=None):
    return CfsResult(
        interfaces=interfaces or {},
        links=links or [],
        history=[],
        iterations_run=1,
        followup_traces=0,
        peering_interfaces_seen=len(interfaces or {}),
    )


def link(near_asn, far_asn, near_fac, far_fac, kind=PeeringKind.PRIVATE,
         inferred=InferredType.CROSS_CONNECT, ixp=None, address=100):
    return LinkInference(
        kind=kind,
        inferred_type=inferred,
        near_address=address,
        near_asn=near_asn,
        near_facility=near_fac,
        far_asn=far_asn,
        far_facility=far_fac,
        ixp_id=ixp,
    )


class TestCriticalityIndex:
    def test_counts_both_endpoints(self):
        result = make_result(links=[
            link(1, 2, near_fac=10, far_fac=11),
            link(1, 3, near_fac=10, far_fac=None),
        ])
        index = CriticalityIndex(result)
        assert index.facilities() == [10, 11]
        crit = index.criticality(10)
        assert crit.link_endpoints == 2
        assert crit.distinct_asns == 3

    def test_ranked_order(self):
        result = make_result(links=[
            link(1, 2, 10, None),
            link(1, 3, 10, None, address=101),
            link(4, 5, 11, None, address=102),
        ])
        ranked = CriticalityIndex(result).ranked()
        assert [row.facility_id for row in ranked] == [10, 11]

    def test_blast_radius(self):
        result = make_result(links=[
            link(1, 2, 10, 11),
            link(3, 4, 12, None, kind=PeeringKind.PUBLIC,
                 inferred=InferredType.PUBLIC_LOCAL, ixp=7, address=101),
        ])
        index = CriticalityIndex(result)
        radius = index.blast_radius({10, 12})
        assert radius.links_affected == 2
        assert radius.asns_affected == frozenset({1, 2, 3, 4})
        assert radius.types_affected == {
            "cross-connect": 1,
            "public-local": 1,
        }
        assert radius.exchanges_affected == frozenset({7})

    def test_blast_radius_deduplicates_shared_links(self):
        shared = link(1, 2, 10, 11)
        index = CriticalityIndex(make_result(links=[shared]))
        radius = index.blast_radius({10, 11})
        assert radius.links_affected == 1

    def test_metro_queries_require_database(self):
        index = CriticalityIndex(make_result(links=[link(1, 2, 10, None)]))
        with pytest.raises(ValueError):
            index.metro_blast_radius("London")

    def test_metro_blast_radius(self, small_run):
        env, _, result = small_run
        index = CriticalityIndex(result, env.facility_db)
        metro = env.facility_db.metro_of(index.facilities()[0])
        radius = index.metro_blast_radius(metro)
        assert radius.links_affected > 0
        assert radius.asns_affected


class TestProfiles:
    def test_profile_counts(self):
        result = make_result(links=[
            link(1, 2, 10, 11),
            link(3, 1, 12, 13, kind=PeeringKind.PUBLIC,
                 inferred=InferredType.PUBLIC_LOCAL, ixp=7, address=101),
        ])
        profile = build_profile(result, 1)
        assert profile.links == 2
        assert profile.peers == 2
        assert profile.facilities == frozenset({10, 13})
        assert profile.exchanges == frozenset({7})
        assert profile.public_fraction == pytest.approx(0.5)
        assert profile.private_fraction == pytest.approx(0.5)

    def test_profile_empty(self):
        profile = build_profile(make_result(), 42)
        assert profile.links == 0
        assert profile.public_fraction == 0.0

    def test_unknown_types_excluded_from_fractions(self):
        result = make_result(links=[
            link(1, 2, 10, None, inferred=InferredType.UNKNOWN),
            link(1, 3, 10, None, kind=PeeringKind.PUBLIC,
                 inferred=InferredType.PUBLIC_LOCAL, ixp=7, address=101),
        ])
        profile = build_profile(result, 1)
        assert profile.public_fraction == pytest.approx(1.0)

    def test_cdn_vs_tier1_profiles_from_real_run(self, small_run):
        env, _, result = small_run
        profiles = build_profiles(result, env.target_asns, env.facility_db)
        cdn_fracs = [
            p.public_fraction
            for asn, p in profiles.items()
            if env.topology.ases[asn].role is ASRole.CONTENT and p.links
        ]
        tier1_fracs = [
            p.public_fraction
            for asn, p in profiles.items()
            if env.topology.ases[asn].role is ASRole.TIER1 and p.links
        ]
        assert cdn_fracs and tier1_fracs
        assert sum(cdn_fracs) / len(cdn_fracs) > sum(tier1_fracs) / len(tier1_fracs)

    def test_profiles_report_metros(self, small_run):
        env, _, result = small_run
        profile = build_profile(result, env.target_asns[0], env.facility_db)
        if profile.facilities:
            assert profile.metros


class TestMapDiff:
    def _result_with(self, pins):
        interfaces = {}
        for address, facility in pins.items():
            state = InterfaceState(address=address)
            state.candidates = {facility}
            interfaces[address] = state
        return make_result(interfaces=interfaces)

    def test_identical_runs(self):
        a = self._result_with({1: 10, 2: 11})
        diff = diff_results(a, self._result_with({1: 10, 2: 11}))
        assert diff.agreement_rate == 1.0
        assert diff.churn == 0

    def test_changed_and_lost_and_gained(self):
        a = self._result_with({1: 10, 2: 11, 3: 12})
        b = self._result_with({1: 10, 2: 99, 4: 13})
        diff = diff_results(a, b)
        assert diff.agreeing == frozenset({1})
        assert diff.changed == {2: (11, 99)}
        assert diff.lost == frozenset({3})
        assert diff.gained == frozenset({4})
        assert diff.agreement_rate == pytest.approx(0.5)
        assert diff.churn == 3
        assert diff.summary()["changed"] == 1

    def test_empty_runs(self):
        diff = diff_results(make_result(), make_result())
        assert diff.agreement_rate == 1.0

    def test_rerun_agreement_high(self, small_run):
        """Two passive replays over the same corpus agree strongly."""
        env, corpus, _ = small_run
        first = env.run_cfs(
            clone_corpus(corpus), with_followups=False, seed_offset=600
        )
        second = env.run_cfs(
            clone_corpus(corpus), with_followups=False, seed_offset=601
        )
        diff = diff_results(first, second)
        assert diff.agreement_rate > 0.95
