"""Disruption-inference tests: diff algebra and detector dynamics.

The inference package is duck-typed over the snapshot surface, so
these tests drive it with tiny hand-built snapshots — no pipeline run
needed — and assert the three contracts: the identical-snapshot fast
path allocates nothing, diffs compose associatively across epochs, and
the detector debounces, localises, and stays quiet under uniform
measurement-fault depression.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest

from repro.inference.disruption import (
    EMPTY_DIFF,
    DisruptionDetector,
    DisruptionPolicy,
    diff_maps,
    facility_endpoint_counts,
)


@dataclass(frozen=True)
class FakeLink:
    kind: str
    near_address: int
    near_asn: int
    far_asn: int
    ixp_id: int | None
    far_address: int | None
    near_facility: int | None
    far_facility: int | None


@dataclass(frozen=True)
class FakeSnapshot:
    epoch: int
    links: tuple[FakeLink, ...]
    facility_tenants: dict[int, tuple[int, ...]] = field(default_factory=dict)

    @property
    def fingerprint(self) -> str:
        return f"fp:{hash((self.links, tuple(sorted(self.facility_tenants.items()))))}"


def snap(epoch: int, counts: dict[int, int], tenants=None) -> FakeSnapshot:
    """A snapshot with ``counts[f]`` link endpoints pinned at facility
    ``f`` (endpoint *i* at facility *f* is the same link object across
    epochs, so shrinking a count models losing specific links)."""
    links = tuple(
        FakeLink(
            kind="private",
            near_address=facility * 1000 + i,
            near_asn=10,
            far_asn=20,
            ixp_id=None,
            far_address=None,
            near_facility=facility,
            far_facility=None,
        )
        for facility in sorted(counts)
        for i in range(counts[facility])
    )
    return FakeSnapshot(epoch=epoch, links=links, facility_tenants=tenants or {})


class TestDiffMaps:
    def test_identical_snapshots_share_empty_diff(self):
        a = snap(0, {1: 4, 2: 6})
        b = snap(1, {1: 4, 2: 6})
        diff = diff_maps(a, b)
        assert diff.is_empty
        # The fast path hands out the one shared mapping on all four
        # sides — zero per-call allocations for the common quiet epoch.
        assert diff.links_lost is EMPTY_DIFF
        assert diff.links_gained is EMPTY_DIFF
        assert diff.tenants_lost is EMPTY_DIFF
        assert diff.tenants_gained is EMPTY_DIFF

    def test_loss_localised_to_facility(self):
        diff = diff_maps(snap(0, {1: 4, 2: 6}), snap(1, {1: 1, 2: 6}))
        # The lost links' far endpoints were unpinned, so the None
        # bucket loses their mirror images alongside facility 1.
        assert diff.lost_counts() == {1: 3, None: 3}
        assert diff.gained_counts() == {}

    def test_disjoint_facility_sets(self):
        diff = diff_maps(snap(0, {1: 3}), snap(1, {2: 5}))
        assert diff.lost_counts() == {1: 3, None: 3}
        assert diff.gained_counts() == {2: 5, None: 5}

    def test_tenant_moves(self):
        a = snap(0, {1: 3}, tenants={1: (10, 20)})
        b = snap(1, {1: 3}, tenants={1: (20, 30)})
        diff = diff_maps(a, b)
        assert diff.tenants_lost == {1: frozenset({10})}
        assert diff.tenants_gained == {1: frozenset({30})}

    def test_compose_matches_direct_diff(self):
        a = snap(0, {1: 4, 2: 6, 3: 2})
        b = snap(1, {1: 1, 2: 6, 3: 4})
        c = snap(2, {1: 4, 2: 3, 3: 4})
        composed = diff_maps(a, b).compose(diff_maps(b, c))
        direct = diff_maps(a, c)
        assert composed.links_lost == direct.links_lost
        assert composed.links_gained == direct.links_gained
        assert composed.from_epoch == 0 and composed.to_epoch == 2

    def test_compose_associative(self):
        a = snap(0, {1: 4, 2: 6})
        b = snap(1, {1: 0, 2: 7})
        c = snap(2, {1: 2, 2: 7})
        d = snap(3, {1: 4, 2: 5})
        ab, bc, cd = diff_maps(a, b), diff_maps(b, c), diff_maps(c, d)
        left = ab.compose(bc).compose(cd)
        right = ab.compose(bc.compose(cd))
        assert left.links_lost == right.links_lost
        assert left.links_gained == right.links_gained

    def test_compose_rejects_broken_chain(self):
        a, b = snap(0, {1: 4}), snap(1, {1: 2})
        c, d = snap(2, {1: 9}), snap(3, {1: 1})
        with pytest.raises(ValueError):
            diff_maps(a, b).compose(diff_maps(c, d))

    def test_endpoint_counts_exclude_unpinned(self):
        counts = facility_endpoint_counts(snap(0, {1: 4, 2: 6}))
        assert counts == {1: 4, 2: 6}


class TestDetector:
    BASE = {1: 20, 2: 20, 3: 20}

    def observe(self, detector, snapshot, previous=None, health=None):
        diff = diff_maps(previous, snapshot) if previous is not None else None
        return detector.observe(snapshot, diff=diff, data_health=health)

    def test_first_observation_never_alarms(self):
        detector = DisruptionDetector()
        assert self.observe(detector, snap(0, {1: 0, 2: 0})) == []
        assert detector.assessment == "stable"

    def test_debounce_then_alarm_then_hysteresis_clear(self):
        detector = DisruptionDetector()
        s0 = snap(0, self.BASE)
        self.observe(detector, s0)
        # Facility 1 craters; confirm_epochs=2 means the first suspect
        # epoch must stay silent.
        s1 = snap(1, {1: 0, 2: 20, 3: 20})
        assert self.observe(detector, s1, s0) == []
        s2 = snap(2, {1: 0, 2: 20, 3: 20})
        reports = self.observe(detector, s2, s1)
        assert [r.kind for r in reports] == ["alarm"]
        assert reports[0].facility_id == 1
        assert detector.alarmed_facilities() == (1,)
        assert detector.assessment == "topology-change"
        # Recovery: one good epoch is not enough (clear_epochs=2).
        s3 = snap(3, self.BASE)
        assert self.observe(detector, s3, s2) == []
        s4 = snap(4, self.BASE)
        reports = self.observe(detector, s4, s3)
        assert [r.kind for r in reports] == ["clear"]
        assert detector.alarmed_facilities() == ()
        assert detector.assessment == "stable"

    def test_persistent_outage_alarms_through_empty_diffs(self):
        # A facility that goes down and STAYS down produces identical
        # successive snapshots — the empty-diff fast path must not
        # suppress scoring or the alarm never confirms.
        detector = DisruptionDetector()
        s0 = snap(0, self.BASE)
        self.observe(detector, s0)
        down = {1: 0, 2: 20, 3: 20}
        s1, s2, s3 = snap(1, down), snap(2, down), snap(3, down)
        assert self.observe(detector, s1, s0) == []
        assert diff_maps(s1, s2).is_empty
        reports = self.observe(detector, s2, s1)
        assert [r.kind for r in reports] == ["alarm"]
        assert self.observe(detector, s3, s2) == []

    def test_quiet_under_uniform_depression(self):
        # Measurement faults depress every facility equally; the
        # global-loss subtraction must keep all facilities unsuspected.
        detector = DisruptionDetector()
        self.observe(detector, snap(0, self.BASE))
        health = {"ok_fraction": 0.6}
        for epoch in range(1, 5):
            faded = {facility: 8 for facility in self.BASE}
            reports = detector.observe(snap(epoch, faded), data_health=health)
            assert reports == []
        assert detector.assessment == "measurement-fault"
        assert detector.status()["fault_pressure"] == pytest.approx(0.4)

    def test_fault_pressure_raises_the_bar(self):
        # A borderline local loss that would alarm on clean inputs is
        # held back when the snapshot reports degraded data.
        policy = DisruptionPolicy(confirm_epochs=1, fault_margin=0.3)
        clean = DisruptionDetector(policy=policy)
        faulty = DisruptionDetector(policy=policy)
        s0 = snap(0, self.BASE)
        self.observe(clean, s0)
        self.observe(faulty, s0)
        borderline = snap(1, {1: 2, 2: 20, 3: 20})
        assert [r.kind for r in self.observe(clean, borderline, s0)] == ["alarm"]
        assert self.observe(
            faulty, borderline, s0, health={"ok_fraction": 0.5}
        ) == []

    def test_tiny_facilities_never_score(self):
        policy = DisruptionPolicy(confirm_epochs=1)
        detector = DisruptionDetector(policy=policy)
        base = {1: 2, 2: 20}
        self.observe(detector, snap(0, base))
        # Facility 1 (baseline 2 < min_links 3) empties out: no alarm.
        reports = self.observe(detector, snap(1, {1: 0, 2: 20}))
        assert reports == []

    def test_baseline_learns_growth_immediately(self):
        policy = DisruptionPolicy(confirm_epochs=1)
        detector = DisruptionDetector(policy=policy)
        self.observe(detector, snap(0, {1: 10, 2: 50, 3: 50}))
        self.observe(detector, snap(1, {1: 40, 2: 50, 3: 50}))
        # Dropping back to the OLD normal must now look like a loss
        # against the grown baseline.
        reports = self.observe(detector, snap(2, {1: 10, 2: 50, 3: 50}))
        assert [r.kind for r in reports] == ["alarm"]

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            DisruptionPolicy(loss_threshold=0.0)
        with pytest.raises(ValueError):
            DisruptionPolicy(clear_threshold=0.9)
        with pytest.raises(ValueError):
            DisruptionPolicy(confirm_epochs=0)
