"""Export and CLI tests."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.export import (
    dumps_result,
    export_result,
    export_topology_summary,
    interface_record,
    link_record,
)


class TestExport:
    def test_export_result_schema(self, small_run):
        env, _, result = small_run
        document = export_result(result, env.facility_db)
        assert document["schema"] == "repro/cfs-result/1"
        assert document["stats"]["interfaces_seen"] == result.peering_interfaces_seen
        assert len(document["interfaces"]) == len(result.interfaces)
        assert len(document["links"]) == len(result.links)
        assert len(document["history"]) == result.iterations_run

    def test_interface_records_well_formed(self, small_run):
        env, _, result = small_run
        for state in list(result.interfaces.values())[:50]:
            record = interface_record(state, env.facility_db)
            assert record["address"].count(".") == 3
            assert record["status"] in (
                "resolved",
                "unresolved-local",
                "unresolved-remote",
                "missing-data",
            )
            if record["facility"] is not None:
                assert record["facility"] in record["candidates"]

    def test_link_records_well_formed(self, small_run):
        _, _, result = small_run
        for link in result.links[:50]:
            record = link_record(link)
            assert record["kind"] in ("public", "private")
            assert record["near"]["asn"] != record["far"]["asn"]

    def test_dumps_is_valid_json(self, small_run):
        env, _, result = small_run
        document = json.loads(dumps_result(result, env.facility_db))
        assert document["schema"] == "repro/cfs-result/1"

    def test_topology_summary(self, small_env):
        document = export_topology_summary(small_env.topology)
        assert document["counts"]["facilities"] == len(
            small_env.topology.facilities
        )
        assert len(document["facilities"]) == document["counts"]["facilities"]
        for row in document["ixps"]:
            assert row["prefixes"]
        json.dumps(document)  # must be serialisable


class TestCli:
    def test_parser_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_summary_command(self, capsys):
        code = main(["--seed", "5", "--scale", "small", "summary"])
        assert code == 0
        out = capsys.readouterr().out
        assert "generated Internet" in out
        assert "ripe-atlas" in out

    def test_experiment_table1(self, capsys):
        code = main(["--seed", "5", "experiment", "table1"])
        assert code == 0
        assert "Table 1" in capsys.readouterr().out

    def test_experiment_fig3(self, capsys):
        code = main(["--seed", "5", "experiment", "fig3"])
        assert code == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_run_with_json_export(self, tmp_path, capsys):
        out_file = tmp_path / "map.json"
        code = main(["--seed", "5", "run", "--json", str(out_file)])
        assert code == 0
        assert "resolved" in capsys.readouterr().out
        document = json.loads(out_file.read_text())
        assert document["schema"] == "repro/cfs-result/1"
        assert document["stats"]["resolved"] > 0

    def test_unknown_scale_clean_error(self, capsys):
        code = main(["--scale", "galactic", "summary"])
        assert code == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        lines = [line for line in captured.err.splitlines() if line]
        assert len(lines) == 1
        assert lines[0].startswith("error: ")
        assert "galactic" in lines[0]

    def test_negative_seed_clean_error(self, capsys):
        code = main(["--seed", "-3", "summary"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "seed" in err

    def test_bad_chaos_intensities_clean_error(self, capsys):
        code = main(["chaos", "--intensities", "0,banana"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")


class TestCharts:
    def test_format_bars_scaling(self):
        from repro.experiments.formatting import format_bars

        text = format_bars([("a", 10.0), ("b", 5.0), ("c", 0.0)], width=20)
        lines = text.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10
        assert lines[2].count("#") == 0

    def test_format_bars_empty(self):
        from repro.experiments.formatting import format_bars

        assert format_bars([], title="t") == "t"

    def test_format_bars_clamp_and_floor(self):
        """Regression: bar widths floor (with a 1-char minimum) and
        clamp to ``width`` — ``round()`` used to promote near-peak
        values to a full-width bar, hiding which entry is the peak."""
        from repro.experiments.formatting import format_bars

        cases = [
            # (value, peak, width) -> expected filled characters
            (10.0, 10.0, 20, 20),  # peak spans the full width
            (9.9, 10.0, 20, 19),   # near-peak must NOT round up to 20
            (39.5, 40.0, 40, 39),  # round-half would have hit 40
            (0.01, 10.0, 20, 1),   # tiny non-zero stays visible
            (4.9, 10.0, 20, 9),    # floors, never rounds up
            (0.0, 10.0, 20, 0),    # zero renders empty
            (-3.0, 10.0, 20, 0),   # negative renders empty
        ]
        for value, peak, width, expected in cases:
            text = format_bars(
                [("peak", peak), ("val", value)], width=width
            )
            filled = text.splitlines()[1].count("#")
            assert filled == expected, (value, peak, width, filled)
            assert filled <= width

    def test_fig3_chart(self, small_env):
        from repro.experiments import run_fig3

        chart = run_fig3(small_env.topology).format_chart(limit=5)
        assert "#" in chart and "Figure 3" in chart

    def test_fig9_chart(self, small_run):
        from repro.experiments import run_fig9

        env, _, result = small_run
        chart = run_fig9(env, result).format_chart()
        assert "#" in chart


class TestDotExport:
    def test_facility_graph_syntax(self, small_run):
        from repro.export import export_facility_graph_dot

        env, _, result = small_run
        dot = export_facility_graph_dot(result, env.facility_db)
        assert dot.startswith("graph inferred_facility_map {")
        assert dot.endswith("}")
        assert " -- " in dot  # at least one inter-facility edge
        assert "label=" in dot

    def test_min_links_filters_edges(self, small_run):
        from repro.export import export_facility_graph_dot

        env, _, result = small_run
        loose = export_facility_graph_dot(result, env.facility_db, min_links=1)
        strict = export_facility_graph_dot(result, env.facility_db, min_links=50)
        assert loose.count(" -- ") >= strict.count(" -- ")

    def test_empty_result_graph(self):
        from repro.core.types import CfsResult
        from repro.export import export_facility_graph_dot

        empty = CfsResult(
            interfaces={},
            links=[],
            history=[],
            iterations_run=0,
            followup_traces=0,
            peering_interfaces_seen=0,
        )
        dot = export_facility_graph_dot(empty)
        assert "graph inferred_facility_map" in dot
        assert " -- " not in dot
