#!/usr/bin/env bash
# The local gate: everything the driver checks, in one command.
#
#   scripts/check.sh          # tier-1 tests + lint self-gate + sanitizer smoke
#   scripts/check.sh --fast   # skip the sanitizer smoke (pure static checks)
#
# Exits non-zero on the first failing stage.

set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

fast=0
if [[ "${1:-}" == "--fast" ]]; then
    fast=1
fi

echo "== tier-1 test suite =="
python -m pytest -x -q

echo
echo "== reprolint self-gate (flow rules on) =="
python -m repro lint

if [[ "$fast" == "0" ]]; then
    echo
    echo "== reprosan sanitizer smoke (small pipeline, armed) =="
    python - <<'EOF'
import dataclasses
import sys

from repro import sanitize
from repro.core.pipeline import PipelineConfig, run_pipeline

run_pipeline(
    dataclasses.replace(PipelineConfig.small(seed=0), sanitize=True)
)
violations = sanitize.violations()
if violations:
    for entry in violations:
        print(f"sanitizer: {entry['kind']}: {entry['detail']}")
    sys.exit(1)
print("sanitizer: clean (0 violations)")
EOF
fi

echo
echo "check.sh: all gates passed"
