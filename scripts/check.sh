#!/usr/bin/env bash
# The local gate: everything the driver checks, in one command.
#
#   scripts/check.sh          # tier-1 tests + lint + sanitizer + speedup gate
#   scripts/check.sh --fast   # skip the sanitizer smoke and the speedup gate
#
# Exits non-zero on the first failing stage.

set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

fast=0
if [[ "${1:-}" == "--fast" ]]; then
    fast=1
fi

echo "== tier-1 test suite =="
python -m pytest -x -q

echo
echo "== reprolint self-gate (flow rules on) =="
python -m repro lint

if [[ "$fast" == "0" ]]; then
    echo
    echo "== reprosan sanitizer smoke (small pipeline, armed) =="
    python - <<'EOF'
import dataclasses
import sys

from repro import sanitize
from repro.core.pipeline import PipelineConfig, run_pipeline

run_pipeline(
    dataclasses.replace(PipelineConfig.small(seed=0), sanitize=True)
)
violations = sanitize.violations()
if violations:
    for entry in violations:
        print(f"sanitizer: {entry['kind']}: {entry['detail']}")
    sys.exit(1)
print("sanitizer: clean (0 violations)")
EOF

    echo
    echo "== outage-detection smoke (seeded churn profile, small scale) =="
    python - <<'EOF'
import sys

from repro.serve.outage import DEFAULT_EPOCHS, DEFAULT_SEED, run_outage

report = run_outage(seed=DEFAULT_SEED, scale="small", epochs=DEFAULT_EPOCHS)
print(report.format())
churned = report.point(1.0, 0.0)   # full churn, clean measurements
faulty = report.point(0.0, 1.0)    # no churn, moderate measurement faults
failures = []
if churned is None or faulty is None:
    failures.append("sweep missing a gate cell")
else:
    if churned.power_losses < 1 or churned.detected < 1:
        failures.append(
            f"no power loss detected (drawn={churned.power_losses} "
            f"detected={churned.detected})"
        )
    if churned.false_alarms != 0:
        failures.append(f"false alarms under churn: {churned.false_alarms}")
    if churned.precision is None or churned.precision < 0.9:
        failures.append(f"precision {churned.precision} < 0.9")
    if churned.recall is None or churned.recall < 0.8:
        failures.append(f"recall {churned.recall} < 0.8")
    if faulty.alarms != 0:
        failures.append(
            f"detector cried wolf at pure measurement faults: "
            f"{faulty.alarms} alarms"
        )
for failure in failures:
    print(f"outage smoke: FAILED — {failure}")
if failures:
    sys.exit(1)
print("outage smoke: detection gates passed")
EOF

    echo
    echo "== parallel speedup gate (workers=2 vs serial, default scale) =="
    python - <<'EOF'
import os
import sys
import time

from repro.core.pipeline import PipelineConfig, build_environment

cpus = os.cpu_count() or 1
if cpus < 2:
    print(
        f"speedup gate: skipped — cpu_count={cpus} < 2, the pool can only "
        "time-slice one core (identity is still gated by the test suite)"
    )
    sys.exit(0)

seconds = {}
for workers in (1, 2):
    env = build_environment(
        config=PipelineConfig.for_scale("default", seed=0, workers=workers)
    )
    started = time.perf_counter()
    corpus = env.run_campaign()
    env.run_cfs(corpus)
    seconds[workers] = time.perf_counter() - started

speedup = seconds[1] / max(seconds[2], 1e-9)
print(
    f"speedup gate: serial={seconds[1]:.2f}s workers2={seconds[2]:.2f}s "
    f"speedup={speedup:.2f}x (floor 1.2x, {cpus} cpus)"
)
if speedup < 1.2:
    print("speedup gate: FAILED — workers=2 must beat serial by >= 1.2x")
    sys.exit(1)
EOF
fi

echo
echo "check.sh: all gates passed"
