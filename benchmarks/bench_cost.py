"""Section 3.2 benchmark: per-platform probing cost for one target.

Shape: the rate-limited looking glasses cost far more simulated time
per target than the concurrent Atlas campaign — the asymmetry that
makes CFS reserve them for targeted follow-ups.
"""

from __future__ import annotations

from repro.api import run_measurement_cost

from _report import record_report


def test_measurement_cost(benchmark, bench_env):
    cost = benchmark.pedantic(
        run_measurement_cost, args=(bench_env,), rounds=1, iterations=1
    )
    assert cost.lg_to_atlas_cost_ratio > 2.0
    record_report("Section 3.2 (per-target probing cost)", cost.format())
    benchmark.extra_info["lg_to_atlas_ratio"] = round(
        cost.lg_to_atlas_cost_ratio, 1
    )
