"""Report queue shared between benchmark modules and the conftest hook."""

from __future__ import annotations

_REPORTS: list[str] = []


def record_report(title: str, text: str) -> None:
    """Queue a rendered experiment report for the terminal summary."""
    _REPORTS.append(f"\n===== {title} =====\n{text}")


def all_reports() -> list[str]:
    return list(_REPORTS)
