"""Outage-detection benchmark: churn rate × fault intensity.

The temporal stream makes the disruption detector's promises
measurable, and each one gets a gate:

* **recall** — at full churn with clean measurements, at least 80% of
  the injected facility power losses raise a localized alarm inside
  the event window (plus the detector's own confirmation latency);
* **precision** — at least 90% of those alarms are explained by a real
  disruption event at that facility;
* **quiet under faults** — with zero churn and the moderate
  measurement-fault profile at full intensity, the detector raises
  *no* alarms at all: uniform measurement loss must not read as a
  facility outage;
* **events exercised** — the seeded profile really draws and detects
  at least one power loss, so the recall gate measures detection
  rather than an empty event log.

Standalone smoke mode (no pytest-benchmark needed)::

    python benchmarks/bench_outage.py --quick

writes ``BENCH_outage.json`` next to the repository root.  The quick
entry is also folded into ``bench_pipeline.py --quick``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

if __name__ == "__main__":
    # Standalone smoke mode runs without an installed package.
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.api import PipelineConfig
from repro.serve.outage import DEFAULT_EPOCHS, DEFAULT_SEED, run_outage

#: Gate thresholds for the clean-measurement, full-churn cell.
MIN_PRECISION = 0.9
MIN_RECALL = 0.8


def quick_outage(
    output: str,
    scale: str = "small",
    seed: int = DEFAULT_SEED,
    epochs: int = DEFAULT_EPOCHS,
) -> int:
    """Run the outage sweep and write ``BENCH_outage.json``.

    Returns a process exit code.  The gates are the acceptance
    contract: precision >= 0.9 and recall >= 0.8 on injected facility
    power losses at moderate churn, at least one loss actually drawn
    and detected, and zero alarms under pure measurement faults.
    """
    report = run_outage(seed=seed, scale=scale, epochs=epochs)
    print(report.format())

    churned = report.point(1.0, 0.0)
    faulty = report.point(0.0, 1.0)
    gates: dict[str, bool] = {}
    if churned is None or faulty is None:
        gates["cells_present"] = False
    else:
        gates["cells_present"] = True
        gates["losses_drawn"] = churned.power_losses >= 1
        gates["losses_detected"] = churned.detected >= 1
        gates["precision"] = (
            churned.precision is not None
            and churned.precision >= MIN_PRECISION
        )
        gates["recall"] = (
            churned.recall is not None and churned.recall >= MIN_RECALL
        )
        gates["quiet_under_faults"] = faulty.alarms == 0
    passed = all(gates.values())
    for name, ok in sorted(gates.items()):
        if not ok:
            print(f"outage gate failed: {name}")

    payload = {
        "schema": "repro/bench-outage/1",
        "passed": passed,
        "gates": gates,
        "report": report.as_dict(),
    }
    path = Path(output)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"report written to {path}")
    return 0 if passed else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run the outage sweep and write BENCH_outage.json",
    )
    parser.add_argument(
        "--scale",
        choices=PipelineConfig.SCALES,
        default="small",
        help="pipeline scale for the sweep",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        help="master seed (the default deterministically draws several "
        "scorable power losses)",
    )
    parser.add_argument(
        "--epochs",
        type=int,
        default=DEFAULT_EPOCHS,
        help="epochs per sweep cell",
    )
    parser.add_argument(
        "--output",
        default="BENCH_outage.json",
        help="where to write the sweep report",
    )
    args = parser.parse_args(argv)
    if not args.quick:
        parser.error("standalone mode requires --quick")
    return quick_outage(
        args.output,
        scale=args.scale,
        seed=args.seed,
        epochs=args.epochs,
    )


if __name__ == "__main__":
    sys.exit(main())
