"""Section 8 benchmark: incremental map construction.

Shape: the pinned-link count grows monotonically with every study
target added, and growth is concave (early targets contribute most,
because their traceroutes also cross other networks' peerings).
"""

from __future__ import annotations

from repro.api import run_coverage_growth

from _report import record_report


def test_coverage_growth(benchmark, bench_env):
    result = benchmark.pedantic(
        run_coverage_growth,
        args=(bench_env,),
        kwargs={"max_targets": 6},
        rounds=1,
        iterations=1,
    )
    assert len(result.points) == 6
    assert result.is_monotone()
    first_gain = result.points[0].links_pinned
    last_gain = (
        result.points[-1].links_pinned - result.points[-2].links_pinned
    )
    assert first_gain > last_gain  # concave growth
    record_report("Section 8 (incremental map construction)", result.format())
    benchmark.extra_info["final_links_pinned"] = result.points[-1].links_pinned
