"""Table 1 benchmark: measurement-platform population summary.

Regenerates the paper's Table 1 (vantage points / ASNs / countries per
platform) and asserts its shape: Atlas dominates, archives are small.
"""

from __future__ import annotations

from repro.api import run_table1

from _report import record_report


def test_table1(benchmark, bench_env):
    result = benchmark.pedantic(
        run_table1, args=(bench_env,), rounds=3, iterations=1
    )
    assert result.shape_holds()
    record_report("Table 1 (measurement platforms)", result.format())
    benchmark.extra_info["atlas_vps"] = result.row("ripe-atlas").vantage_points
    benchmark.extra_info["total_asns"] = result.row("total-unique").asns
