"""Chaos benchmarks: fault-intensity sweeps plus the zero-fault check.

Two things are measured:

* the **zero-fault identity** — a pipeline with ``FaultPlan.zero()``
  installed must produce byte-identical inferences to one with no
  injector at all (the property the whole injector design hangs on);
* the **degradation sweep** — the moderate fault profile scaled across
  intensities, reporting resolution/accuracy per point so regressions
  in graceful degradation are visible.

Standalone smoke mode (no pytest-benchmark needed)::

    python benchmarks/bench_chaos.py --quick

writes ``BENCH_chaos.json`` next to the repository root.  The quick
entry is also folded into ``bench_pipeline.py --quick``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __name__ == "__main__":
    # Standalone smoke mode runs without an installed package.
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.api import FaultPlan, PipelineConfig, run_pipeline
from repro.api import comparable_export, run_chaos

QUICK_SEEDS = (0, 1, 2)
QUICK_INTENSITIES = (0.0, 0.5, 1.0)


def _zero_fault_identity(seed: int, scale: str) -> bool:
    """True when a zero plan run matches a no-injector run byte for byte."""
    plain = run_pipeline(config=PipelineConfig.for_scale(scale, seed=seed))
    injected = run_pipeline(
        config=PipelineConfig.for_scale(scale, seed=seed),
        faults=FaultPlan.zero(),
    )
    return comparable_export(
        plain.environment, plain.cfs_result
    ) == comparable_export(injected.environment, injected.cfs_result)


def quick_chaos(
    output: str,
    scale: str = "small",
    seed: int = 0,
    intensities: tuple[float, ...] = QUICK_INTENSITIES,
) -> int:
    """Identity check + one sweep; writes ``BENCH_chaos.json``.

    Returns a process exit code (non-zero when the zero-fault identity
    breaks or a sweep point fails to complete).
    """
    started = time.perf_counter()
    identical = _zero_fault_identity(seed, scale)
    print(f"zero-fault identity (seed {seed}): {'ok' if identical else 'BROKEN'}")
    # workers=2 so the moderate profile's worker_crash / worker_hang
    # rates actually reach a pool and the supervisor columns are live
    # (a 1s deadline keeps injected hangs from stalling the sweep).
    report = run_chaos(
        seed=seed,
        scale=scale,
        intensities=intensities,
        workers=2,
        shard_timeout_s=1.0,
    )
    print(report.format())
    elapsed = time.perf_counter() - started
    payload = {
        "schema": "repro/bench-chaos/1",
        "scale": scale,
        "seed": seed,
        "zero_fault_identical": identical,
        "elapsed_seconds": round(elapsed, 3),
        **report.as_dict(),
    }
    path = Path(output)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"report written to {path}")
    completed = all(point.completed for point in report.points)
    return 0 if identical and completed else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run the chaos smoke and write BENCH_chaos.json",
    )
    parser.add_argument(
        "--scale",
        choices=PipelineConfig.SCALES,
        default="small",
        help="pipeline scale for the smoke run",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--output",
        default="BENCH_chaos.json",
        help="where to write the smoke report",
    )
    args = parser.parse_args(argv)
    if not args.quick:
        parser.error("standalone mode requires --quick")
    return quick_chaos(args.output, scale=args.scale, seed=args.seed)


if __name__ == "__main__":
    sys.exit(main())
