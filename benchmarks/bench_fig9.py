"""Figure 9 benchmark: validation accuracy by source and link type.

Shape: overall validated accuracy around or above 90% (the paper's
headline), with every populated cell comfortably above chance.
"""

from __future__ import annotations

from repro.api import run_fig9

from _report import record_report


def test_fig9(benchmark, bench_run):
    env, _, result = bench_run
    fig9 = benchmark.pedantic(
        run_fig9, args=(env, result), rounds=1, iterations=1
    )
    assert fig9.overall_accuracy() > 0.85
    populated = [cell for cell in fig9.cells if cell.total >= 10]
    assert len(populated) >= 4
    for cell in populated:
        assert cell.accuracy > 0.6, (cell.source, cell.link_type)
    sources = {cell.source for cell in fig9.cells}
    assert sources >= {
        "bgp-communities",
        "dns-records",
        "ixp-websites",
    }
    record_report("Figure 9 (validation accuracy)", fig9.format())
    benchmark.extra_info["overall_accuracy"] = round(fig9.overall_accuracy(), 3)
