"""Ablation benchmark: what each CFS ingredient contributes.

Expected directions (DESIGN.md section 5):

* removing follow-up probing (Step 4) costs the most completeness;
* removing alias propagation (Step 3) costs resolution;
* removing IP-to-ASN repair costs accuracy;
* removing the proximity heuristic costs far-end yield only.
"""

from __future__ import annotations

from repro.api import run_ablation

from _report import record_report


def test_ablation(benchmark, bench_run):
    env, _, _ = bench_run
    # A fresh initial-campaign corpus: the cached study corpus already
    # contains follow-up traces, which would dilute the no-followups
    # variant (it would inherit the full run's probing for free).
    corpus = env.run_campaign(seed_offset=40)

    result = benchmark.pedantic(
        run_ablation, args=(env, corpus), rounds=1, iterations=1
    )
    full = result.row("full")
    no_alias = result.row("no-alias-step")
    no_repair = result.row("no-asn-repair")
    no_followups = result.row("no-followups")
    no_proximity = result.row("no-proximity")
    random_targets = result.row("random-targets")

    assert full.resolved_fraction > no_followups.resolved_fraction
    assert full.resolved_fraction >= no_alias.resolved_fraction - 0.02
    assert full.facility_accuracy >= no_repair.facility_accuracy - 0.02
    assert full.far_ends_resolved > no_proximity.far_ends_resolved
    # The smallest-overlap rule must not lose to overlap-blind targeting.
    assert full.resolved_fraction >= random_targets.resolved_fraction - 0.02

    record_report("Ablations (CFS ingredients)", result.format())
    benchmark.extra_info["full_resolved"] = round(full.resolved_fraction, 3)
    benchmark.extra_info["no_followups_resolved"] = round(
        no_followups.resolved_fraction, 3
    )
