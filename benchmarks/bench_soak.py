"""Chaos soak benchmark: availability under service-layer faults.

The self-healing service makes four promises worth numbers:

* **availability** — query threads hammering the live engine never see
  an error while epochs fail, quarantine, and publishes roll back;
* **incidents exercised** — the seeded default profile really fires at
  least one epoch quarantine *and* one snapshot rollback, so the smoke
  measures recovery rather than a lucky fault-free run;
* **staleness** — how many epochs behind the served snapshot ran,
  sampled per query;
* **identity** — the final converged snapshot fingerprints identical
  to a fault-free batch run of the same seed (quarantined epochs are
  drained and re-folded, so self-healing costs no correctness).

Standalone smoke mode (no pytest-benchmark needed)::

    python benchmarks/bench_soak.py --quick

writes ``BENCH_soak.json`` next to the repository root.  The quick
entry is also folded into ``bench_pipeline.py --quick``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

if __name__ == "__main__":
    # Standalone smoke mode runs without an installed package.
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.api import PipelineConfig
from repro.serve.soak import DEFAULT_EPOCHS, DEFAULT_SEED, run_soak

QUICK_THREADS = 4


def quick_soak(
    output: str,
    scale: str = "small",
    seed: int = DEFAULT_SEED,
    epochs: int = DEFAULT_EPOCHS,
    threads: int = QUICK_THREADS,
    intensity: float = 1.0,
) -> int:
    """Run the chaos soak and write ``BENCH_soak.json``.

    Returns a process exit code.  The gates are the acceptance
    contract: 100% availability, zero query errors, at least one
    quarantine and one rollback actually exercised, and the final
    fingerprint identical to the fault-free batch map.
    """
    report = run_soak(
        seed=seed,
        scale=scale,
        epochs=epochs,
        threads=threads,
        intensity=intensity,
    )
    print(report.format())

    incidents = report.quarantines >= 1 and report.rollbacks >= 1
    passed = (
        report.ok
        and report.query_errors == 0
        and report.availability == 1.0
        and incidents
        and report.identical is True
    )
    if not incidents:
        print(
            f"soak: faults did not fire (quarantines={report.quarantines} "
            f"rollbacks={report.rollbacks}) — the smoke needs a seed that "
            f"exercises both recovery paths"
        )

    payload = {
        "schema": "repro/bench-soak/1",
        "passed": passed,
        "report": report.as_dict(),
    }
    path = Path(output)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"report written to {path}")
    return 0 if passed else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run the chaos soak and write BENCH_soak.json",
    )
    parser.add_argument(
        "--scale",
        choices=PipelineConfig.SCALES,
        default="small",
        help="pipeline scale for the soak run",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        help="master seed (the default deterministically exercises a "
        "quarantine and a rollback)",
    )
    parser.add_argument(
        "--epochs",
        type=int,
        default=DEFAULT_EPOCHS,
        help="epochs the faulty stream ingests",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=QUICK_THREADS,
        help="query threads hammering the live engine",
    )
    parser.add_argument(
        "--output",
        default="BENCH_soak.json",
        help="where to write the soak report",
    )
    args = parser.parse_args(argv)
    if not args.quick:
        parser.error("standalone mode requires --quick")
    return quick_soak(
        args.output,
        scale=args.scale,
        seed=args.seed,
        epochs=args.epochs,
        threads=args.threads,
    )


if __name__ == "__main__":
    sys.exit(main())
