"""Figure 2 benchmark: NOC-website facilities vs PeeringDB coverage.

Shape assertions mirror the paper: a sizeable share of the checked ASes
have missing PeeringDB links, some list nothing at all, yet the same
operators publish full lists on their own sites.
"""

from __future__ import annotations

from repro.api import run_fig2

from _report import record_report


def test_fig2(benchmark, bench_env):
    result = benchmark.pedantic(
        run_fig2, args=(bench_env,), rounds=3, iterations=1
    )
    assert result.ases_checked >= 20
    assert result.ases_with_missing_links > 0
    assert result.total_missing_links > result.ases_with_missing_links
    assert result.ases_absent_from_pdb >= 1
    record_report("Figure 2 (NOC sites vs PeeringDB)", result.format())
    benchmark.extra_info["ases_checked"] = result.ases_checked
    benchmark.extra_info["missing_links"] = result.total_missing_links
