"""Section 4.4 benchmark: switch proximity heuristic vs detailed data.

The paper's AMS-IX calibration found the exact facility in 77% of the
decided two-facility cases; ties (same backhaul) are undecidable by
design.  We assert the heuristic clearly beats the 50% coin-flip.
"""

from __future__ import annotations

from repro.api import run_proximity_validation

from _report import record_report


def test_proximity_heuristic(benchmark, bench_run):
    env, _, result = bench_run
    validation = benchmark.pedantic(
        run_proximity_validation, args=(env, result), rounds=1, iterations=1
    )
    assert validation.attempted >= 10
    assert validation.accuracy > 0.55
    record_report("Section 4.4 (switch proximity heuristic)", validation.format())
    benchmark.extra_info["accuracy"] = round(validation.accuracy, 3)
    benchmark.extra_info["decided_cases"] = validation.attempted
    benchmark.extra_info["undecided"] = validation.undecided
