"""End-to-end pipeline benchmarks: environment build, campaign, CFS.

Timed at the small scale so the stages are individually measurable with
multiple rounds; the figure benchmarks exercise the default scale.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import PipelineConfig, build_environment

from _report import record_report


@pytest.fixture(scope="module")
def small_pipeline_env():
    return build_environment(PipelineConfig.small(seed=5))


def test_environment_build(benchmark):
    env = benchmark.pedantic(
        build_environment,
        args=(PipelineConfig.small(seed=6),),
        rounds=3,
        iterations=1,
    )
    assert env.topology.summary()["ases"] > 50


def test_initial_campaign(benchmark, small_pipeline_env):
    corpus = benchmark.pedantic(
        small_pipeline_env.run_campaign,
        kwargs={"seed_offset": 300},
        rounds=3,
        iterations=1,
    )
    assert len(corpus) > 500


def test_cfs_full_run(benchmark, small_pipeline_env):
    env = small_pipeline_env
    corpus = env.run_campaign(seed_offset=301)

    counter = iter(range(1000))

    def run():
        from repro.experiments.context import clone_corpus

        return env.run_cfs(clone_corpus(corpus), seed_offset=310 + next(counter))

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.resolved_fraction() > 0.4
    record_report(
        "End-to-end pipeline (small scale)",
        f"interfaces={result.peering_interfaces_seen} "
        f"resolved_fraction={result.resolved_fraction():.3f} "
        f"iterations={result.iterations_run} "
        f"followup_traces={result.followup_traces}",
    )
