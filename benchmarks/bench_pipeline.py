"""End-to-end pipeline benchmarks: environment build, campaign, CFS.

Timed at the small scale so the stages are individually measurable with
multiple rounds; the figure benchmarks exercise the default scale.  The
CFS benchmarks time both evaluation engines — the incremental dirty-set
engine (default) and the paper-literal full-rescan loop — so the
speedup stays visible in every benchmark run.

Standalone smoke mode (no pytest-benchmark needed)::

    python benchmarks/bench_pipeline.py --quick

runs the engine comparison on a few small seeds plus a columnar-vs-
object extraction smoke, a workers-vs-serial speedup curve (1/2/4
workers, with ``cores_limited`` recorded on single-CPU hosts), a
kill-one-worker-and-recover supervisor smoke, and a checkpoint/resume
smoke, checks the inferences stay byte-identical throughout, and
writes ``BENCH_pipeline.json`` next to the repository root.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

if __name__ == "__main__":
    # Standalone smoke mode runs without an installed package.
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    sys.path.insert(0, str(Path(__file__).resolve().parent))

import pytest

from repro.api import PipelineConfig, build_environment

from _report import record_report


@pytest.fixture(scope="module")
def small_pipeline_env():
    return build_environment(scale="small", seed=5)


def test_environment_build(benchmark):
    env = benchmark.pedantic(
        build_environment,
        kwargs={"scale": "small", "seed": 6},
        rounds=3,
        iterations=1,
    )
    assert env.topology.summary()["ases"] > 50


def test_initial_campaign(benchmark, small_pipeline_env):
    corpus = benchmark.pedantic(
        small_pipeline_env.run_campaign,
        kwargs={"seed_offset": 300},
        rounds=3,
        iterations=1,
    )
    assert len(corpus) > 500


def _timed_cfs(env, corpus, incremental: bool, seed_offset: int):
    from repro.api import clone_corpus

    started = time.perf_counter()
    result = env.run_cfs(
        clone_corpus(corpus),
        cfs_config=env.config.cfs.replace(incremental=incremental),
        seed_offset=seed_offset,
    )
    return time.perf_counter() - started, result


def test_cfs_full_run(benchmark, small_pipeline_env):
    env = small_pipeline_env
    corpus = env.run_campaign(seed_offset=301)

    counter = iter(range(1000))

    def run():
        from repro.api import clone_corpus

        return env.run_cfs(clone_corpus(corpus), seed_offset=310 + next(counter))

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.resolved_fraction() > 0.4
    record_report(
        "End-to-end pipeline (small scale)",
        f"interfaces={result.peering_interfaces_seen} "
        f"resolved_fraction={result.resolved_fraction():.3f} "
        f"iterations={result.iterations_run} "
        f"followup_traces={result.followup_traces}",
    )


def test_cfs_engine_comparison(benchmark, small_pipeline_env):
    """Incremental dirty-set engine vs the full-rescan oracle."""
    env = small_pipeline_env
    corpus = env.run_campaign(seed_offset=302)

    counter = iter(range(1000))

    def run_incremental():
        return _timed_cfs(env, corpus, True, 600 + next(counter))[1]

    result = benchmark.pedantic(run_incremental, rounds=2, iterations=1)
    full_seconds, full_result = _timed_cfs(env, corpus, False, 600 + next(counter))
    metrics = result.metrics
    record_report(
        "CFS engine comparison (small scale)",
        f"full_rescan={full_seconds:.2f}s "
        f"incremental_applied={metrics.counter('cfs.observations_applied')} "
        f"incremental_skipped={metrics.counter('cfs.observations_skipped')} "
        f"full_applied="
        f"{full_result.metrics.counter('cfs.observations_applied')} "
        f"traces_reparsed={metrics.counter('cfs.traces_reparsed')} "
        f"trace_cache_hits={metrics.counter('cfs.trace_cache_hits')}",
    )


# ----------------------------------------------------------------------
# Standalone smoke mode
# ----------------------------------------------------------------------

QUICK_SEEDS = (0, 1, 2)


def _comparable_export(env, result) -> dict:
    from repro.api import export_result

    exported = export_result(result, env.facility_db)
    exported.pop("metrics")
    for record in exported["history"]:
        record.pop("applied")
        record.pop("traces_parsed")
    return exported


def _smoke_seed(seed: int, scale: str) -> dict:
    """Both engines over identical fresh environments at one seed.

    Fresh environments per engine: the IP-ID responder is stateful, so
    a shared one would let the first run perturb the second's probes.
    """
    rows: dict[str, dict] = {}
    exports = {}
    for name, incremental in (("incremental", True), ("full_rescan", False)):
        env = build_environment(config=PipelineConfig.for_scale(scale, seed=seed))
        corpus = env.run_campaign()
        started = time.perf_counter()
        result = env.run_cfs(
            corpus,
            cfs_config=env.config.cfs.replace(incremental=incremental),
        )
        elapsed = time.perf_counter() - started
        metrics = result.metrics
        rows[name] = {
            "cfs_seconds": round(elapsed, 3),
            "iterations": result.iterations_run,
            "observations_applied": metrics.counter("cfs.observations_applied"),
            "traces_parsed": metrics.counter("classify.traces_parsed"),
            "extract_seconds": round(
                metrics.stage_seconds.get("extract", 0.0), 3
            ),
            "constrain_seconds": round(
                metrics.stage_seconds.get("constrain", 0.0), 3
            ),
        }
        exports[name] = _comparable_export(env, result)
    identical = exports["incremental"] == exports["full_rescan"]
    speedup = rows["full_rescan"]["cfs_seconds"] / max(
        rows["incremental"]["cfs_seconds"], 1e-9
    )
    return {
        "seed": seed,
        "identical": identical,
        "speedup": round(speedup, 3),
        **rows,
    }


def _workers_smoke(scale: str) -> dict:
    """Workers-vs-serial speedup curve (1/2/4 workers) at one seed.

    Byte-identity of every width against serial is the gate the smoke
    enforces unconditionally.  The speedup is only meaningful with real
    cores behind the pool — on a single-CPU host the extra forks just
    time-slice one core and the "speedup" measures pure overhead — so
    the row records ``cores_limited: true`` when ``cpu_count < 2`` and
    the speedup assertion (here and in ``scripts/check.sh``) is
    skipped, never the identity one.
    """
    cpu_count = os.cpu_count() or 1
    curve: dict[str, dict] = {}
    serial_export = None
    serial_seconds = 1e-9
    for workers in (1, 2, 4):
        env = build_environment(
            config=PipelineConfig.for_scale(scale, seed=0, workers=workers)
        )
        started = time.perf_counter()
        corpus = env.run_campaign()
        result = env.run_cfs(corpus)
        elapsed = time.perf_counter() - started
        exported = _comparable_export(env, result)
        if workers == 1:
            serial_export = exported
            serial_seconds = max(elapsed, 1e-9)
        name = "serial" if workers == 1 else f"workers{workers}"
        curve[name] = {
            "workers": workers,
            "pipeline_seconds": round(elapsed, 3),
            "identical": exported == serial_export,
            "speedup": round(serial_seconds / max(elapsed, 1e-9), 3),
        }
    return {
        "identical": all(point["identical"] for point in curve.values()),
        "speedup": curve["workers2"]["speedup"],
        "cpu_count": cpu_count,
        "cores_limited": cpu_count < 2,
        **curve,
    }


def _columnar_smoke(scale: str) -> dict:
    """Columnar hot paths vs the dataclass walk, serial, one seed.

    The columnar engine must be byte-identical to the object path (the
    gate); the recorded speedup tracks what the flat-array scan buys on
    top of the incremental engine.
    """
    rows: dict[str, dict] = {}
    exports = {}
    for name, columnar in (("columnar", True), ("objects", False)):
        env = build_environment(config=PipelineConfig.for_scale(scale, seed=0))
        corpus = env.run_campaign()
        started = time.perf_counter()
        result = env.run_cfs(
            corpus, cfs_config=env.config.cfs.replace(columnar=columnar)
        )
        elapsed = time.perf_counter() - started
        rows[name] = {"cfs_seconds": round(elapsed, 3)}
        exports[name] = _comparable_export(env, result)
    identical = exports["columnar"] == exports["objects"]
    speedup = rows["objects"]["cfs_seconds"] / max(
        rows["columnar"]["cfs_seconds"], 1e-9
    )
    return {
        "identical": identical,
        "speedup": round(speedup, 3),
        **rows,
    }


def _supervisor_smoke(scale: str) -> dict:
    """Kill-one-worker-and-recover: the supervisor's contract in one bit.

    Runs the pipeline at ``workers=2`` under a seeded ``worker_crash``
    plan (workers die mid-shard with ``os._exit``; nothing else is
    faulted) and compares against an unfaulted serial run.
    ``recovered`` is the gate: the supervisor really saw crashes
    (``shard_retries > 0``) *and* the inferences stayed byte-identical.
    """
    from repro.api import FaultPlan, Instrumentation, run_pipeline

    import dataclasses

    clean_env = build_environment(config=PipelineConfig.for_scale(scale, seed=0))
    clean_corpus = clean_env.run_campaign()
    clean_result = clean_env.run_cfs(clean_corpus)

    config = dataclasses.replace(
        PipelineConfig.for_scale(scale, seed=0),
        workers=2,
        faults=FaultPlan(worker_crash=0.5),
    )
    obs = Instrumentation()
    started = time.perf_counter()
    run = run_pipeline(config=config, instrumentation=obs)
    elapsed = time.perf_counter() - started
    identical = _comparable_export(
        run.environment, run.cfs_result
    ) == _comparable_export(clean_env, clean_result)
    retries = obs.counter("exec.shard.retry")
    return {
        "identical": identical,
        "shard_retries": retries,
        "shard_quarantines": obs.counter("exec.shard.quarantine"),
        "pool_rebuilds": obs.counter("exec.pool.rebuild"),
        "recovered": bool(identical and retries > 0),
        "pipeline_seconds": round(elapsed, 3),
    }


def _resume_smoke(scale: str) -> dict:
    """Checkpoint a run, resume it, and compare the exports.

    Records the wall-clock of the checkpointing run and of the resume
    (the resume should be near-instant: every stage loads from disk),
    plus the byte-identity bit the smoke gates on.
    """
    import tempfile

    from repro.api import Instrumentation, run_pipeline

    with tempfile.TemporaryDirectory(prefix="bench-ckpt-") as checkpoint_dir:
        config = PipelineConfig.for_scale(scale, seed=0)
        import dataclasses

        first_config = dataclasses.replace(
            config, checkpoint_dir=checkpoint_dir
        )
        started = time.perf_counter()
        first = run_pipeline(config=first_config)
        first_seconds = time.perf_counter() - started
        resume_config = dataclasses.replace(
            config, checkpoint_dir=checkpoint_dir, resume=True
        )
        obs = Instrumentation()
        started = time.perf_counter()
        resumed = run_pipeline(config=resume_config, instrumentation=obs)
        resume_seconds = time.perf_counter() - started
    identical = _comparable_export(
        resumed.environment, resumed.cfs_result
    ) == _comparable_export(first.environment, first.cfs_result)
    return {
        "identical": identical,
        "stages_loaded": obs.counter("checkpoint.load"),
        "first_run_seconds": round(first_seconds, 3),
        "resume_seconds": round(resume_seconds, 3),
    }


def _lint_smoke() -> tuple[dict, bool]:
    """Run ``repro lint --format json`` over the installed tree.

    Returns the recorded summary (finding/suppression counts over time
    live in BENCH_pipeline.json) and whether the gate failed.
    """
    import contextlib
    import io

    from repro.api import run_lint as lint_main

    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        exit_code = lint_main(["--format", "json"])
    document = json.loads(stdout.getvalue())
    by_rule = document["summary"]["by_rule"]
    summary = {
        "exit_code": exit_code,
        "schema_version": document["schema_version"],
        "files_scanned": document["files_scanned"],
        "findings": len(document["findings"]),
        "counts": document["counts"],
        "flow_counts": {
            rule: count
            for rule, count in by_rule.items()
            if rule in ("R011", "R012", "R013", "R014")
        },
        "suppressed": len(document["suppressed"]),
    }
    status = "ok" if exit_code == 0 else "FINDINGS"
    flow_total = sum(summary["flow_counts"].values())
    print(
        f"lint: {status} files={summary['files_scanned']} "
        f"findings={summary['findings']} (flow {flow_total}) "
        f"suppressed={summary['suppressed']}"
    )
    return summary, exit_code != 0


def _sanitizer_smoke(scale: str) -> tuple[dict, bool]:
    """One pipeline run with the reprosan sanitizer armed.

    Must finish with zero violations and the same map fingerprint as a
    plain run of the same seed (the sanitizer never changes bytes).
    """
    import dataclasses

    from repro import sanitize
    from repro.core.pipeline import PipelineConfig, run_pipeline

    config = PipelineConfig.for_scale(scale, seed=QUICK_SEEDS[0])
    before = len(sanitize.violations())
    started = time.perf_counter()
    sanitized = run_pipeline(dataclasses.replace(config, sanitize=True))
    seconds = time.perf_counter() - started
    plain = run_pipeline(config)
    violations = len(sanitize.violations()) - before
    identical = _comparable_export(
        sanitized.environment, sanitized.cfs_result
    ) == _comparable_export(plain.environment, plain.cfs_result)
    row = {
        "violations": violations,
        "identical": identical,
        "pipeline_seconds": round(seconds, 3),
    }
    clean = violations == 0 and identical
    print(
        f"sanitizer: {'ok' if clean else 'VIOLATIONS'} "
        f"violations={violations} identical={identical} "
        f"seconds={row['pipeline_seconds']}"
    )
    return row, not clean


def quick_smoke(output: str, scale: str = "small") -> int:
    """Run the engine comparison smoke and write ``BENCH_pipeline.json``.

    Returns a process exit code (non-zero when an engine pair diverges).
    """
    report = {
        "schema": "repro/bench-pipeline/1",
        "scale": scale,
        "seeds": [],
    }
    failed = False
    for seed in QUICK_SEEDS:
        row = _smoke_seed(seed, scale)
        report["seeds"].append(row)
        status = "ok" if row["identical"] else "DIVERGED"
        print(
            f"seed {seed}: {status} "
            f"incremental={row['incremental']['cfs_seconds']}s "
            f"full={row['full_rescan']['cfs_seconds']}s "
            f"speedup={row['speedup']}x"
        )
        failed = failed or not row["identical"]
    report["columnar"] = columnar_row = _columnar_smoke(scale)
    columnar_status = "ok" if columnar_row["identical"] else "DIVERGED"
    print(
        f"columnar: {columnar_status} "
        f"columnar={columnar_row['columnar']['cfs_seconds']}s "
        f"objects={columnar_row['objects']['cfs_seconds']}s "
        f"speedup={columnar_row['speedup']}x"
    )
    failed = failed or not columnar_row["identical"]
    report["workers"] = workers_row = _workers_smoke(scale)
    workers_status = "ok" if workers_row["identical"] else "DIVERGED"
    curve = " ".join(
        f"{name}={point['pipeline_seconds']}s({point['speedup']}x)"
        for name, point in workers_row.items()
        if isinstance(point, dict)
    )
    print(
        f"workers: {workers_status} {curve} cpus={workers_row['cpu_count']}"
        + (" cores_limited" if workers_row["cores_limited"] else "")
    )
    failed = failed or not workers_row["identical"]
    if workers_row["cores_limited"]:
        print(
            "workers: speedup assertion skipped "
            f"(cpu_count={workers_row['cpu_count']} < 2)"
        )
    elif workers_row["speedup"] <= 1.0:
        print(
            f"workers: SLOWDOWN speedup={workers_row['speedup']}x "
            f"with {workers_row['cpu_count']} cpus"
        )
        failed = True
    report["supervisor"] = supervisor_row = _supervisor_smoke(scale)
    supervisor_status = "ok" if supervisor_row["recovered"] else "FAILED"
    print(
        f"supervisor: {supervisor_status} "
        f"retries={supervisor_row['shard_retries']} "
        f"quarantines={supervisor_row['shard_quarantines']} "
        f"rebuilds={supervisor_row['pool_rebuilds']} "
        f"identical={supervisor_row['identical']}"
    )
    failed = failed or not supervisor_row["recovered"]
    report["resume"] = resume_row = _resume_smoke(scale)
    resume_status = "ok" if resume_row["identical"] else "DIVERGED"
    print(
        f"resume: {resume_status} "
        f"stages_loaded={resume_row['stages_loaded']} "
        f"first={resume_row['first_run_seconds']}s "
        f"resume={resume_row['resume_seconds']}s"
    )
    failed = failed or not resume_row["identical"]
    report["lint"], lint_failed = _lint_smoke()
    failed = failed or lint_failed
    report["sanitizer"], sanitizer_failed = _sanitizer_smoke(scale)
    failed = failed or sanitizer_failed
    path = Path(output)
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"report written to {path}")
    # Fold in the chaos, serve, soak, and outage quick entries so one
    # smoke run covers all five reports.
    try:
        from bench_chaos import quick_chaos
        from bench_outage import quick_outage
        from bench_serve import quick_serve
        from bench_soak import quick_soak
    except ImportError:  # imported as a module, benchmarks/ not on path
        sys.path.insert(0, str(Path(__file__).resolve().parent))
        from bench_chaos import quick_chaos
        from bench_outage import quick_outage
        from bench_serve import quick_serve
        from bench_soak import quick_soak

    chaos_output = str(path.parent / "BENCH_chaos.json")
    chaos_failed = quick_chaos(chaos_output, scale=scale)
    serve_output = str(path.parent / "BENCH_serve.json")
    serve_failed = quick_serve(serve_output, scale=scale)
    soak_output = str(path.parent / "BENCH_soak.json")
    soak_failed = quick_soak(soak_output, scale=scale)
    outage_output = str(path.parent / "BENCH_outage.json")
    outage_failed = quick_outage(outage_output, scale=scale)
    return 1 if (
        failed or chaos_failed or serve_failed or soak_failed or outage_failed
    ) else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run the engine-comparison smoke and write BENCH_pipeline.json",
    )
    parser.add_argument(
        "--scale",
        choices=PipelineConfig.SCALES,
        default="small",
        help="pipeline scale for the smoke run",
    )
    parser.add_argument(
        "--output",
        default="BENCH_pipeline.json",
        help="where to write the smoke report",
    )
    args = parser.parse_args(argv)
    if not args.quick:
        parser.error("standalone mode requires --quick (or run under pytest)")
    return quick_smoke(args.output, scale=args.scale)


if __name__ == "__main__":
    sys.exit(main())
