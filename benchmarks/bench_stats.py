"""In-text statistics benchmarks (Sections 3.1.1 and 4.1).

Paper figures: 54% of ASes connect to more than one IXP and 66% to more
than one facility; alias resolution grouped 25,756 peering interfaces
into 2,895 alias sets, 240 of which carried conflicting IP-to-ASN
mappings (1,138 interfaces).
"""

from __future__ import annotations

from repro.api import run_alias_census, run_as_connectivity_stats

from _report import record_report


def test_as_connectivity(benchmark, bench_env):
    stats = benchmark.pedantic(
        run_as_connectivity_stats, args=(bench_env,), rounds=3, iterations=1
    )
    assert stats.multi_facility_fraction > 0.5
    assert stats.multi_ixp_fraction > 0.3
    record_report("Section 3.1.1 (AS connectivity)", stats.format())
    benchmark.extra_info["multi_ixp"] = round(stats.multi_ixp_fraction, 3)
    benchmark.extra_info["multi_facility"] = round(
        stats.multi_facility_fraction, 3
    )


def test_alias_census(benchmark, bench_run):
    env, corpus, _ = bench_run
    census = benchmark.pedantic(
        run_alias_census, args=(env, corpus), rounds=1, iterations=1
    )
    assert census.alias_sets > 100
    assert census.conflicting_sets > 0
    assert census.conflicting_addresses > census.conflicting_sets
    record_report("Section 4.1 (alias resolution census)", census.format())
    benchmark.extra_info["alias_sets"] = census.alias_sets
    benchmark.extra_info["conflicting_sets"] = census.conflicting_sets
