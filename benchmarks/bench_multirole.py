"""Section 5 benchmark: multi-role and multi-IXP router census.

Paper headlines: 39% of observed routers implement both public and
private peering; 11.9% of public-peering routers span several IXPs.  We
assert both phenomena are present at substantial rates.
"""

from __future__ import annotations

from repro.api import run_multirole_census

from _report import record_report


def test_multirole_census(benchmark, bench_run):
    env, _, result = bench_run
    census = benchmark.pedantic(
        run_multirole_census, args=(env, result), rounds=3, iterations=1
    )
    assert census.routers_observed > 300
    assert census.both_roles_fraction > 0.10
    assert census.multi_ixp_fraction > 0.05
    record_report("Section 5 (multi-role routers)", census.format())
    benchmark.extra_info["both_roles_fraction"] = round(
        census.both_roles_fraction, 3
    )
    benchmark.extra_info["multi_ixp_fraction"] = round(
        census.multi_ixp_fraction, 3
    )
