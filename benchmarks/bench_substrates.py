"""Micro-benchmarks of the substrate hot paths.

These are conventional pytest-benchmark timings (many rounds) for the
operations the pipeline leans on: longest-prefix lookups, route-table
computation, traceroute issuing, and alias-resolution probing.
"""

from __future__ import annotations

import random

import pytest

from repro.api import MidarResolver
from repro.api import IpidResponder
from repro.api import TracerouteEngine
from repro.api import RouteComputer
from repro.api import MAX_IPV4, LongestPrefixMatcher, Prefix


@pytest.fixture(scope="module")
def lpm_table():
    rng = random.Random(1)
    trie: LongestPrefixMatcher[int] = LongestPrefixMatcher()
    for index in range(5000):
        length = rng.randint(8, 28)
        network = rng.randrange(0, MAX_IPV4) & (
            (MAX_IPV4 << (32 - length)) & MAX_IPV4
        )
        trie.insert(Prefix(network, length), index)
    probes = [rng.randrange(0, MAX_IPV4) for _ in range(1000)]
    return trie, probes


def test_lpm_lookup(benchmark, lpm_table):
    trie, probes = lpm_table

    def lookup_batch():
        hits = 0
        for address in probes:
            if trie.lookup(address) is not None:
                hits += 1
        return hits

    hits = benchmark(lookup_batch)
    assert hits > 0


def test_route_table_computation(benchmark, bench_env):
    topology = bench_env.topology
    destinations = sorted(topology.ases)[:20]

    def compute():
        routes = RouteComputer(topology)
        for dest in destinations:
            routes.routes_to(dest)
        return routes

    benchmark.pedantic(compute, rounds=3, iterations=1)


def test_traceroute_throughput(benchmark, bench_env):
    topology = bench_env.topology
    engine = TracerouteEngine(topology, seed=99)
    rng = random.Random(3)
    routers = sorted(topology.routers)
    addresses = sorted(topology.interfaces)
    pairs = [
        (rng.choice(routers), rng.choice(addresses)) for _ in range(100)
    ]

    def run_batch():
        reached = 0
        for src, dst in pairs:
            if engine.trace(src, dst).reached:
                reached += 1
        return reached

    reached = benchmark.pedantic(run_batch, rounds=3, iterations=1)
    assert reached > 50


def test_midar_resolution(benchmark, bench_env):
    topology = bench_env.topology
    addresses = sorted(topology.interfaces)[:800]

    def resolve():
        responder = IpidResponder(topology, seed=7)
        resolver = MidarResolver(responder, seed=7)
        return resolver.resolve(addresses)

    sets = benchmark.pedantic(resolve, rounds=2, iterations=1)
    assert len(sets) > 0
