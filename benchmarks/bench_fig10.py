"""Figure 10 benchmark: per-target peering interfaces by type and region.

Shape: content providers skew to the public fabric, Tier-1 backbones to
private interconnects; Europe contributes the most inferred interfaces.
"""

from __future__ import annotations

from repro.api import run_fig10
from repro.api import role_contrast

from _report import record_report


def test_fig10(benchmark, bench_run):
    env, _, result = bench_run
    fig10 = benchmark.pedantic(
        run_fig10, args=(env, result), rounds=1, iterations=1
    )
    cdn_public, tier1_public = role_contrast(fig10)
    assert cdn_public > 2 * tier1_public
    assert cdn_public > 0.25

    europe = sum(
        row.total for row in fig10.rows if row.region == "Europe"
    )
    asia = sum(row.total for row in fig10.rows if row.region == "Asia")
    assert europe > asia  # vantage-point and facility density skew

    for asn in env.target_asns:
        assert fig10.row(asn, "total") is not None

    record_report("Figure 10 (per-target peering mix)", fig10.format())
    benchmark.extra_info["cdn_public_fraction"] = round(cdn_public, 3)
    benchmark.extra_info["tier1_public_fraction"] = round(tier1_public, 3)
