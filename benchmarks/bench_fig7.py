"""Figure 7 benchmark: CFS convergence per platform, vs DNS geolocation.

Shape assertions, following Section 5:

* convergence is monotone with diminishing returns;
* a majority of interfaces resolve by the timeout with all platforms;
* Atlas-only resolves more interfaces per run than LG-only;
* a substantial share of LG-resolved interfaces is invisible to Atlas;
* DNS geolocation locates far fewer interfaces than full CFS.
"""

from __future__ import annotations

from repro.api import run_fig7

from _report import record_report


def test_fig7(benchmark, bench_env):
    result = benchmark.pedantic(
        run_fig7, args=(bench_env,), rounds=1, iterations=1
    )
    full = result.series["all"]
    atlas = result.series["ripe-atlas"]
    lgs = result.series["looking-glass"]

    # Resolved *counts* are monotone; the fraction can dip slightly when
    # follow-ups discover brand-new interfaces (denominator growth).
    resolved_counts = [resolved for _, resolved, _ in full.points]
    assert all(b >= a for a, b in zip(resolved_counts, resolved_counts[1:]))
    fractions = [fraction for _, fraction in full.fractions()]
    assert all(b >= a - 0.01 for a, b in zip(fractions, fractions[1:]))
    assert full.final_fraction() > 0.55

    assert atlas.points[-1][1] >= lgs.points[-1][1]  # resolved counts
    assert result.lg_unique_fraction > 0.1
    assert result.dns_located_fraction < full.final_fraction()

    record_report("Figure 7 (convergence by platform)", result.format(step=10))
    benchmark.extra_info["final_resolved_fraction"] = round(
        full.final_fraction(), 3
    )
    benchmark.extra_info["dns_located"] = round(result.dns_located_fraction, 3)
    benchmark.extra_info["lg_unique"] = round(result.lg_unique_fraction, 3)
