"""Figure 3 benchmark: metros ranked by interconnection facilities.

Shape: heavy-tailed counts led by the global hubs, and roughly 3x more
facilities than exchanges per metro (Section 3.1.2).
"""

from __future__ import annotations

from repro.api import run_fig3

from _report import record_report


def test_fig3(benchmark, bench_env):
    result = benchmark.pedantic(
        run_fig3, args=(bench_env.topology,), rounds=5, iterations=1
    )
    assert result.is_heavy_tailed()
    top_names = {metro for metro, _, _ in result.rows[:8]}
    assert top_names & {
        "London",
        "New York",
        "Paris",
        "Frankfurt",
        "Amsterdam",
        "San Jose",
        "Moscow",
        "Los Angeles",
    }
    assert result.facility_to_ixp_ratio > 1.5
    record_report("Figure 3 (facilities per metro)", result.format(limit=20))
    benchmark.extra_info["top_metro"] = result.rows[0][0]
    benchmark.extra_info["fac_to_ixp_ratio"] = round(
        result.facility_to_ixp_ratio, 2
    )
