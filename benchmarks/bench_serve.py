"""Serve benchmarks: query latency, swap pause, and stream throughput.

The always-on map service makes three promises worth numbers:

* **identity** — the final streamed snapshot fingerprints identical to
  the one-shot batch pipeline's map (the acceptance contract);
* **read-path latency** — lookups are precomputed-index hits, so p99
  stays far under the interactive budget even while snapshots swap;
* **swap pause** — publishing a new version is one reference
  assignment, so the read path never stalls measurably.

Standalone smoke mode (no pytest-benchmark needed)::

    python benchmarks/bench_serve.py --quick

writes ``BENCH_serve.json`` next to the repository root.  The quick
entry is also folded into ``bench_pipeline.py --quick``.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

if __name__ == "__main__":
    # Standalone smoke mode runs without an installed package.
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.api import (
    PipelineConfig,
    QueryEngine,
    build_snapshot,
    config_fingerprint,
    run_pipeline,
    serve_map,
)

#: The interactive budget the smoke gates p99 lookup latency on.  A
#: hash lookup into a precomputed index should sit around microseconds;
#: 50ms leaves three orders of magnitude of headroom for slow CI boxes.
P99_BUDGET_SECONDS = 0.050

QUICK_EPOCHS = 2
QUICK_QUERIES = 400


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def _load_lines(snapshot, count: int, seed: int) -> list[str]:
    """A seeded, mixed query workload over the snapshot's own keys."""
    rng = random.Random(seed)
    addresses = sorted(snapshot.interfaces)
    pairs = sorted(snapshot.links_by_aspair)
    facilities = sorted(snapshot.facility_tenants)
    lines: list[str] = []
    for _ in range(count):
        kind = rng.randrange(4)
        if kind == 0 and addresses:
            lines.append(f"iface {rng.choice(addresses)}")
        elif kind == 1 and pairs:
            near, far = rng.choice(pairs)
            lines.append(f"link {near} {far}")
        elif kind == 2 and facilities:
            lines.append(f"tenants {rng.choice(facilities)}")
        else:
            lines.append("info")
    return lines


def quick_serve(
    output: str,
    scale: str = "small",
    seed: int = 0,
    epochs: int = QUICK_EPOCHS,
    queries: int = QUICK_QUERIES,
) -> int:
    """Stream smoke + load generator; writes ``BENCH_serve.json``.

    Returns a process exit code (non-zero when the stream/batch
    fingerprints diverge or p99 lookup latency blows the budget).
    """
    config = PipelineConfig.for_scale(scale, seed=seed)

    stream_started = time.perf_counter()
    handle = serve_map(seed=seed, scale=scale, epochs=epochs)
    stream_elapsed = time.perf_counter() - stream_started
    assert handle.final is not None

    batch_started = time.perf_counter()
    batch = run_pipeline(config=config)
    batch_elapsed = time.perf_counter() - batch_started
    batch_fingerprint = build_snapshot(
        batch.cfs_result,
        epoch=0,
        final=True,
        seed=seed,
        config_fingerprint=config_fingerprint(config),
        traces_ingested=len(batch.corpus),
    ).fingerprint
    identical = handle.final.fingerprint == batch_fingerprint
    print(
        f"stream/batch identity (seed {seed}): "
        f"{'ok' if identical else 'DIVERGED'} "
        f"stream={stream_elapsed:.2f}s batch={batch_elapsed:.2f}s"
    )

    # Load generator: seeded workload against a private engine, with
    # the published history swapping underneath it mid-run.
    engine = QueryEngine()
    engine.swap(handle.final)
    lines = _load_lines(handle.final, queries, seed)
    snapshots = handle.snapshots
    latencies: list[float] = []
    load_started = time.perf_counter()
    for index, line in enumerate(lines):
        if index and index % 50 == 0:  # a swap every 50 queries
            engine.swap(snapshots[(index // 50) % len(snapshots)])
        started = time.perf_counter()
        engine.execute(line)
        latencies.append(time.perf_counter() - started)
    load_elapsed = time.perf_counter() - load_started

    # Swap pause: the latency of publishing a version into the read
    # path (one reference assignment plus instrumentation).
    swap_samples: list[float] = []
    for round_ in range(200):
        snapshot = snapshots[round_ % len(snapshots)]
        started = time.perf_counter()
        engine.swap(snapshot)
        swap_samples.append(time.perf_counter() - started)

    p50 = _percentile(latencies, 0.50)
    p99 = _percentile(latencies, 0.99)
    qps = len(lines) / load_elapsed if load_elapsed else float("inf")
    within_budget = p99 <= P99_BUDGET_SECONDS
    print(
        f"queries: {len(lines)} p50={p50 * 1e6:.1f}us p99={p99 * 1e6:.1f}us "
        f"({'ok' if within_budget else 'OVER BUDGET'}) qps={qps:.0f}"
    )
    print(
        f"swap pause: p50={_percentile(swap_samples, 0.50) * 1e6:.1f}us "
        f"max={max(swap_samples) * 1e6:.1f}us; "
        f"epochs/sec={epochs / stream_elapsed:.2f}"
    )

    payload = {
        "schema": "repro/bench-serve/1",
        "scale": scale,
        "seed": seed,
        "epochs": epochs,
        "identical": identical,
        "stream_fingerprint": handle.final.fingerprint,
        "batch_fingerprint": batch_fingerprint,
        "stream_seconds": round(stream_elapsed, 3),
        "batch_seconds": round(batch_elapsed, 3),
        "epochs_per_second": round(epochs / stream_elapsed, 4),
        "queries": len(lines),
        "query_p50_seconds": round(p50, 9),
        "query_p99_seconds": round(p99, 9),
        "query_p99_budget_seconds": P99_BUDGET_SECONDS,
        "sustained_qps": round(qps, 1),
        "swap_pause_p50_seconds": round(_percentile(swap_samples, 0.50), 9),
        "swap_pause_max_seconds": round(max(swap_samples), 9),
        "snapshots_published": len(snapshots),
    }
    path = Path(output)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"report written to {path}")
    return 0 if identical and within_budget else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run the serve smoke and write BENCH_serve.json",
    )
    parser.add_argument(
        "--scale",
        choices=PipelineConfig.SCALES,
        default="small",
        help="pipeline scale for the smoke run",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--epochs",
        type=int,
        default=QUICK_EPOCHS,
        help="epochs to stream the campaign in",
    )
    parser.add_argument(
        "--output",
        default="BENCH_serve.json",
        help="where to write the smoke report",
    )
    args = parser.parse_args(argv)
    if not args.quick:
        parser.error("standalone mode requires --quick")
    return quick_serve(
        args.output, scale=args.scale, seed=args.seed, epochs=args.epochs
    )


if __name__ == "__main__":
    sys.exit(main())
