"""Benchmark plumbing: shared study run + report printing.

Every figure benchmark regenerates its table/series from the same cached
default-scale study run (one environment, one campaign, one CFS pass),
then times the experiment-specific computation.  Rendered reports are
printed in the terminal summary so ``pytest benchmarks/
--benchmark-only`` leaves the reproduced tables in the output.
"""

from __future__ import annotations

import pytest

from repro.api import experiment_environment, experiment_run

from _report import all_reports

#: Master seed of the benchmark study run.
BENCH_SEED = 0


@pytest.fixture(scope="session")
def bench_env():
    """The cached default-scale environment."""
    return experiment_environment(seed=BENCH_SEED, small=False)


@pytest.fixture(scope="session")
def bench_run():
    """The cached default-scale study run (env, corpus, CFS result)."""
    return experiment_run(seed=BENCH_SEED, small=False)


def pytest_terminal_summary(terminalreporter):
    for report in all_reports():
        terminalreporter.write_line(report)
