"""Figure 8 benchmark: robustness to missing facility data.

Shape: the unresolved fraction grows (roughly monotonically) as dataset
facilities are removed; removing half the facilities un-resolves a large
minority of interfaces; changed inferences appear at moderate removals.
"""

from __future__ import annotations

from repro.api import run_fig8

from _report import record_report


def test_fig8(benchmark, bench_run):
    env, corpus, _ = bench_run

    def run():
        return run_fig8(
            env,
            corpus,
            removal_fractions=(0.1, 0.2, 0.3, 0.5, 0.65, 0.8),
            repeats=3,
            seed=8,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.baseline_resolved > 200
    assert result.unresolved_is_monotonic(slack=0.05)
    by_fraction = {p.removed_fraction: p for p in result.points}
    assert by_fraction[0.5].unresolved_fraction > 0.15
    assert by_fraction[0.8].unresolved_fraction > by_fraction[0.2].unresolved_fraction
    assert any(p.changed_fraction > 0.0 for p in result.points)
    record_report("Figure 8 (facility removal robustness)", result.format())
    benchmark.extra_info["unresolved_at_half"] = round(
        by_fraction[0.5].unresolved_fraction, 3
    )
