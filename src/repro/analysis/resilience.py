"""Resilience analytics over an inferred interconnection map.

The paper's motivation list (Section 1) includes "assessment of the
resilience of interconnections in the event of natural disasters,
facility or router outages, peering disputes and denial of service
attacks".  This module turns a :class:`~repro.core.types.CfsResult`
into exactly those assessments:

* per-facility **criticality**: how many inferred interconnections and
  distinct networks terminate in each building;
* **blast radius** of a facility (or a whole metro) going dark;
* the most critical facilities, ranked.

Everything operates on the inferred map only — the same analyses run
unchanged on a map produced from real measurements.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..core.facility_db import FacilityDatabase
from ..core.types import CfsResult, LinkInference

__all__ = ["BlastRadius", "FacilityCriticality", "CriticalityIndex"]


@dataclass(frozen=True, slots=True)
class BlastRadius:
    """What an outage of ``facilities`` takes down, per the inferred map."""

    facilities: frozenset[int]
    links_affected: int
    asns_affected: frozenset[int]
    types_affected: dict[str, int]
    exchanges_affected: frozenset[int]


@dataclass(frozen=True, slots=True)
class FacilityCriticality:
    """Criticality score of one facility."""

    facility_id: int
    metro: str | None
    link_endpoints: int
    distinct_asns: int
    exchanges: int

    @property
    def score(self) -> tuple[int, int]:
        """Rank key: endpoints first, then network diversity."""
        return (self.link_endpoints, self.distinct_asns)


class CriticalityIndex:
    """Indexes an inferred map for resilience queries."""

    def __init__(
        self, result: CfsResult, facility_db: FacilityDatabase | None = None
    ) -> None:
        self._facility_db = facility_db
        self._links_by_facility: dict[int, list[LinkInference]] = {}
        for link in result.links:
            for facility in self._facilities_of(link):
                self._links_by_facility.setdefault(facility, []).append(link)

    @staticmethod
    def _facilities_of(link: LinkInference) -> set[int]:
        facilities = set()
        if link.near_facility is not None:
            facilities.add(link.near_facility)
        if link.far_facility is not None:
            facilities.add(link.far_facility)
        return facilities

    # ------------------------------------------------------------------

    def facilities(self) -> list[int]:
        """Facilities with at least one inferred link endpoint."""
        return sorted(self._links_by_facility)

    def criticality(self, facility_id: int) -> FacilityCriticality:
        """Criticality metrics for one facility."""
        links = self._links_by_facility.get(facility_id, [])
        asns = set()
        exchanges = set()
        for link in links:
            asns.add(link.near_asn)
            asns.add(link.far_asn)
            if link.ixp_id is not None:
                exchanges.add(link.ixp_id)
        metro = (
            self._facility_db.metro_of(facility_id)
            if self._facility_db is not None
            else None
        )
        return FacilityCriticality(
            facility_id=facility_id,
            metro=metro,
            link_endpoints=len(links),
            distinct_asns=len(asns),
            exchanges=len(exchanges),
        )

    def ranked(self, limit: int | None = None) -> list[FacilityCriticality]:
        """Facilities by descending criticality."""
        rows = [self.criticality(fid) for fid in self.facilities()]
        rows.sort(key=lambda row: (-row.link_endpoints, -row.distinct_asns, row.facility_id))
        return rows[:limit] if limit is not None else rows

    # ------------------------------------------------------------------

    def blast_radius(self, facilities: set[int] | frozenset[int]) -> BlastRadius:
        """Aggregate impact of the given facilities going dark."""
        affected_links: list[LinkInference] = []
        seen: set[int] = set()
        for facility_id in facilities:
            for link in self._links_by_facility.get(facility_id, []):
                marker = id(link)
                if marker not in seen:
                    seen.add(marker)
                    affected_links.append(link)
        asns = set()
        types = Counter()
        exchanges = set()
        for link in affected_links:
            asns.add(link.near_asn)
            asns.add(link.far_asn)
            types[link.inferred_type.value] += 1
            if link.ixp_id is not None:
                exchanges.add(link.ixp_id)
        return BlastRadius(
            facilities=frozenset(facilities),
            links_affected=len(affected_links),
            asns_affected=frozenset(asns),
            types_affected=dict(types),
            exchanges_affected=frozenset(exchanges),
        )

    def metro_blast_radius(self, metro: str) -> BlastRadius:
        """Impact of every known facility in ``metro`` going dark (the
        natural-disaster scenario).  Requires a facility database."""
        if self._facility_db is None:
            raise ValueError("metro queries require a facility database")
        facilities = {
            fid
            for fid in self._links_by_facility
            if self._facility_db.metro_of(fid) == metro
        }
        return self.blast_radius(facilities)
