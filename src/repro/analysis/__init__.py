"""Downstream analytics over inferred interconnection maps.

The paper motivates facility-level mapping with operational use cases —
resilience assessment, troubleshooting, peering-strategy transparency.
This subpackage provides those consumers: facility criticality and
outage blast radii (:mod:`resilience`), per-network peering profiles
(:mod:`profiles`) and run-to-run map diffs (:mod:`mapdiff`).
"""

from .mapdiff import MapDiff, diff_results
from .profiles import PeeringProfile, build_profile, build_profiles
from .resilience import BlastRadius, CriticalityIndex, FacilityCriticality

__all__ = [
    "BlastRadius",
    "build_profile",
    "build_profiles",
    "CriticalityIndex",
    "diff_results",
    "FacilityCriticality",
    "MapDiff",
    "PeeringProfile",
]
