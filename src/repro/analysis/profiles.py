"""Per-network peering-strategy profiles from an inferred map.

Section 5 closes with "our study also sheds light on peering
engineering strategies used by different types of networks around the
globe" — CDNs riding public fabrics, Tier-1s cross-connecting, and
"significant variance in peering strategies even among Tier-1
networks".  This module distils a :class:`~repro.core.types.CfsResult`
into exactly that kind of per-AS profile.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..core.facility_db import FacilityDatabase
from ..core.types import CfsResult, InferredType, PeeringKind

__all__ = ["PeeringProfile", "build_profile", "build_profiles"]


@dataclass(frozen=True, slots=True)
class PeeringProfile:
    """One network's inferred peering engineering footprint."""

    asn: int
    #: Interconnections observed with this AS as either endpoint.
    links: int
    #: Distinct peer ASNs.
    peers: int
    #: Link counts by inferred engineering type.
    type_counts: dict[str, int]
    #: Facilities where this AS's side of a link was pinned.
    facilities: frozenset[int]
    #: Metros spanned by those facilities (when a database is supplied).
    metros: frozenset[str]
    #: Exchanges carrying this AS's public peerings.
    exchanges: frozenset[int]

    @property
    def public_fraction(self) -> float:
        """Share of typed links riding an exchange fabric."""
        public = self.type_counts.get(
            InferredType.PUBLIC_LOCAL.value, 0
        ) + self.type_counts.get(InferredType.PUBLIC_REMOTE.value, 0)
        typed = sum(
            count
            for name, count in self.type_counts.items()
            if name != InferredType.UNKNOWN.value
        )
        return public / typed if typed else 0.0

    @property
    def private_fraction(self) -> float:
        """Share of typed links on dedicated/private media."""
        typed = sum(
            count
            for name, count in self.type_counts.items()
            if name != InferredType.UNKNOWN.value
        )
        if not typed:
            return 0.0
        return 1.0 - self.public_fraction


def build_profile(
    result: CfsResult,
    asn: int,
    facility_db: FacilityDatabase | None = None,
) -> PeeringProfile:
    """Profile one AS from the inferred map."""
    type_counts: Counter = Counter()
    peers: set[int] = set()
    facilities: set[int] = set()
    exchanges: set[int] = set()
    links = 0
    for link in result.links:
        if asn == link.near_asn:
            own_facility = link.near_facility
            peer = link.far_asn
        elif asn == link.far_asn:
            own_facility = link.far_facility
            peer = link.near_asn
        else:
            continue
        links += 1
        peers.add(peer)
        type_counts[link.inferred_type.value] += 1
        if own_facility is not None:
            facilities.add(own_facility)
        if link.kind is PeeringKind.PUBLIC and link.ixp_id is not None:
            exchanges.add(link.ixp_id)
    metros: set[str] = set()
    if facility_db is not None:
        metros = facility_db.metros_of(facilities)
    return PeeringProfile(
        asn=asn,
        links=links,
        peers=len(peers),
        type_counts=dict(type_counts),
        facilities=frozenset(facilities),
        metros=frozenset(metros),
        exchanges=frozenset(exchanges),
    )


def build_profiles(
    result: CfsResult,
    asns: list[int],
    facility_db: FacilityDatabase | None = None,
) -> dict[int, PeeringProfile]:
    """Profiles for several networks at once."""
    return {
        asn: build_profile(result, asn, facility_db) for asn in asns
    }
