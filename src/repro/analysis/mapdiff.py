"""Diffing two inferred maps.

Re-running a study — with more data, a degraded dataset (Figure 8), a
different platform mix (Figure 7), or simply at a later date — yields a
second map.  The diff quantifies what changed: which interfaces gained
or lost a facility pin, and where the two runs disagree.  The Figure 8
robustness harness computes exactly these quantities; this module makes
them a reusable primitive.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.types import CfsResult

__all__ = ["MapDiff", "diff_results"]


@dataclass(frozen=True, slots=True)
class MapDiff:
    """Interface-level comparison of two CFS runs."""

    #: Resolved in both runs, same facility.
    agreeing: frozenset[int]
    #: Resolved in both runs, different facility.
    changed: dict[int, tuple[int, int]]
    #: Resolved only in the first run.
    lost: frozenset[int]
    #: Resolved only in the second run.
    gained: frozenset[int]

    @property
    def agreement_rate(self) -> float:
        """Agreement among interfaces resolved in both runs."""
        both = len(self.agreeing) + len(self.changed)
        return len(self.agreeing) / both if both else 1.0

    @property
    def churn(self) -> int:
        """Interfaces whose answer differs in any way between runs."""
        return len(self.changed) + len(self.lost) + len(self.gained)

    def summary(self) -> dict[str, float | int]:
        """The diff as a flat JSON-friendly dictionary."""
        return {
            "agreeing": len(self.agreeing),
            "changed": len(self.changed),
            "lost": len(self.lost),
            "gained": len(self.gained),
            "agreement_rate": self.agreement_rate,
            "churn": self.churn,
        }


def diff_results(first: CfsResult, second: CfsResult) -> MapDiff:
    """Compare the facility pins of two runs."""
    resolved_a = first.resolved_interfaces()
    resolved_b = second.resolved_interfaces()
    agreeing: set[int] = set()
    changed: dict[int, tuple[int, int]] = {}
    for address, facility in resolved_a.items():
        other = resolved_b.get(address)
        if other is None:
            continue
        if other == facility:
            agreeing.add(address)
        else:
            changed[address] = (facility, other)
    lost = frozenset(set(resolved_a) - set(resolved_b))
    gained = frozenset(set(resolved_b) - set(resolved_a))
    return MapDiff(
        agreeing=frozenset(agreeing),
        changed=changed,
        lost=lost,
        gained=gained,
    )
