"""Shared command-line conventions.

Every CLI entry point in this repository (``repro``, ``repro-lint``)
reports usage and configuration errors the same way: one ``error: ...``
line on stderr and exit status 2, never a traceback.  Reprolint rule
R006 enforces that CLI modules route error exits through
:func:`cli_error` instead of hand-rolled ``sys.exit(1)`` calls.
"""

from __future__ import annotations

import sys

__all__ = ["cli_error"]


def cli_error(message: str) -> int:
    """Print a one-line error to stderr and return exit status 2."""
    print(f"error: {message}", file=sys.stderr)
    return 2
