"""Columnar trace storage: flat parallel arrays behind the hot paths.

The CFS hot loop (address scanning, Step-1/Step-2 crossing extraction,
moved-address re-parse) iterates tens of thousands of traceroute hops
per campaign.  Walking per-hop dataclasses makes every visit pay
attribute lookups and keeps the per-object layout scattered across the
heap; shipping those objects across a process-pool boundary additionally
pays one ``__reduce__`` round-trip per hop.  This module flattens a
traceroute stream **once per campaign epoch** into parallel flat arrays
— addresses as u32, RTTs as f64, hop offsets as u64 — that

* the classify/extract stages scan as array slices (no objects touched),
* fork workers inherit copy-on-write and answer with compact rows,
* pickle as single ``memcpy``-shaped buffers instead of object graphs.

The dataclass API stays the module boundary: :class:`TraceArrays` is a
*codec target*, built from any objects shaped like
:class:`repro.measurement.traceroute.Traceroute` (duck-typed, so this
module imports nothing from the inference tree and sits at layer 1 of
the R014 DAG) and rebuilt into them on request.  Field round-trips are
exact: addresses/ASNs/TTLs are integers, RTTs are IEEE doubles stored
in ``array('d')``, and ``None`` hops ride dedicated sentinels — the
property test in ``tests/core/test_columnar.py`` pins every field.

Nothing here draws randomness or reads clocks; arrays are pure
functions of the traces they flatten.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Sequence

__all__ = [
    "NO_ADDRESS",
    "NO_ROUTER",
    "NO_RTT",
    "TraceArrays",
]

#: Sentinel for an unresponsive hop (``TraceHop.address is None``).
#: 255.255.255.255 is never allocated by the address pools; flattening
#: a trace that really carries it raises rather than corrupting data.
NO_ADDRESS = 0xFFFFFFFF
#: Sentinel for ``TraceHop.router_id is None`` (ground-truth column).
NO_ROUTER = 0xFFFFFFFF
#: Sentinel for ``TraceHop.rtt_ms is None``; NaN never equals itself,
#: so it can never collide with a real RTT sample.
NO_RTT = float("nan")


class TraceArrays:
    """A traceroute stream flattened into parallel flat arrays.

    Per-hop columns (``len == total hops``, indexed by flat hop index):

    * ``hop_address`` — u32, :data:`NO_ADDRESS` for ``*`` hops;
    * ``hop_rtt`` — f64, :data:`NO_RTT` (NaN) for missing samples;
    * ``hop_ttl`` — u16;
    * ``hop_router`` — u32 ground-truth router id, :data:`NO_ROUTER`
      when absent (scoring only, like the field it mirrors).

    Per-trace columns (``len == trace count``):

    * ``trace_offsets`` — u64 hop-range starts, one extra terminal
      entry (trace *i* owns flat hops ``offsets[i]:offsets[i+1]``);
    * ``src_asn`` / ``dst_address`` — u32;
    * ``reached`` — one byte per trace (0/1);
    * ``source_id`` / ``platform`` — plain string lists (identifiers,
      not numeric data; pickle memoises the shared objects).

    The structure is **append-only**: :meth:`extend` flattens new traces
    onto the end, which is what lets a corpus-wide instance be built
    once per campaign epoch and grown as follow-up probes arrive,
    without ever re-flattening the prefix.
    """

    __slots__ = (
        "trace_offsets",
        "hop_address",
        "hop_rtt",
        "hop_ttl",
        "hop_router",
        "src_asn",
        "dst_address",
        "reached",
        "source_id",
        "platform",
    )

    def __init__(self) -> None:
        self.trace_offsets = array("Q", [0])
        self.hop_address = array("I")
        self.hop_rtt = array("d")
        self.hop_ttl = array("H")
        self.hop_router = array("I")
        self.src_asn = array("I")
        self.dst_address = array("I")
        self.reached = bytearray()
        self.source_id: list[str] = []
        self.platform: list[str] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_traces(cls, traces: Iterable) -> "TraceArrays":
        """Flatten ``traces`` (Traceroute-shaped objects) into arrays."""
        arrays = cls()
        arrays.extend(traces)
        return arrays

    def extend(self, traces: Iterable) -> None:
        """Append ``traces`` onto the flattened stream."""
        offsets = self.trace_offsets
        addresses = self.hop_address
        rtts = self.hop_rtt
        ttls = self.hop_ttl
        routers = self.hop_router
        for trace in traces:
            for hop in trace.hops:
                address = hop.address
                if address is None:
                    address = NO_ADDRESS
                elif address >= NO_ADDRESS:
                    raise ValueError(
                        f"address {address:#x} collides with the "
                        f"NO_ADDRESS sentinel"
                    )
                addresses.append(address)
                rtts.append(NO_RTT if hop.rtt_ms is None else hop.rtt_ms)
                ttls.append(hop.ttl)
                routers.append(
                    NO_ROUTER if hop.router_id is None else hop.router_id
                )
            offsets.append(len(addresses))
            self.src_asn.append(trace.src_asn)
            self.dst_address.append(trace.dst_address)
            self.reached.append(1 if trace.reached else 0)
            self.source_id.append(trace.source_id)
            self.platform.append(trace.platform)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of flattened traces."""
        return len(self.trace_offsets) - 1

    @property
    def total_hops(self) -> int:
        """Number of flattened hops across every trace."""
        return len(self.hop_address)

    def hop_range(self, index: int) -> tuple[int, int]:
        """The flat hop range ``[start, stop)`` of trace ``index``."""
        if not 0 <= index < len(self):
            raise IndexError(f"trace index {index} out of range")
        return self.trace_offsets[index], self.trace_offsets[index + 1]

    def responsive_addresses(self, index: int) -> list[int]:
        """Addresses of trace ``index``'s responsive hops, path order.

        The columnar twin of ``Traceroute.responsive_addresses`` — one
        array slice, no hop objects touched.
        """
        start, stop = self.hop_range(index)
        return [
            address
            for address in self.hop_address[start:stop]
            if address != NO_ADDRESS
        ]

    def intersects(self, index: int, addresses) -> bool:
        """Whether any responsive hop of trace ``index`` is in
        ``addresses`` (a set).  The moved-address re-parse filter: one
        flat scan instead of materialising an address list per trace.
        """
        start, stop = self.hop_range(index)
        hop_address = self.hop_address
        for flat in range(start, stop):
            value = hop_address[flat]
            if value in addresses and value != NO_ADDRESS:
                return True
        return False

    # ------------------------------------------------------------------
    # Rebuild codec (arrays -> dataclasses)
    # ------------------------------------------------------------------

    def rebuild(self, index: int, trace_factory, hop_factory):
        """Reconstruct trace ``index`` through the given dataclass
        factories (kept injectable so this module imports nothing from
        the measurement layer).

        Every field round-trips exactly; the property test in
        ``tests/core/test_columnar.py`` holds flatten → rebuild to
        field-for-field equality.
        """
        start, stop = self.hop_range(index)
        hops = []
        for flat in range(start, stop):
            address = self.hop_address[flat]
            rtt = self.hop_rtt[flat]
            router = self.hop_router[flat]
            hops.append(
                hop_factory(
                    ttl=self.hop_ttl[flat],
                    address=None if address == NO_ADDRESS else address,
                    # NaN is the None sentinel; a real sample equals itself.
                    rtt_ms=rtt if rtt == rtt else None,
                    router_id=None if router == NO_ROUTER else router,
                )
            )
        return trace_factory(
            source_id=self.source_id[index],
            platform=self.platform[index],
            src_asn=self.src_asn[index],
            dst_address=self.dst_address[index],
            hops=tuple(hops),
            reached=bool(self.reached[index]),
        )

    def rebuild_all(self, trace_factory, hop_factory) -> list:
        """Reconstruct every flattened trace, in flatten order."""
        return [
            self.rebuild(index, trace_factory, hop_factory)
            for index in range(len(self))
        ]

    # ------------------------------------------------------------------
    # Slicing codec (shard boundaries)
    # ------------------------------------------------------------------

    def slice(self, indices: Sequence[int]) -> "TraceArrays":
        """A new instance holding ``indices``'s traces, in given order.

        The shard-result codec: a worker flattens just its block and
        the whole answer pickles as a handful of flat buffers.
        """
        sliced = TraceArrays()
        offsets = sliced.trace_offsets
        for index in indices:
            start, stop = self.hop_range(index)
            sliced.hop_address.extend(self.hop_address[start:stop])
            sliced.hop_rtt.extend(self.hop_rtt[start:stop])
            sliced.hop_ttl.extend(self.hop_ttl[start:stop])
            sliced.hop_router.extend(self.hop_router[start:stop])
            offsets.append(len(sliced.hop_address))
            sliced.src_asn.append(self.src_asn[index])
            sliced.dst_address.append(self.dst_address[index])
            sliced.reached.append(self.reached[index])
            sliced.source_id.append(self.source_id[index])
            sliced.platform.append(self.platform[index])
        return sliced

    # ------------------------------------------------------------------
    # Pickling (fork results cross this boundary)
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceArrays):
            return NotImplemented
        for slot in self.__slots__:
            mine = getattr(self, slot)
            theirs = getattr(other, slot)
            if isinstance(mine, array):
                # Bitwise, not elementwise: the NaN RTT sentinel must
                # compare equal to itself for round-trip checks.
                if mine.typecode != theirs.typecode:
                    return False
                if mine.tobytes() != theirs.tobytes():
                    return False
            elif mine != theirs:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceArrays(traces={len(self)}, hops={self.total_hops})"
