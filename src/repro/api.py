"""Stable high-level entry points — the supported public API.

Downstream code (examples, benchmarks, notebooks) comes through this
module and nothing else: these names are kept stable across refactors
of the internal packages, and every symbol the bundled examples and
benchmarks use is re-exported here (lazily, via PEP 562, so importing
``repro.api`` stays cheap).

Batch entry points accept configuration as **keywords only**::

    from repro.api import run_pipeline

    result = run_pipeline(seed=7, scale="small")
    print(result.cfs_result.resolved_fraction())

(The historical positional-config form still works but emits a
:class:`DeprecationWarning`; pass ``config=`` instead.)

The serving surface mirrors the batch one:

* :func:`serve_map` runs the always-on map service — streamed epoch
  ingest, one published snapshot per epoch — and returns a typed
  :class:`ServiceHandle`;
* :func:`open_snapshot` loads a previously published snapshot from a
  file or checkpoint directory, verifying its fingerprint;
* :func:`query` answers one line-protocol query against a snapshot.

Passing both a config and seed/scale keywords is rejected — the config
already fixes the seed and scale.
"""

from __future__ import annotations

import warnings
from dataclasses import replace as _dataclass_replace
from typing import Any

from .core.pipeline import (
    Environment,
    PipelineConfig,
    PipelineResult,
    build_environment as _build_environment,
    run_pipeline as _run_pipeline,
)
from .faults.plan import FaultPlan
from .obs import Instrumentation
from .topology.builder import TopologyConfig, build_topology as _build_topology
from .topology.topology import Topology

__all__ = [
    "Environment",
    "FaultPlan",
    "Instrumentation",
    "MapSnapshot",
    "PipelineConfig",
    "PipelineResult",
    "ServiceHandle",
    "build_environment",
    "build_topology",
    "open_snapshot",
    "query",
    "run_pipeline",
    "serve_map",
]

#: Lazy re-exports (PEP 562): the supported way for downstream code to
#: reach substrate and experiment symbols without deep imports.  Each
#: entry maps a public name to its home ``(module, attribute)``; the
#: import happens on first attribute access.
_REEXPORTS: dict[str, tuple[str, str]] = {
    # -- serving surface ----------------------------------------------
    "MapService": ("repro.serve", "MapService"),
    "MapSnapshot": ("repro.serve", "MapSnapshot"),
    "QueryEngine": ("repro.serve", "QueryEngine"),
    "ServiceHandle": ("repro.serve", "ServiceHandle"),
    "ServiceHealth": ("repro.serve", "ServiceHealth"),
    "ServicePolicy": ("repro.serve", "ServicePolicy"),
    "SoakReport": ("repro.serve.soak", "SoakReport"),
    "build_snapshot": ("repro.serve", "build_snapshot"),
    "query_snapshot": ("repro.serve", "query_snapshot"),
    "run_soak": ("repro.serve.soak", "run_soak"),
    "config_fingerprint": ("repro.checkpoint", "config_fingerprint"),
    # -- temporal churn + disruption detection -------------------------
    "ChurnConfig": ("repro.topology.churn", "ChurnConfig"),
    "ChurnEvent": ("repro.topology.churn", "ChurnEvent"),
    "ChurnPlan": ("repro.topology.churn", "ChurnPlan"),
    "apply_events": ("repro.topology.churn", "apply_events"),
    "plan_churn": ("repro.topology.churn", "plan_churn"),
    "DisruptionDetector": ("repro.inference", "DisruptionDetector"),
    "DisruptionPolicy": ("repro.inference", "DisruptionPolicy"),
    "DisruptionReport": ("repro.inference", "DisruptionReport"),
    "SnapshotDiff": ("repro.inference", "SnapshotDiff"),
    "diff_snapshots": ("repro.serve", "diff_snapshots"),
    "OutageReport": ("repro.serve.outage", "OutageReport"),
    "run_outage": ("repro.serve.outage", "run_outage"),
    # -- experiments ---------------------------------------------------
    "run_ablation": ("repro.experiments", "run_ablation"),
    "run_alias_census": ("repro.experiments", "run_alias_census"),
    "run_as_connectivity_stats": ("repro.experiments", "run_as_connectivity_stats"),
    "run_coverage_growth": ("repro.experiments", "run_coverage_growth"),
    "run_fig2": ("repro.experiments", "run_fig2"),
    "run_fig3": ("repro.experiments", "run_fig3"),
    "run_fig7": ("repro.experiments", "run_fig7"),
    "run_fig8": ("repro.experiments", "run_fig8"),
    "run_fig9": ("repro.experiments", "run_fig9"),
    "run_fig10": ("repro.experiments", "run_fig10"),
    "run_measurement_cost": ("repro.experiments", "run_measurement_cost"),
    "run_multirole_census": ("repro.experiments", "run_multirole_census"),
    "run_proximity_validation": ("repro.experiments", "run_proximity_validation"),
    "run_table1": ("repro.experiments", "run_table1"),
    "role_contrast": ("repro.experiments.fig10", "role_contrast"),
    "clone_corpus": ("repro.experiments.context", "clone_corpus"),
    "experiment_environment": ("repro.experiments.context", "experiment_environment"),
    "experiment_run": ("repro.experiments.context", "experiment_run"),
    # -- chaos / validation / analysis / export ------------------------
    "comparable_export": ("repro.faults.chaos", "comparable_export"),
    "run_chaos": ("repro.faults.chaos", "run_chaos"),
    "score_interfaces": ("repro.validation", "score_interfaces"),
    "CriticalityIndex": ("repro.analysis", "CriticalityIndex"),
    "export_result": ("repro.export", "export_result"),
    "run_lint": ("repro.devtools.cli", "main"),
    # -- measurement substrates ----------------------------------------
    "IpidResponder": ("repro.measurement.ipid", "IpidResponder"),
    "MidarResolver": ("repro.alias.midar", "MidarResolver"),
    "TracerouteEngine": ("repro.measurement.traceroute", "TracerouteEngine"),
    # -- topology and core vocabulary ----------------------------------
    "ASRole": ("repro.topology", "ASRole"),
    "RouteComputer": ("repro.topology", "RouteComputer"),
    "LongestPrefixMatcher": ("repro.topology.addressing", "LongestPrefixMatcher"),
    "MAX_IPV4": ("repro.topology.addressing", "MAX_IPV4"),
    "Prefix": ("repro.topology.addressing", "Prefix"),
    "int_to_ip": ("repro.topology.addressing", "int_to_ip"),
    "ip_to_int": ("repro.topology.addressing", "ip_to_int"),
    "InterfaceStatus": ("repro.core.types", "InterfaceStatus"),
    "PeeringKind": ("repro.core.types", "PeeringKind"),
}


def __getattr__(name: str) -> Any:
    entry = _REEXPORTS.get(name)
    if entry is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module_name, attribute = entry
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(__all__) | set(_REEXPORTS) | set(globals()))


def _resolve_config(
    config: PipelineConfig | None, seed: int | None, scale: str | None
) -> PipelineConfig:
    if config is not None:
        if seed is not None or scale is not None:
            raise ValueError(
                "pass either config= or seed=/scale=, not both: the config "
                "already fixes the seed and scale"
            )
        return config
    return PipelineConfig.for_scale(scale or "small", seed=seed or 0)


def _shim_positional_config(args: tuple, config: Any, what: str) -> Any:
    """Accept the historical positional-config form, with a warning."""
    if not args:
        return config
    if len(args) > 1:
        raise TypeError(
            f"{what}() takes at most one positional argument "
            f"({len(args)} given); everything else is keyword-only"
        )
    if config is not None:
        raise TypeError(
            f"{what}() got the config both positionally and as config="
        )
    warnings.warn(
        f"passing the config to {what}() positionally is deprecated; "
        f"use {what}(config=...)",
        DeprecationWarning,
        stacklevel=3,
    )
    return args[0]


def run_pipeline(
    *args: PipelineConfig,
    config: PipelineConfig | None = None,
    seed: int | None = None,
    scale: str | None = None,
    instrumentation: Instrumentation | None = None,
    faults: FaultPlan | None = None,
    workers: int | None = None,
    checkpoint_dir: str | None = None,
    resume: bool = False,
    shard_timeout: float | None = None,
    progress=None,
) -> PipelineResult:
    """Build an environment, run the campaign, run CFS.

    ``instrumentation`` (optional) collects counters, stage timings and
    events across the campaign and the CFS loop; the frozen snapshot
    lands on ``result.cfs_result.metrics`` either way.

    ``faults`` (optional) installs a fault-injection plan on top of the
    resolved config; a zero plan produces byte-identical output to no
    plan at all.

    ``workers`` (optional) overrides the resolved config's process-pool
    width; any width produces byte-identical results, so parallelism is
    purely a wall-clock knob.

    ``checkpoint_dir`` (optional) durably checkpoints each completed
    stage there; ``resume=True`` additionally loads every intact stage
    instead of recomputing it (corrupt stages degrade to recompute with
    a warning).  A resumed run's output is byte-identical to an
    uninterrupted one.  ``shard_timeout`` (seconds) sets the executor
    supervisor's per-shard progress deadline, and ``progress`` receives
    human-readable stage/checkpoint notices.
    """
    config = _shim_positional_config(args, config, "run_pipeline")
    resolved = _resolve_config(config, seed, scale)
    if faults is not None:
        resolved = _dataclass_replace(resolved, faults=faults)
    if workers is not None:
        resolved = _dataclass_replace(resolved, workers=workers)
    if checkpoint_dir is not None or resume:
        resolved = _dataclass_replace(
            resolved, checkpoint_dir=checkpoint_dir, resume=resume
        )
    if shard_timeout is not None:
        resolved = _dataclass_replace(resolved, shard_timeout_s=shard_timeout)
    return _run_pipeline(
        resolved, instrumentation=instrumentation, progress=progress
    )


def build_environment(
    *args: PipelineConfig,
    config: PipelineConfig | None = None,
    seed: int | None = None,
    scale: str | None = None,
    faults: FaultPlan | None = None,
    workers: int | None = None,
    shard_timeout: float | None = None,
) -> Environment:
    """Wire the full measurement stack without running anything.

    ``faults`` installs a fault-injection plan, ``workers`` sets the
    process-pool width, and ``shard_timeout`` the supervisor's
    per-shard deadline, on top of the resolved config (see
    :func:`run_pipeline`).
    """
    config = _shim_positional_config(args, config, "build_environment")
    resolved = _resolve_config(config, seed, scale)
    if faults is not None:
        resolved = _dataclass_replace(resolved, faults=faults)
    if workers is not None:
        resolved = _dataclass_replace(resolved, workers=workers)
    if shard_timeout is not None:
        resolved = _dataclass_replace(resolved, shard_timeout_s=shard_timeout)
    return _build_environment(resolved)


def build_topology(
    *args: TopologyConfig,
    config: TopologyConfig | None = None,
    seed: int | None = None,
    scale: str | None = None,
) -> Topology:
    """Generate one ground-truth Internet.

    With ``seed=``/``scale=``, the topology is the same one
    :func:`run_pipeline` would study at that seed and scale (the
    pipeline derives its topology seed from the master seed).
    """
    config = _shim_positional_config(args, config, "build_topology")
    if config is None:
        config = _resolve_config(None, seed, scale).topology
    elif seed is not None or scale is not None:
        raise ValueError(
            "pass either config= or seed=/scale=, not both: the config "
            "already fixes the seed and scale"
        )
    return _build_topology(config)


# ---------------------------------------------------------------------
# Serving surface
# ---------------------------------------------------------------------


def serve_map(
    *,
    config: PipelineConfig | None = None,
    seed: int | None = None,
    scale: str | None = None,
    epochs: int = 4,
    stop_after_epoch: int | None = None,
    instrumentation: Instrumentation | None = None,
    faults: FaultPlan | None = None,
    checkpoint_dir: str | None = None,
    resume: bool = False,
    policy: Any = None,
    progress=None,
) -> "ServiceHandle":
    """Run the always-on map service over a streamed campaign.

    The campaign plan executes in ``epochs`` contiguous slices; after
    each, an interim snapshot is published (durably, when
    ``checkpoint_dir`` is set) and swapped into the read path.  The
    returned :class:`ServiceHandle` exposes the published history, the
    final converged snapshot — fingerprint-identical to
    :func:`run_pipeline`'s map for the same config — and a live
    ``query()``.

    ``stop_after_epoch=k`` pauses after epoch ``k`` (``final`` stays
    ``None``); a later call with ``resume=True`` and the same
    ``checkpoint_dir`` restores mid-stream state and continues.

    ``policy`` (a :class:`~repro.serve.ServicePolicy`) tunes the
    supervisor: epoch retry budget, publish retry budget, snapshot
    retention, and the staleness threshold behind the ``health`` verb.
    """
    from .serve import MapService

    resolved = _resolve_config(config, seed, scale)
    if faults is not None:
        resolved = _dataclass_replace(resolved, faults=faults)
    if checkpoint_dir is not None or resume:
        resolved = _dataclass_replace(
            resolved, checkpoint_dir=checkpoint_dir, resume=resume
        )
    service = MapService(
        resolved,
        instrumentation=instrumentation,
        policy=policy,
        progress=progress,
    )
    return service.run_stream(epochs, stop_after_epoch=stop_after_epoch)


def open_snapshot(path: str) -> "MapSnapshot":
    """Load a published :class:`MapSnapshot` from a file or directory.

    ``path`` may be one snapshot stage file or a checkpoint directory
    (the final snapshot is preferred, else the highest epoch).  The
    snapshot's content fingerprint is re-verified on load; tampered or
    truncated payloads raise :class:`ValueError`.
    """
    from .serve import open_snapshot as _open

    return _open(path)


def query(snapshot: "MapSnapshot", line: str) -> dict[str, Any]:
    """Answer one line-protocol query against ``snapshot``.

    See :mod:`repro.serve.query` for the protocol (``iface <addr>``,
    ``link <asn> <asn>``, ``tenants <facility>``, ``info``, ``help``).
    """
    from .serve import query_snapshot

    return query_snapshot(snapshot, line)
