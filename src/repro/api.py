"""Stable high-level entry points — the supported public API.

Downstream code (examples, benchmarks, notebooks) should come through
this module instead of deep-importing pipeline internals: these
signatures are kept stable across refactors of ``repro.core``.

Every entry point accepts either an explicit config object
(positionally, matching the historical signatures) or the ``seed=`` /
``scale=`` keywords, where ``scale`` is one of ``"small"``,
``"default"`` or ``"large"``::

    from repro.api import run_pipeline

    result = run_pipeline(seed=7, scale="small")
    print(result.cfs_result.resolved_fraction())

Passing both a config and seed/scale keywords is rejected — the config
already fixes the seed and scale.
"""

from __future__ import annotations

from dataclasses import replace as _dataclass_replace

from .core.pipeline import (
    Environment,
    PipelineConfig,
    PipelineResult,
    build_environment as _build_environment,
    run_pipeline as _run_pipeline,
)
from .faults.plan import FaultPlan
from .obs import Instrumentation
from .topology.builder import TopologyConfig, build_topology as _build_topology
from .topology.topology import Topology

__all__ = [
    "Environment",
    "FaultPlan",
    "PipelineConfig",
    "PipelineResult",
    "build_environment",
    "build_topology",
    "run_pipeline",
]


def _resolve_config(
    config: PipelineConfig | None, seed: int | None, scale: str | None
) -> PipelineConfig:
    if config is not None:
        if seed is not None or scale is not None:
            raise ValueError(
                "pass either config= or seed=/scale=, not both: the config "
                "already fixes the seed and scale"
            )
        return config
    return PipelineConfig.for_scale(scale or "small", seed=seed or 0)


def run_pipeline(
    config: PipelineConfig | None = None,
    *,
    seed: int | None = None,
    scale: str | None = None,
    instrumentation: Instrumentation | None = None,
    faults: FaultPlan | None = None,
    workers: int | None = None,
    checkpoint_dir: str | None = None,
    resume: bool = False,
    shard_timeout: float | None = None,
    progress=None,
) -> PipelineResult:
    """Build an environment, run the campaign, run CFS.

    ``instrumentation`` (optional) collects counters, stage timings and
    events across the campaign and the CFS loop; the frozen snapshot
    lands on ``result.cfs_result.metrics`` either way.

    ``faults`` (optional) installs a fault-injection plan on top of the
    resolved config; a zero plan produces byte-identical output to no
    plan at all.

    ``workers`` (optional) overrides the resolved config's process-pool
    width; any width produces byte-identical results, so parallelism is
    purely a wall-clock knob.

    ``checkpoint_dir`` (optional) durably checkpoints each completed
    stage there; ``resume=True`` additionally loads every intact stage
    instead of recomputing it (corrupt stages degrade to recompute with
    a warning).  A resumed run's output is byte-identical to an
    uninterrupted one.  ``shard_timeout`` (seconds) sets the executor
    supervisor's per-shard progress deadline, and ``progress`` receives
    human-readable stage/checkpoint notices.
    """
    resolved = _resolve_config(config, seed, scale)
    if faults is not None:
        resolved = _dataclass_replace(resolved, faults=faults)
    if workers is not None:
        resolved = _dataclass_replace(resolved, workers=workers)
    if checkpoint_dir is not None or resume:
        resolved = _dataclass_replace(
            resolved, checkpoint_dir=checkpoint_dir, resume=resume
        )
    if shard_timeout is not None:
        resolved = _dataclass_replace(resolved, shard_timeout_s=shard_timeout)
    return _run_pipeline(
        resolved, instrumentation=instrumentation, progress=progress
    )


def build_environment(
    config: PipelineConfig | None = None,
    *,
    seed: int | None = None,
    scale: str | None = None,
    faults: FaultPlan | None = None,
    workers: int | None = None,
    shard_timeout: float | None = None,
) -> Environment:
    """Wire the full measurement stack without running anything.

    ``faults`` installs a fault-injection plan, ``workers`` sets the
    process-pool width, and ``shard_timeout`` the supervisor's
    per-shard deadline, on top of the resolved config (see
    :func:`run_pipeline`).
    """
    resolved = _resolve_config(config, seed, scale)
    if faults is not None:
        resolved = _dataclass_replace(resolved, faults=faults)
    if workers is not None:
        resolved = _dataclass_replace(resolved, workers=workers)
    if shard_timeout is not None:
        resolved = _dataclass_replace(resolved, shard_timeout_s=shard_timeout)
    return _build_environment(resolved)


def build_topology(
    config: TopologyConfig | None = None,
    *,
    seed: int | None = None,
    scale: str | None = None,
) -> Topology:
    """Generate one ground-truth Internet.

    With ``seed=``/``scale=``, the topology is the same one
    :func:`run_pipeline` would study at that seed and scale (the
    pipeline derives its topology seed from the master seed).
    """
    if config is None:
        config = _resolve_config(None, seed, scale).topology
    elif seed is not None or scale is not None:
        raise ValueError(
            "pass either config= or seed=/scale=, not both: the config "
            "already fixes the seed and scale"
        )
    return _build_topology(config)
