"""The ``repro-lint`` entry point (also backing ``repro lint``).

Usage::

    repro-lint [PATH] [--format text|json] [--rule R00X] [--baseline [FILE]]
               [--no-flow] [--graph FILE]

PATH defaults to the installed ``repro`` package, so a bare
``repro-lint`` checks this repository's own invariants.  Exit status:
0 clean, 1 findings, 2 usage/configuration error (missing path,
unknown rule, unreadable baseline) — errors are one line on stderr,
never a traceback.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from ..cliutil import cli_error
from .lint import LintError, run_lint
from .report import (
    load_baseline,
    render_json,
    render_text,
    subtract_baseline,
    write_baseline,
)
from .rules import rule_catalog

__all__ = ["main", "build_parser", "add_lint_arguments", "run_lint_command"]

DEFAULT_BASELINE = ".reprolint-baseline.json"


def _default_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared lint options (used by both entry points)."""
    parser.add_argument(
        "path",
        nargs="?",
        default=None,
        help="file or directory to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        metavar="R00X",
        default=None,
        help="run only this rule (repeatable; default: all rules)",
    )
    parser.add_argument(
        "--baseline",
        nargs="?",
        const=DEFAULT_BASELINE,
        default=None,
        metavar="FILE",
        help="gate only findings absent from FILE (default "
        f"{DEFAULT_BASELINE}); records the current findings when FILE "
        "does not exist yet",
    )
    parser.add_argument(
        "--no-flow",
        dest="flow",
        action="store_false",
        help="skip the interprocedural flow rules (R011-R014)",
    )
    parser.add_argument(
        "--graph",
        metavar="FILE",
        default=None,
        help="also write the flow engine's import/call graph to FILE "
        "as JSON",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )


def run_lint_command(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit status."""
    if args.list_rules:
        for rule_id, title in rule_catalog().items():
            print(f"{rule_id}  {title}")
        return 0
    try:
        root = Path(args.path) if args.path is not None else _default_root()
        result = run_lint(
            root,
            rules=args.rule,
            flow=getattr(args, "flow", True),
            graph=args.graph,
        )
        if args.baseline is not None:
            baseline_path = Path(args.baseline)
            if baseline_path.exists():
                result = subtract_baseline(
                    result, load_baseline(baseline_path)
                )
            else:
                write_baseline(baseline_path, result)
                print(
                    f"baseline recorded: {len(result.findings)} finding(s) "
                    f"-> {baseline_path}"
                )
                return 0
    except LintError as error:
        return cli_error(str(error))
    if args.format == "json":
        print(render_json(result), end="")
    else:
        print(render_text(result))
    return 1 if result.findings else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="reprolint: determinism and observability invariants "
        "for the repro tree",
    )
    add_lint_arguments(parser)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Console-script entry point."""
    return run_lint_command(build_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
