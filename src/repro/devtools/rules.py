"""The reprolint rules (R001–R014).

Each rule is a class with an ``id``, a ``title``, a per-file
``check_file(source, project)`` pass, and an optional cross-file
``finalize(project)`` pass that runs after every file has been scanned
(used by R004's dead-registry-entry check and by all flow rules).

R001–R010 are deliberately heuristic: they reason locally (per module,
per function) with a small amount of project-wide indexing (frozen
dataclasses, the event registry) rather than whole-program type
inference.  R011–R014 live in :mod:`repro.devtools.flow` and consume
the interprocedural engine (symbol table, call graph, taint solver).
False positives are expected to be rare and are silenced with an
inline ``# reprolint: disable=R00X <reason>`` comment, which doubles
as documentation of why the flagged line is actually safe.

The table below is the canonical catalog; each row's second column is
the rule's ``title`` verbatim, and a tier-1 test asserts it matches
both ``rule_catalog()`` and DESIGN.md's rule list.

| id   | title                                                            |
|------|------------------------------------------------------------------|
| R001 | no unseeded randomness                                           |
| R002 | no wall-clock/environment reads in inference layers              |
| R003 | set/dict.keys() iteration feeding an output must be sorted       |
| R004 | emitted event names declared in EVENT_NAMES                      |
| R005 | no mutation of frozen config objects outside their module        |
| R006 | CLI error exits route through cli_error (exit 2)                 |
| R007 | process-pool imports are confined to repro/exec                  |
| R008 | checkpoint writes go through the atomic helper                   |
| R009 | serve query handlers never mutate snapshot objects               |
| R010 | service health state changes only via its transition method      |
| R011 | pipeline RNG draws derive from substream or an explicit seed     |
| R012 | thread-shared state mutates only at documented atomic points     |
| R013 | supervised boundaries contain every non-contract exception       |
| R014 | module imports respect the layering DAG                          |
"""

from __future__ import annotations

import ast
from typing import Iterable, Sequence

from .flow.rules_flow import FLOW_RULES
from .lint import Finding, LintError, Project, Rule, SourceFile, parent_of

__all__ = [
    "Rule",
    "ALL_RULES",
    "FLOW_RULE_IDS",
    "make_rules",
    "rule_catalog",
]


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------


def _import_map(tree: ast.Module) -> dict[str, str]:
    """Local name -> dotted origin for every import in the module.

    ``import random`` maps ``random -> random``; ``from random import
    Random`` maps ``Random -> random.Random``; aliases follow the
    ``asname``.
    """
    mapping: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            # The attr index wrongly types ast.Import.names as a set
            # (it shares its name with _SetTyping.names).
            # reprolint: disable=R003 ast.Import.names is a list
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else local
                mapping[local] = origin
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            # reprolint: disable=R003 ast.ImportFrom.names is a list
            for alias in node.names:
                mapping[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return mapping


def _qualname(node: ast.expr, imports: dict[str, str]) -> str | None:
    """Resolve ``Name``/``Attribute`` chains through the import map.

    ``datetime.datetime.now`` with ``import datetime`` resolves to
    ``"datetime.datetime.now"``; unresolvable bases return None.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = imports.get(node.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def _in_dirs(source: SourceFile, dirs: frozenset[str]) -> bool:
    return bool(set(source.rel.split("/")[:-1]) & dirs)


def _scope_walk(scope: ast.AST) -> Iterable[ast.AST]:
    """Walk ``scope`` without descending into nested function bodies
    (each function is analysed as its own scope)."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


# ----------------------------------------------------------------------
# R001 — no unseeded randomness
# ----------------------------------------------------------------------


class UnseededRandomness(Rule):
    """``random.random()`` and friends draw from the process-global RNG
    whose stream any import can perturb; ``Random()`` with no arguments
    seeds from the OS.  Either breaks fixed-seed reproducibility."""

    id = "R001"
    title = "no unseeded randomness"

    _MODULE_FUNCS_MESSAGE = (
        "uses the process-global random stream; draw from a seeded "
        "random.Random instance instead"
    )

    def check_file(
        self, source: SourceFile, project: Project
    ) -> Iterable[Finding]:
        imports = _import_map(source.tree)
        call_funcs: set[int] = set()
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            call_funcs.add(id(node.func))
            qual = _qualname(node.func, imports)
            if qual is None:
                continue
            if qual == "random.Random":
                if not node.args and not node.keywords:
                    yield self.finding(
                        source,
                        node,
                        "Random() with no seed argument seeds from the OS",
                    )
            elif qual == "random.SystemRandom":
                yield self.finding(
                    source, node, "SystemRandom draws OS entropy; unseedable"
                )
            elif qual.startswith("random."):
                yield self.finding(
                    source, node, f"{qual}() {self._MODULE_FUNCS_MESSAGE}"
                )
        # References to module-level random functions outside call
        # position (e.g. passing random.shuffle as a callback).
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Attribute) or id(node) in call_funcs:
                continue
            if isinstance(parent_of(node), ast.Attribute):
                continue
            qual = _qualname(node, imports)
            if (
                qual is not None
                and qual.startswith("random.")
                and qual not in ("random.Random", "random.SystemRandom")
            ):
                yield self.finding(
                    source, node, f"{qual} {self._MODULE_FUNCS_MESSAGE}"
                )


# ----------------------------------------------------------------------
# R002 — no wall-clock or environment nondeterminism in core layers
# ----------------------------------------------------------------------


class WallClockInCore(Rule):
    """The inference layers must be pure functions of (topology, seed).
    Wall-clock and environment reads make two runs with the same seed
    observe different inputs."""

    id = "R002"
    title = "no wall-clock/environment reads in inference layers"

    SCOPE = frozenset({"core", "topology", "faults", "alias", "measurement"})
    _BANNED = {
        "time.time": "wall-clock read",
        "time.time_ns": "wall-clock read",
        "datetime.datetime.now": "wall-clock read",
        "datetime.datetime.utcnow": "wall-clock read",
        "datetime.datetime.today": "wall-clock read",
        "datetime.date.today": "wall-clock read",
        "os.environ": "environment read",
        "os.getenv": "environment read",
        "os.urandom": "OS entropy read",
    }

    def check_file(
        self, source: SourceFile, project: Project
    ) -> Iterable[Finding]:
        if not _in_dirs(source, self.SCOPE):
            return
        imports = _import_map(source.tree)
        seen: set[int] = set()
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            if id(node) in seen:
                continue
            qual = _qualname(node, imports)
            if qual is None or qual not in self._BANNED:
                continue
            # Flag the outermost matching chain once, not each link.
            for child in ast.walk(node):
                seen.add(id(child))
            yield self.finding(
                source,
                node,
                f"{qual} is a {self._BANNED[qual]}; the inference layers "
                "must depend only on (topology, seed)",
            )


# ----------------------------------------------------------------------
# R003 — unsorted set iteration feeding outputs
# ----------------------------------------------------------------------


_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)
_MUTATORS = frozenset({"append", "extend", "add", "update", "insert"})
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


class _AttrIndex:
    """Project-wide attribute-annotation index for set inference.

    Any ``name: set[...]`` / ``name: frozenset[...]`` annotation in the
    tree (dataclass field, class attribute, ``self.name`` in an
    ``__init__``) marks that attribute name as set-typed wherever it is
    read; ``name: dict[..., set[...]]`` marks it as a set-valued
    mapping, so ``obj.name[key]`` and ``obj.name.get(key, ...)`` are
    sets too.  Indexing by bare attribute name (not class-qualified) is
    a deliberate overapproximation — the repository names set-typed
    fields consistently, and a rare collision is one suppression away.
    """

    def __init__(self, project: Project) -> None:
        self.set_attrs: set[str] = set()
        self.mapping_attrs: set[str] = set()
        #: Function/method names annotated ``-> set[...]`` anywhere in
        #: the tree: their call results are set-typed at every call
        #: site (same bare-name overapproximation as the attributes).
        self.set_returning: set[str] = set()
        for source in project.files:
            for node in ast.walk(source.tree):
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    if node.returns is not None and _is_set_annotation(
                        node.returns
                    ):
                        self.set_returning.add(node.name)
                    continue
                if not isinstance(node, ast.AnnAssign):
                    continue
                target = node.target
                name = (
                    target.id
                    if isinstance(target, ast.Name)
                    else target.attr
                    if isinstance(target, ast.Attribute)
                    else None
                )
                if name is None:
                    continue
                if _is_set_annotation(node.annotation):
                    self.set_attrs.add(name)
                elif _is_dict_of_set_annotation(node.annotation):
                    self.mapping_attrs.add(name)


class _SetTyping:
    """Order-insensitive inference of set-typed expressions within one
    scope (function body or module top level), local annotations plus
    the project-wide attribute index."""

    def __init__(self, scope: ast.AST, index: _AttrIndex) -> None:
        self.names: set[str] = set()
        self.mappings: set[str] = set(index.mapping_attrs)
        self._index = index
        if isinstance(
            scope, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            for arg in [
                *scope.args.posonlyargs,
                *scope.args.args,
                *scope.args.kwonlyargs,
            ]:
                if arg.annotation is None:
                    continue
                if _is_set_annotation(arg.annotation):
                    self.names.add(arg.arg)
                elif _is_dict_of_set_annotation(arg.annotation):
                    self.mappings.add(arg.arg)
        # Two passes so `a = set(); b = a | other` resolves either way
        # statements are ordered.
        for _ in range(2):
            for node in _scope_walk(scope):
                if isinstance(node, ast.Assign):
                    if self.is_set_expr(node.value):
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                self.names.add(target.id)
                elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    if _is_set_annotation(node.annotation) or (
                        node.value is not None
                        and self.is_set_expr(node.value)
                    ):
                        self.names.add(node.target.id)
                    elif _is_dict_of_set_annotation(node.annotation):
                        self.mappings.add(node.target.id)

    def _is_mapping_expr(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.mappings
        if isinstance(node, ast.Attribute):
            return node.attr in self.mappings
        return False

    def is_set_expr(self, node: ast.expr) -> bool:
        """Is ``node`` a set (or dict-keys view) by local evidence or
        the project-wide annotation index?"""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Attribute):
            return node.attr in self._index.set_attrs
        if isinstance(node, ast.Subscript):
            # Lookups in a dict-of-sets yield sets.
            return self._is_mapping_expr(node.value)
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            return self.is_set_expr(node.left) or self.is_set_expr(
                node.right
            )
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in (
                "set",
                "frozenset",
            ):
                return True
            if isinstance(func, ast.Attribute):
                if func.attr == "keys":
                    return True
                if func.attr in _SET_METHODS and self.is_set_expr(
                    func.value
                ):
                    return True
                # d.get(key, set()) — a dict of sets (by annotation or
                # by its default argument); the lookup is a set.
                if func.attr == "get" and (
                    self._is_mapping_expr(func.value)
                    or any(self.is_set_expr(arg) for arg in node.args)
                ):
                    return True
            # Calls of functions/methods annotated `-> set[...]`
            # anywhere in the tree (the open_keys() class of bug: a
            # set-returning method consumed directly by a sink).
            callee = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if callee in self._index.set_returning:
                return True
        return False


def _is_set_annotation(node: ast.expr) -> bool:
    # `set[int] | None` style optionals still mark the name set-typed.
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _is_set_annotation(node.left) or _is_set_annotation(
            node.right
        )
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset", "Set", "FrozenSet")
    if isinstance(node, ast.Attribute):
        return node.attr in ("Set", "FrozenSet", "AbstractSet")
    return False


_MAPPING_NAMES = ("dict", "Dict", "Mapping", "MutableMapping", "defaultdict")


def _is_dict_of_set_annotation(node: ast.expr) -> bool:
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _is_dict_of_set_annotation(
            node.left
        ) or _is_dict_of_set_annotation(node.right)
    if not isinstance(node, ast.Subscript):
        return False
    base = node.value
    base_name = (
        base.id
        if isinstance(base, ast.Name)
        else base.attr if isinstance(base, ast.Attribute) else None
    )
    if base_name not in _MAPPING_NAMES:
        return False
    if isinstance(node.slice, ast.Tuple) and len(node.slice.elts) == 2:
        return _is_set_annotation(node.slice.elts[1])
    return False


def _unwrap_iterable(node: ast.expr) -> tuple[ast.expr, bool]:
    """Strip ``enumerate``/``list``/``tuple`` wrappers; report whether a
    ``sorted(...)`` wrapper was seen anywhere in the chain."""
    while (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("enumerate", "list", "tuple", "reversed")
        and node.args
    ):
        node = node.args[0]
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("sorted", "min", "max", "sum", "len", "any", "all")
    ):
        return node, True
    return node, False


def _is_sink_call(node: ast.Call, project: Project) -> bool:
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "emit":
        return True
    name = (
        func.id
        if isinstance(func, ast.Name)
        else func.attr if isinstance(func, ast.Attribute) else None
    )
    if name is None:
        return False
    if name in project.frozen_dataclasses:
        return True
    # Export helpers and record constructors by naming convention.
    return name.endswith("_record") or name.startswith("export_")


class UnsortedSetIteration(Rule):
    """Set iteration order is a function of element hashes and
    insertion history, not of the data's meaning; when it feeds a
    ``yield``/``return``/``emit()``/record constructor, the output
    order silently depends on it.  Route such iteration through
    ``sorted(...)``."""

    id = "R003"
    title = "set/dict.keys() iteration feeding an output must be sorted"

    def __init__(self) -> None:
        self._index: _AttrIndex | None = None

    def check_file(
        self, source: SourceFile, project: Project
    ) -> Iterable[Finding]:
        if self._index is None:
            self._index = _AttrIndex(project)
        scopes: list[ast.AST] = [source.tree]
        scopes.extend(
            node
            for node in ast.walk(source.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            yield from self._check_scope(source, project, scope)

    def _check_scope(
        self, source: SourceFile, project: Project, scope: ast.AST
    ) -> Iterable[Finding]:
        assert self._index is not None
        typing_ = _SetTyping(scope, self._index)
        returned = self._returned_names(scope)
        for node in _scope_walk(scope):
            # SetComp is exempt: building a *set* from a set is
            # order-free; R003 fires where iteration leaves set-land.
            if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for comp in node.generators:
                    iterable, is_sorted = _unwrap_iterable(comp.iter)
                    if is_sorted or not typing_.is_set_expr(iterable):
                        continue
                    if self._comp_feeds_sink(node, project):
                        yield self.finding(
                            source,
                            comp.iter,
                            "comprehension iterates a set in output "
                            "position; wrap the iterable in sorted(...)",
                        )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                iterable, is_sorted = _unwrap_iterable(node.iter)
                if is_sorted or not typing_.is_set_expr(iterable):
                    continue
                sink = self._loop_feeds_sink(
                    node, returned, typing_, project
                )
                if sink is not None:
                    yield self.finding(
                        source,
                        node.iter,
                        f"loop iterates a set and {sink}; wrap the "
                        "iterable in sorted(...)",
                    )

    @staticmethod
    def _returned_names(scope: ast.AST) -> set[str]:
        names: set[str] = set()
        for node in _scope_walk(scope):
            value = None
            if isinstance(node, ast.Return):
                value = node.value
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                value = node.value
            if isinstance(value, ast.Name):
                names.add(value.id)
        return names

    @staticmethod
    def _comp_feeds_sink(node: ast.AST, project: Project) -> bool:
        current: ast.AST | None = node
        while current is not None:
            parent = parent_of(current)
            if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
                return True
            if isinstance(parent, ast.Call) and _is_sink_call(
                parent, project
            ):
                return True
            if isinstance(parent, ast.stmt):
                return False
            current = parent
        return False

    def _loop_feeds_sink(
        self,
        loop: ast.For | ast.AsyncFor,
        returned: set[str],
        typing_: _SetTyping,
        project: Project,
    ) -> str | None:
        for node in ast.walk(loop):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return "yields from its body"
            if isinstance(node, ast.Return) and node.value is not None:
                return "returns from its body"
            if isinstance(node, ast.Call) and _is_sink_call(node, project):
                func = node.func
                label = (
                    func.attr
                    if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name) else "a sink"
                )
                return f"calls {label}() in its body"
            # Accumulating into a value the function later returns.
            target_name: str | None = None
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
                and isinstance(node.func.value, ast.Name)
            ):
                target_name = node.func.value.id
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        target_name = target.value.id
            if (
                target_name is not None
                and target_name in returned
                # Filling a *set* accumulator is order-free; the order
                # question re-arises (and is re-checked) wherever that
                # set is itself iterated.
                and target_name not in typing_.names
            ):
                return f"fills returned value {target_name!r} in its body"
        return None


# ----------------------------------------------------------------------
# R004 — emitted event names must be registered
# ----------------------------------------------------------------------


class EventNamespace(Rule):
    """Every ``emit("<name>", ...)`` / ``ObsEvent(name="<name>")``
    string literal must be declared in ``EVENT_NAMES``
    (``repro/obs/events.py``); registry entries nothing emits are dead
    and flagged at their declaration."""

    id = "R004"
    title = "emitted event names declared in EVENT_NAMES"

    def __init__(self) -> None:
        self._emitted: set[str] = set()
        self._sites = 0

    @staticmethod
    def _emit_name(node: ast.Call) -> str | None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "emit":
            if node.args and isinstance(node.args[0], ast.Constant):
                value = node.args[0].value
                if isinstance(value, str):
                    return value
            return None
        if isinstance(func, ast.Name) and func.id == "ObsEvent":
            for keyword in node.keywords:
                if keyword.arg == "name" and isinstance(
                    keyword.value, ast.Constant
                ):
                    value = keyword.value.value
                    if isinstance(value, str):
                        return value
            if node.args and isinstance(node.args[0], ast.Constant):
                value = node.args[0].value
                if isinstance(value, str):
                    return value
        return None

    def check_file(
        self, source: SourceFile, project: Project
    ) -> Iterable[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = self._emit_name(node)
            if name is None:
                continue
            self._sites += 1
            self._emitted.add(name)
            if (
                project.event_names is not None
                and name not in project.event_names
            ):
                yield self.finding(
                    source,
                    node,
                    f"event name {name!r} is not declared in EVENT_NAMES "
                    "(repro/obs/events.py)",
                )

    def finalize(self, project: Project) -> Iterable[Finding]:
        if project.event_names is None:
            if self._sites:
                source = project.files[0]
                yield Finding(
                    rule=self.id,
                    path=source.rel,
                    line=1,
                    col=0,
                    message=(
                        f"{self._sites} emit sites but no EVENT_NAMES "
                        "registry (obs/events.py) under the linted root"
                    ),
                )
            return
        registry = (
            project.file(project.registry_rel)
            if project.registry_rel is not None
            else None
        )
        for name in sorted(set(project.event_names) - self._emitted):
            yield Finding(
                rule=self.id,
                path=project.registry_rel or "",
                line=project.registry_lines.get(name, 1),
                col=0,
                message=(
                    f"EVENT_NAMES entry {name!r} has no emit site; "
                    "remove the dead registration"
                ),
            )
        del registry


# ----------------------------------------------------------------------
# R005 — frozen config objects are immutable outside their module
# ----------------------------------------------------------------------


class FrozenConfigMutation(Rule):
    """Frozen dataclasses advertise value semantics; writing through
    ``object.__setattr__`` (or plain attribute assignment the runtime
    will reject) from another module reintroduces spooky action the
    freeze was meant to rule out.  Derive a new instance instead
    (``dataclasses.replace`` / ``.replace()``)."""

    id = "R005"
    title = "no mutation of frozen config objects outside their module"

    def check_file(
        self, source: SourceFile, project: Project
    ) -> Iterable[Finding]:
        frozen = project.frozen_dataclasses
        for scope in self._scopes(source.tree):
            local_types = self._infer_local_types(scope, frozen)
            for node in _scope_walk(scope):
                yield from self._check_node(
                    source, node, local_types, frozen
                )

    @staticmethod
    def _scopes(tree: ast.Module) -> list[ast.AST]:
        scopes: list[ast.AST] = [tree]
        scopes.extend(
            node
            for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        return scopes

    @staticmethod
    def _infer_local_types(
        scope: ast.AST, frozen: dict[str, str]
    ) -> dict[str, str]:
        types: dict[str, str] = {}
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for arg in [
                *scope.args.posonlyargs,
                *scope.args.args,
                *scope.args.kwonlyargs,
            ]:
                name = _annotation_name(arg.annotation)
                if name in frozen:
                    types[arg.arg] = name
        for node in _scope_walk(scope):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                ctor = node.value.func
                ctor_name = (
                    ctor.id
                    if isinstance(ctor, ast.Name)
                    else ctor.attr if isinstance(ctor, ast.Attribute) else None
                )
                if ctor_name in frozen:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            types[target.id] = ctor_name
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                name = _annotation_name(node.annotation)
                if name in frozen:
                    types[node.target.id] = name
        return types

    def _check_node(
        self,
        source: SourceFile,
        node: ast.AST,
        local_types: dict[str, str],
        frozen: dict[str, str],
    ) -> Iterable[Finding]:
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                ):
                    continue
                cls = local_types.get(target.value.id)
                if cls is not None and frozen.get(cls) != source.rel:
                    yield self.finding(
                        source,
                        target,
                        f"assigns {target.value.id}.{target.attr} on frozen "
                        f"{cls} (defined in {frozen[cls]}); derive a new "
                        "instance instead",
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "__setattr__"
                and isinstance(func.value, ast.Name)
                and func.value.id == "object"
                and node.args
                and not (
                    isinstance(node.args[0], ast.Name)
                    and node.args[0].id == "self"
                )
            ):
                yield self.finding(
                    source,
                    node,
                    "object.__setattr__ on a non-self target bypasses a "
                    "dataclass freeze; derive a new instance instead",
                )
            elif (
                isinstance(func, ast.Name)
                and func.id == "setattr"
                and node.args
                and isinstance(node.args[0], ast.Name)
            ):
                cls = local_types.get(node.args[0].id)
                if cls is not None and frozen.get(cls) != source.rel:
                    yield self.finding(
                        source,
                        node,
                        f"setattr on frozen {cls} (defined in "
                        f"{frozen[cls]}); derive a new instance instead",
                    )


def _annotation_name(annotation: ast.expr | None) -> str | None:
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        return annotation.value.split(".")[-1].strip()
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    return None


# ----------------------------------------------------------------------
# R006 — CLI error exits use the shared helper
# ----------------------------------------------------------------------


class CliExitDiscipline(Rule):
    """CLI modules report failures as one ``error:`` line on stderr and
    exit status 2 via :func:`repro.cliutil.cli_error` — never an ad-hoc
    ``sys.exit(1)`` (and never a traceback)."""

    id = "R006"
    title = "CLI error exits route through cli_error (exit 2)"

    def check_file(
        self, source: SourceFile, project: Project
    ) -> Iterable[Finding]:
        basename = source.rel.rsplit("/", 1)[-1]
        if basename not in ("cli.py", "__main__.py"):
            return
        imports = _import_map(source.tree)
        for node in ast.walk(source.tree):
            exit_arg: ast.expr | None = None
            if isinstance(node, ast.Call):
                qual = _qualname(node.func, imports)
                if qual in ("sys.exit", "builtins.exit"):
                    exit_arg = node.args[0] if node.args else None
                else:
                    continue
            elif isinstance(node, ast.Raise):
                exc = node.exc
                if (
                    isinstance(exc, ast.Call)
                    and isinstance(exc.func, ast.Name)
                    and exc.func.id == "SystemExit"
                ):
                    exit_arg = exc.args[0] if exc.args else None
                    node = exc
                else:
                    continue
            else:
                continue
            if (
                isinstance(exit_arg, ast.Constant)
                and isinstance(exit_arg.value, int)
                and exit_arg.value != 0
            ):
                yield self.finding(
                    source,
                    node,
                    f"hard exit with status {exit_arg.value}; return "
                    "cli_error(message) (repro.cliutil) so every CLI "
                    "failure is one line on stderr with status 2",
                )


# ----------------------------------------------------------------------
# R007 — process management is confined to repro/exec
# ----------------------------------------------------------------------


class ProcessPoolDiscipline(Rule):
    """Worker processes, start methods, and result ordering are the
    parallel executor's whole job; a stray ``multiprocessing`` or
    ``concurrent.futures`` import elsewhere would re-open every
    determinism question :mod:`repro.exec` exists to settle (seeding,
    fork inheritance, merge order).  Route parallelism through
    ``repro.exec.parallel_map`` instead."""

    id = "R007"
    title = "process-pool imports are confined to repro/exec"

    #: Top-level modules whose import is reserved to the executor.
    _BANNED_ROOTS = frozenset({"multiprocessing", "concurrent"})
    #: The one directory (relative to the lint root) allowed to import
    #: them.
    ALLOWED_DIR = "exec"

    def check_file(
        self, source: SourceFile, project: Project
    ) -> Iterable[Finding]:
        if source.rel.split("/")[0] == self.ALLOWED_DIR:
            return
        for node in ast.walk(source.tree):
            dotted: str | None = None
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] in self._BANNED_ROOTS:
                        dotted = alias.name
                        break
            elif (
                isinstance(node, ast.ImportFrom)
                and node.module
                and not node.level
                and node.module.split(".")[0] in self._BANNED_ROOTS
            ):
                dotted = node.module
            if dotted is not None:
                yield self.finding(
                    source,
                    node,
                    f"imports {dotted} outside repro/exec; use "
                    "repro.exec.parallel_map so process management "
                    "stays in the one audited module",
                )


# ----------------------------------------------------------------------
# R008 — checkpoint writes go through the atomic helper
# ----------------------------------------------------------------------


class DurableWriteDiscipline(Rule):
    """Crash safety in the checkpoint store rests on one write
    discipline: write a pid-suffixed temp file, fsync, rename, fsync
    the directory.  A bare ``open(path, "w")`` (or
    ``Path.write_text``/``write_bytes``) inside ``repro/checkpoint``
    can tear on crash and leave a half-written file a later ``--resume``
    would read.  Durable writes must go through
    ``repro.checkpoint.atomic.atomic_write_bytes`` /
    ``atomic_write_json`` (the helper module itself is exempt — it is
    the audited implementation of the discipline)."""

    id = "R008"
    title = "checkpoint writes go through the atomic helper"

    #: The directory (relative to the lint root) the rule polices.
    SCOPE_DIR = "checkpoint"
    #: The one file allowed to perform raw writes: the helper itself.
    EXEMPT_FILES = frozenset({"atomic.py"})
    _WRITE_MODE_CHARS = frozenset("wax+")

    @staticmethod
    def _open_mode(node: ast.Call) -> str | None:
        """The statically-known mode of an ``open()`` call.

        Returns the mode string when it is a literal, ``"r"`` when
        omitted, and None when it is a dynamic expression (treated as
        possibly-writing).
        """
        mode_expr: ast.expr | None = None
        if len(node.args) >= 2:
            mode_expr = node.args[1]
        else:
            for keyword in node.keywords:
                if keyword.arg == "mode":
                    mode_expr = keyword.value
                    break
        if mode_expr is None:
            return "r"
        if isinstance(mode_expr, ast.Constant) and isinstance(
            mode_expr.value, str
        ):
            return mode_expr.value
        return None

    def check_file(
        self, source: SourceFile, project: Project
    ) -> Iterable[Finding]:
        parts = source.rel.split("/")
        if parts[0] != self.SCOPE_DIR or parts[-1] in self.EXEMPT_FILES:
            return
        imports = _import_map(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                mode = self._open_mode(node)
                if mode is not None and not (
                    self._WRITE_MODE_CHARS & set(mode)
                ):
                    continue
                described = (
                    f"open(..., {mode!r})" if mode is not None else
                    "open(...) with a dynamic mode"
                )
                yield self.finding(
                    source,
                    node,
                    f"{described} in repro/checkpoint can tear on "
                    "crash; route durable writes through "
                    "checkpoint.atomic.atomic_write_bytes/_json",
                )
            elif isinstance(func, ast.Attribute) and func.attr in (
                "write_text",
                "write_bytes",
            ):
                yield self.finding(
                    source,
                    node,
                    f".{func.attr}() in repro/checkpoint is not "
                    "crash-safe; route durable writes through "
                    "checkpoint.atomic.atomic_write_bytes/_json",
                )
            elif _qualname(func, imports) == "os.open":
                yield self.finding(
                    source,
                    node,
                    "raw os.open in repro/checkpoint belongs in the "
                    "atomic helper; route durable writes through "
                    "checkpoint.atomic.atomic_write_bytes/_json",
                )


# ----------------------------------------------------------------------
# R009 — the serve read path never mutates snapshots
# ----------------------------------------------------------------------


class SnapshotMutationDiscipline(Rule):
    """Published map snapshots are copy-on-write: the read path swaps
    whole immutable versions and concurrent queries keep whichever
    reference they captured.  That guarantee dies the moment any code
    under ``repro/serve`` writes *into* a snapshot — an attribute
    assignment, an index store, or a mutating container method reaches
    every reader holding the same version, mid-query.  Build a new
    snapshot and swap it instead.

    Heuristic scope: an expression "is a snapshot" when it mentions a
    name or attribute spelled ``snapshot``/``*_snapshot`` (the
    package's naming convention, e.g. ``snapshot``, ``final_snapshot``,
    ``self._snapshot``) or a parameter annotated ``MapSnapshot``.
    Rebinding such a name (``self._snapshot = new``) is the sanctioned
    swap and is not flagged — only writes *through* one are."""

    id = "R009"
    title = "serve query handlers never mutate snapshot objects"

    #: The directory (relative to the lint root) the rule polices.
    SCOPE_DIR = "serve"
    #: Container methods that mutate their receiver in place.
    _MUTATORS = frozenset(
        {
            "add",
            "append",
            "clear",
            "discard",
            "extend",
            "insert",
            "pop",
            "popitem",
            "remove",
            "setdefault",
            "sort",
            "reverse",
            "update",
        }
    )

    @staticmethod
    def _names_snapshot(identifier: str) -> bool:
        low = identifier.lower()
        return low == "snapshot" or low.endswith("_snapshot")

    def _annotated_params(self, tree: ast.AST) -> set[str]:
        """Parameter names annotated ``MapSnapshot`` anywhere in the file."""
        names: set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            arguments = node.args
            for arg in (
                *arguments.posonlyargs,
                *arguments.args,
                *arguments.kwonlyargs,
            ):
                annotation = arg.annotation
                if annotation is not None and "MapSnapshot" in ast.unparse(
                    annotation
                ):
                    names.add(arg.arg)
        return names

    def _is_snapshotish(self, expr: ast.expr, extra: set[str]) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and (
                node.id in extra or self._names_snapshot(node.id)
            ):
                return True
            if isinstance(node, ast.Attribute) and self._names_snapshot(
                node.attr
            ):
                return True
        return False

    def check_file(
        self, source: SourceFile, project: Project
    ) -> Iterable[Finding]:
        if source.rel.split("/")[0] != self.SCOPE_DIR:
            return
        extra = self._annotated_params(source.tree)
        for node in ast.walk(source.tree):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = node.targets
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in self._MUTATORS
                    and self._is_snapshotish(func.value, extra)
                ):
                    yield self.finding(
                        source,
                        node,
                        f".{func.attr}() mutates a published snapshot; "
                        "the read path is copy-on-write — build a new "
                        "snapshot and swap it",
                    )
                elif (
                    isinstance(func, ast.Name)
                    and func.id in ("setattr", "delattr")
                    and node.args
                    and self._is_snapshotish(node.args[0], extra)
                ):
                    yield self.finding(
                        source,
                        node,
                        f"{func.id}() on a published snapshot; the read "
                        "path is copy-on-write — build a new snapshot "
                        "and swap it",
                    )
                continue
            for target in targets:
                if isinstance(
                    target, (ast.Attribute, ast.Subscript)
                ) and self._is_snapshotish(target.value, extra):
                    yield self.finding(
                        source,
                        target,
                        "assignment into a published snapshot; the read "
                        "path is copy-on-write — build a new snapshot "
                        "and swap it",
                    )


# ----------------------------------------------------------------------
# R010 — service health state changes only via its transition method
# ----------------------------------------------------------------------


class HealthStateDiscipline(Rule):
    """The :class:`ServiceHealth` state machine is auditable because it
    has exactly one mutation point: ``transition()`` validates the new
    state, records the edge in history, emits the
    ``serve.health.transition`` event, and notifies subscribers.  A
    direct attribute write from outside ``serve/health.py`` —
    ``health._state = "ok"``, ``service.health.epochs_behind += 1`` —
    silently skips all of that: the health report and the event stream
    stop agreeing, and soak-test recovery timestamps go dark.  Call the
    ``record_*`` helpers (or ``transition`` itself) instead.

    Heuristic scope: an expression "is health state" when it mentions a
    name or attribute spelled ``health``/``*_health`` (the package's
    naming convention, e.g. ``health``, ``self.health``,
    ``self._health``) or a parameter annotated ``ServiceHealth``.
    ``data_health`` is excluded — that is a per-interface inference
    quality field, not the service state machine.  Rebinding such a
    name (``self.health = ServiceHealth(...)``) is construction and is
    not flagged — only writes *through* one are.  ``serve/health.py``
    itself is exempt: that is where the mutation point lives."""

    id = "R010"
    title = "service health state changes only via its transition method"

    #: The one module allowed to touch ServiceHealth internals.
    EXEMPT_FILE = "serve/health.py"
    _MUTATORS = SnapshotMutationDiscipline._MUTATORS

    @staticmethod
    def _names_health(identifier: str) -> bool:
        low = identifier.lower()
        if low == "data_health":
            return False
        return low == "health" or low.endswith("_health")

    def _annotated_params(self, tree: ast.AST) -> set[str]:
        """Parameter names annotated ``ServiceHealth`` anywhere in the
        file."""
        names: set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            arguments = node.args
            for arg in (
                *arguments.posonlyargs,
                *arguments.args,
                *arguments.kwonlyargs,
            ):
                annotation = arg.annotation
                if annotation is not None and "ServiceHealth" in ast.unparse(
                    annotation
                ):
                    names.add(arg.arg)
        return names

    def _is_healthish(self, expr: ast.expr, extra: set[str]) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and (
                node.id in extra or self._names_health(node.id)
            ):
                return True
            if isinstance(node, ast.Attribute) and self._names_health(
                node.attr
            ):
                return True
        return False

    def check_file(
        self, source: SourceFile, project: Project
    ) -> Iterable[Finding]:
        if source.rel == self.EXEMPT_FILE:
            return
        extra = self._annotated_params(source.tree)
        for node in ast.walk(source.tree):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = node.targets
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in self._MUTATORS
                    and self._is_healthish(func.value, extra)
                ):
                    yield self.finding(
                        source,
                        node,
                        f".{func.attr}() mutates service health state "
                        "directly; go through transition() or a "
                        "record_* helper so the edge is validated, "
                        "recorded, and announced",
                    )
                elif (
                    isinstance(func, ast.Name)
                    and func.id in ("setattr", "delattr")
                    and node.args
                    and self._is_healthish(node.args[0], extra)
                ):
                    yield self.finding(
                        source,
                        node,
                        f"{func.id}() on service health state; go "
                        "through transition() or a record_* helper so "
                        "the edge is validated, recorded, and announced",
                    )
                continue
            for target in targets:
                if isinstance(
                    target, (ast.Attribute, ast.Subscript)
                ) and self._is_healthish(target.value, extra):
                    yield self.finding(
                        source,
                        target,
                        "assignment into service health state; go "
                        "through transition() or a record_* helper so "
                        "the edge is validated, recorded, and announced",
                    )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

ALL_RULES: tuple[type[Rule], ...] = (
    UnseededRandomness,
    WallClockInCore,
    UnsortedSetIteration,
    EventNamespace,
    FrozenConfigMutation,
    CliExitDiscipline,
    ProcessPoolDiscipline,
    DurableWriteDiscipline,
    SnapshotMutationDiscipline,
    HealthStateDiscipline,
) + FLOW_RULES

#: Ids of the interprocedural rules (skipped by ``--no-flow``).
FLOW_RULE_IDS: frozenset[str] = frozenset(cls.id for cls in FLOW_RULES)

_BY_ID = {cls.id: cls for cls in ALL_RULES}


def rule_catalog() -> dict[str, str]:
    """Rule id -> one-line title, in id order."""
    return {cls.id: cls.title for cls in ALL_RULES}


def make_rules(
    ids: Sequence[str] | None = None, *, include_flow: bool = True
) -> list[Rule]:
    """Instantiate the named rules (all of them when ``ids`` is None;
    ``include_flow=False`` drops R011–R014 from the default set but
    never from an explicit ``ids`` selection).

    Raises :class:`LintError` for an unknown id, naming the known ones.
    """
    if ids is None:
        return [
            cls()
            for cls in ALL_RULES
            if include_flow or cls.id not in FLOW_RULE_IDS
        ]
    rules: list[Rule] = []
    seen: set[str] = set()
    for raw in ids:
        rule_id = raw.strip().upper()
        if rule_id in seen:
            continue
        cls = _BY_ID.get(rule_id)
        if cls is None:
            known = ", ".join(sorted(_BY_ID))
            raise LintError(
                f"unknown rule {raw!r}; known rules: {known}"
            )
        seen.add(rule_id)
        rules.append(cls())
    return rules
