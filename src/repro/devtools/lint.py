"""reprolint — AST-based invariant linter for the ``repro`` tree.

Every result this reproduction claims rests on byte-identical
determinism under a fixed seed.  The invariants that guarantee it
(seeded ``random.Random`` streams only, no wall-clock reads in the
inference layers, ordered iteration feeding exports, every ``emit()``
name declared in the event registry) used to be enforced by convention
and after-the-fact equivalence tests; this module enforces them
statically, at the line that introduces a violation.

The public surface:

* :func:`run_lint` — parse a tree, run the rules, return a
  :class:`LintResult`;
* :class:`Finding` — one violation (rule id, file, line, message);
* :class:`LintError` — configuration/usage failure (missing path,
  unknown rule id, unparsable source); CLIs render it as a one-line
  ``error:`` and exit 2.

Suppression: append ``# reprolint: disable=R003 <reason>`` to the
flagged line (or place it on its own line directly above).  Several
rules may share one comment (``disable=R003,R009 <reason>``, spaces
after the commas allowed).  The reason is mandatory — a bare
``disable=`` does not suppress, so every waiver in the tree documents
itself.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

__all__ = [
    "Finding",
    "LintError",
    "LintResult",
    "Project",
    "Rule",
    "SourceFile",
    "Suppression",
    "run_lint",
]


class LintError(Exception):
    """A usage or configuration failure (not a lint finding)."""


@dataclass(frozen=True, slots=True)
class Finding:
    """One invariant violation at a specific source location."""

    #: Rule identifier, e.g. ``"R003"``.
    rule: str
    #: Path relative to the linted root, POSIX separators.
    path: str
    #: 1-based line of the offending node.
    line: int
    #: 0-based column of the offending node.
    col: int
    #: Human-readable description of the violation.
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready rendering (stable field order)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        """One-line ``path:line:col: R00X message`` rendering."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True, slots=True)
class Suppression:
    """One ``# reprolint: disable=...`` comment."""

    #: Line the suppression *applies to* (the comment's own line for a
    #: trailing comment, the following line for a standalone one).
    line: int
    #: Rule ids named by the comment.
    rules: frozenset[str]
    #: Free-text justification (empty string means the suppression is
    #: invalid and does not take effect).
    reason: str


_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable="
    r"([A-Za-z0-9]+(?:\s*,\s*[A-Za-z0-9]+)*)"
    r"(?:\s+(\S.*?))?\s*$"
)


def _parse_suppressions(text: str) -> list[Suppression]:
    suppressions: list[Suppression] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        match = _SUPPRESS_RE.search(raw)
        if match is None:
            continue
        standalone = raw[: match.start()].strip() == ""
        suppressions.append(
            Suppression(
                line=lineno + 1 if standalone else lineno,
                rules=frozenset(
                    rule.strip()
                    for rule in match.group(1).split(",")
                    if rule.strip()
                ),
                reason=(match.group(2) or "").strip(),
            )
        )
    return suppressions


class SourceFile:
    """One parsed module: path, text, AST (with parent links), and
    suppression comments."""

    def __init__(self, path: Path, rel: str, text: str) -> None:
        self.path = path
        self.rel = rel
        self.text = text
        try:
            self.tree = ast.parse(text, filename=str(path))
        except SyntaxError as error:
            raise LintError(f"cannot parse {rel}: {error}") from None
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                child._reprolint_parent = node  # type: ignore[attr-defined]
        self.suppressions = _parse_suppressions(text)

    def suppression_for(
        self, rule: str, line: int, end_line: int | None = None
    ) -> Suppression | None:
        """The valid suppression covering ``rule`` on ``line`` (or any
        line of the node's span), if one exists."""
        last = end_line if end_line is not None else line
        for suppression in self.suppressions:
            if not suppression.reason or rule not in suppression.rules:
                continue
            if line <= suppression.line <= last:
                return suppression
        return None


def parent_of(node: ast.AST) -> ast.AST | None:
    """The syntactic parent recorded during parsing (None at module)."""
    return getattr(node, "_reprolint_parent", None)


class Rule:
    """Base class: one named, independently runnable invariant.

    Lives here (not in :mod:`.rules`) so the flow rules can subclass
    it without importing the registry module that registers *them* —
    R014 itself flags that import cycle.
    """

    id: str = "R000"
    title: str = ""

    def check_file(
        self, source: "SourceFile", project: "Project"
    ) -> Iterable[Finding]:
        return ()

    def finalize(self, project: "Project") -> Iterable[Finding]:
        return ()

    def finding(
        self, source: "SourceFile", node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=source.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


@dataclass(slots=True)
class Project:
    """Everything the rules can see: parsed files plus the pre-pass
    indexes (frozen dataclasses, the event-name registry)."""

    root: Path
    files: list[SourceFile] = field(default_factory=list)
    #: Frozen-dataclass class name -> rel path of the defining module.
    frozen_dataclasses: dict[str, str] = field(default_factory=dict)
    #: EVENT_NAMES registry contents (name -> description), or None
    #: when the tree has no ``obs/events.py`` registry.
    event_names: dict[str, str] | None = None
    #: rel path of the registry module (when found).
    registry_rel: str | None = None
    #: Line of each registry key, for dead-entry findings.
    registry_lines: dict[str, int] = field(default_factory=dict)
    #: Memoized expensive analyses (the flow engine caches itself
    #: here so R011–R014 share one whole-program pass).
    cache: dict[str, Any] = field(default_factory=dict)

    def file(self, rel: str) -> SourceFile | None:
        for source in self.files:
            if source.rel == rel:
                return source
        return None


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        func = decorator.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        if name != "dataclass":
            continue
        for keyword in decorator.keywords:
            if (
                keyword.arg == "frozen"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return True
    return False


def _index_frozen_dataclasses(project: Project) -> None:
    for source in project.files:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef) and _is_frozen_dataclass(node):
                project.frozen_dataclasses.setdefault(node.name, source.rel)


def _index_event_registry(project: Project) -> None:
    """Parse ``EVENT_NAMES`` out of ``obs/events.py`` (if present)."""
    registry = None
    for source in project.files:
        if source.rel.endswith("obs/events.py") or source.rel == "events.py":
            registry = source
            break
    if registry is None:
        return
    for node in ast.walk(registry.tree):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == "EVENT_NAMES"
                and isinstance(value, ast.Dict)
            ):
                project.event_names = {}
                project.registry_rel = registry.rel
                for key, val in zip(value.keys, value.values):
                    if isinstance(key, ast.Constant) and isinstance(
                        key.value, str
                    ):
                        description = (
                            val.value
                            if isinstance(val, ast.Constant)
                            and isinstance(val.value, str)
                            else ""
                        )
                        project.event_names[key.value] = description
                        project.registry_lines[key.value] = key.lineno
                return


def _collect_files(root: Path) -> list[tuple[Path, str]]:
    if root.is_file():
        return [(root, root.name)]
    paths = sorted(
        path
        for path in root.rglob("*.py")
        if "__pycache__" not in path.parts
    )
    return [(path, path.relative_to(root).as_posix()) for path in paths]


def load_project(root: Path) -> Project:
    """Parse every ``*.py`` under ``root`` and build the pre-pass
    indexes rules need.  Raises :class:`LintError` for a missing or
    unreadable path and for unparsable source."""
    root = Path(root)
    if not root.exists():
        raise LintError(f"no such file or directory: {root}")
    entries = _collect_files(root)
    if not entries:
        raise LintError(f"no Python sources under {root}")
    project = Project(root=root)
    for path, rel in entries:
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as error:
            raise LintError(f"cannot read {rel}: {error.strerror}") from None
        project.files.append(SourceFile(path, rel, text))
    _index_frozen_dataclasses(project)
    _index_event_registry(project)
    return project


@dataclass(frozen=True, slots=True)
class LintResult:
    """The outcome of one lint run."""

    #: Active findings, sorted by (path, line, col, rule).
    findings: tuple[Finding, ...]
    #: Findings silenced by a valid suppression, with its reason.
    suppressed: tuple[tuple[Finding, str], ...]
    #: Rule ids that ran.
    rules: tuple[str, ...]
    #: Number of files scanned.
    files_scanned: int

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return {rule: counts[rule] for rule in sorted(counts)}

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready report (the ``--format json`` shape).

        Deterministic and versioned: findings arrive pre-sorted by
        (path, line, col, rule), ``schema_version`` gates consumers,
        and the ``summary`` block carries a per-rule count for *every*
        rule that ran (zeroes included) so two runs diff cleanly.
        """
        counts = self.counts_by_rule()
        return {
            "schema": "repro/lint/2",
            "schema_version": 2,
            "rules": list(self.rules),
            "files_scanned": self.files_scanned,
            "findings": [finding.as_dict() for finding in self.findings],
            "counts": counts,
            "suppressed": [
                {**finding.as_dict(), "reason": reason}
                for finding, reason in self.suppressed
            ],
            "summary": {
                "files_scanned": self.files_scanned,
                "findings": len(self.findings),
                "suppressed": len(self.suppressed),
                "by_rule": {
                    rule: counts.get(rule, 0) for rule in sorted(self.rules)
                },
            },
        }


def run_lint(
    root: Path | str,
    rules: Sequence[str] | None = None,
    *,
    flow: bool = True,
    graph: Path | str | None = None,
) -> LintResult:
    """Lint every Python file under ``root`` with the named rules (all
    rules when ``rules`` is None; ``flow=False`` drops the
    interprocedural rules R011–R014 from the default set).  When
    ``graph`` names a path, the flow engine's import/call graph is
    written there as JSON.  Unknown rule ids raise
    :class:`LintError`."""
    from .rules import make_rules

    selected = make_rules(rules, include_flow=flow)
    project = load_project(Path(root))
    if graph is not None:
        from .flow import FlowAnalysis

        graph_path = Path(graph)
        try:
            graph_path.write_text(
                FlowAnalysis.of(project).graphs.render_json(),
                encoding="utf-8",
            )
        except OSError as error:
            raise LintError(
                f"cannot write graph {graph_path}: {error.strerror}"
            ) from None
    raw: list[Finding] = []
    for rule in selected:
        for source in project.files:
            raw.extend(rule.check_file(source, project))
        raw.extend(rule.finalize(project))

    active: list[Finding] = []
    suppressed: list[tuple[Finding, str]] = []
    sources = {source.rel: source for source in project.files}
    for finding in sorted(raw, key=Finding.sort_key):
        source = sources.get(finding.path)
        suppression = (
            source.suppression_for(finding.rule, finding.line)
            if source is not None
            else None
        )
        if suppression is not None:
            suppressed.append((finding, suppression.reason))
        else:
            active.append(finding)
    return LintResult(
        findings=tuple(active),
        suppressed=tuple(suppressed),
        rules=tuple(rule.id for rule in selected),
        files_scanned=len(project.files),
    )


def iter_findings(result: LintResult) -> Iterable[Finding]:
    """Convenience iterator over a result's active findings."""
    return iter(result.findings)
