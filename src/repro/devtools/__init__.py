"""Developer tooling for the reproduction: the ``reprolint`` static
analyzer.

The determinism guarantees the experiments lean on (seeded RNG streams,
no wall-clock in the inference layers, ordered iteration into exports,
a closed event namespace) are invariants of the *source*, not of any
one run — so they are enforced here, statically, as named rules over
the AST.  See :mod:`repro.devtools.lint` for the engine,
:mod:`repro.devtools.rules` for the rules (R001–R006), and
:mod:`repro.devtools.cli` for the ``repro-lint`` / ``repro lint``
entry points.
"""

from .lint import Finding, LintError, LintResult, run_lint
from .rules import ALL_RULES, rule_catalog

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintError",
    "LintResult",
    "rule_catalog",
    "run_lint",
]
