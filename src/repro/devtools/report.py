"""Rendering and baseline handling for lint results.

Two output formats (the ``--format`` flag): ``text`` — one
``path:line:col: R00X message`` line per finding plus a summary — and
``json`` — the stable ``repro/lint/1`` document from
:meth:`LintResult.as_dict`.

Baselines let the linter gate *new* violations while a legacy tree is
being paid down: ``--baseline`` with no existing file records the
current findings; subsequent runs subtract recorded findings (matched
by rule + path + message, deliberately not by line so unrelated edits
don't resurrect them) and fail only on new ones.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .lint import Finding, LintError, LintResult

__all__ = [
    "render_text",
    "render_json",
    "load_baseline",
    "write_baseline",
    "subtract_baseline",
]


def render_text(result: LintResult) -> str:
    """Human-readable report: findings, counts, suppression tally."""
    lines = [finding.render() for finding in result.findings]
    counts = result.counts_by_rule()
    if counts:
        per_rule = ", ".join(f"{rule}={n}" for rule, n in counts.items())
        lines.append(
            f"{len(result.findings)} finding(s) across "
            f"{result.files_scanned} file(s): {per_rule}"
        )
    else:
        lines.append(
            f"clean: 0 findings across {result.files_scanned} file(s)"
        )
    if result.suppressed:
        lines.append(f"{len(result.suppressed)} suppressed finding(s)")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """The ``repro/lint/1`` JSON document, indented, trailing newline."""
    return json.dumps(result.as_dict(), indent=2) + "\n"


def _finding_key(record: dict[str, Any]) -> tuple[str, str, str]:
    return (record["rule"], record["path"], record["message"])


def load_baseline(path: Path) -> set[tuple[str, str, str]]:
    """The set of (rule, path, message) keys recorded at ``path``."""
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise LintError(f"cannot read baseline {path}: {error}") from None
    records = document.get("findings", [])
    try:
        return {_finding_key(record) for record in records}
    except (TypeError, KeyError):
        raise LintError(
            f"baseline {path} is not a repro/lint baseline document"
        ) from None


def write_baseline(path: Path, result: LintResult) -> None:
    """Record the current findings so later runs gate only new ones."""
    document = {
        "schema": "repro/lint-baseline/1",
        "findings": [finding.as_dict() for finding in result.findings],
    }
    try:
        path.write_text(
            json.dumps(document, indent=2) + "\n", encoding="utf-8"
        )
    except OSError as error:
        raise LintError(
            f"cannot write baseline {path}: {error.strerror}"
        ) from None


def subtract_baseline(
    result: LintResult, known: set[tuple[str, str, str]]
) -> LintResult:
    """A result containing only findings absent from the baseline."""
    fresh = tuple(
        finding
        for finding in result.findings
        if _finding_key(finding.as_dict()) not in known
    )
    return LintResult(
        findings=fresh,
        suppressed=result.suppressed,
        rules=result.rules,
        files_scanned=result.files_scanned,
    )
