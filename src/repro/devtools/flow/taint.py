"""Seed-provenance taint lattice and worklist solver (R011's engine).

Every value that might be a ``random.Random`` instance carries a set
of provenance tags:

* ``"substream"`` — built by ``exec.shard.substream(...)`` (the
  sanctioned derivation: a named, shard-local stream);
* ``"seeded"`` — ``Random(expr)`` with an explicit seed argument;
* ``"literal"`` — ``Random(<constant>)`` (seeded, but with a seed the
  caller cannot vary — fine for tests, suspicious in the pipeline);
* ``"ambient"`` — module-level RNG state: a module/class-body-level
  ``Random(...)`` binding, or the ``random`` module's implicit global
  stream.  Ambient streams are shared across every caller and across
  fork boundaries, so any draw from one destroys shard determinism.

The join is set union.  Facts propagate through local assignments,
``self.attr`` fields (bare-name indexed, like R003's set-attribute
index), function returns, and call arguments into parameters — the
last two iterated to a fixpoint over the resolved call graph, so an
ambient RNG handed down a call chain is still flagged at the draw.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from .graph import FlowGraphs
from .symbols import FunctionInfo, SymbolTable, iter_scopes, scope_statements

__all__ = ["DRAW_METHODS", "TaintAnalysis", "TaintedDraw"]

#: ``random.Random`` draw methods (reads that consume stream state).
DRAW_METHODS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gauss",
        "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
        "randbytes", "randint", "random", "randrange", "sample",
        "shuffle", "triangular", "uniform", "vonmisesvariate",
        "weibullvariate",
    }
)

_RNG_CONSTRUCTORS = frozenset({"random.Random", "random.SystemRandom"})

#: Tags that mark a value as "is (or may be) an RNG instance".
RNG_TAGS = frozenset({"substream", "seeded", "literal", "ambient"})


@dataclass(frozen=True, slots=True)
class TaintedDraw:
    """One draw site whose receiver carries the given tags."""

    rel: str
    node: ast.expr
    method: str
    tags: frozenset[str]
    #: Human-readable origin of the receiver ("module-level RNG 'X'",
    #: "parameter 'rng'", ...), best effort.
    origin: str


class TaintAnalysis:
    """Provenance facts for one project, computed eagerly."""

    def __init__(self, symbols: SymbolTable, graphs: FlowGraphs) -> None:
        self.symbols = symbols
        self.graphs = graphs
        #: rel -> {module-level name: tags} for RNGs bound at module or
        #: class-body scope (always tagged ambient on top of their
        #: constructor tags).
        self.module_rngs: dict[str, dict[str, frozenset[str]]] = {}
        #: Bare instance-attribute name -> tags (project-wide union).
        self.attr_tags: dict[str, frozenset[str]] = {}
        #: qual -> {param: tags pushed by resolved callers}.
        self.param_tags: dict[str, dict[str, frozenset[str]]] = {}
        #: qual -> tags of returned expressions.
        self.return_tags: dict[str, frozenset[str]] = {}

        self._by_node: dict[int, FunctionInfo] = {
            id(info.node): info for info in symbols.functions.values()
        }
        self._index_module_rngs()
        self._index_attr_tags()
        self._solve()

    # ------------------------------------------------------------------
    # Constructor recognition
    # ------------------------------------------------------------------

    def _constructor_tags(
        self, call: ast.Call, rel: str
    ) -> frozenset[str] | None:
        """Tags when ``call`` constructs an RNG, else None."""
        func = call.func
        module = self.symbols.modules.get(rel)
        imports = module.imports if module is not None else {}
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        dotted = None
        if isinstance(func, ast.Name):
            dotted = imports.get(func.id)
        elif isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            base = imports.get(func.value.id)
            if base is not None:
                dotted = f"{base}.{func.attr}"
        if name == "substream" or (
            dotted is not None and dotted.endswith("shard.substream")
        ):
            return frozenset({"substream"})
        is_rng = dotted in _RNG_CONSTRUCTORS or (
            dotted is None and name in {"Random", "SystemRandom"}
        )
        if not is_rng:
            return None
        if not call.args and not call.keywords:
            return frozenset({"ambient"})
        seed = call.args[0] if call.args else call.keywords[0].value
        if isinstance(seed, ast.Constant):
            return frozenset({"literal"})
        return frozenset({"seeded"})

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------

    def _index_module_rngs(self) -> None:
        for rel, module in self.symbols.modules.items():
            found: dict[str, frozenset[str]] = {}
            scopes: list[ast.AST] = [module.source.tree]
            scopes.extend(
                node
                for node in module.source.tree.body
                if isinstance(node, ast.ClassDef)
            )
            for scope in scopes:
                for node in scope_statements(scope):
                    if not isinstance(node, ast.Assign):
                        continue
                    tags = (
                        self._constructor_tags(node.value, rel)
                        if isinstance(node.value, ast.Call)
                        else None
                    )
                    if tags is None:
                        continue
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            found[target.id] = tags | {"ambient"}
            if found:
                self.module_rngs[rel] = found

    def _index_attr_tags(self) -> None:
        for info in self.symbols.functions.values():
            for node in scope_statements(info.node):
                if not isinstance(node, ast.Assign):
                    continue
                tags = (
                    self._constructor_tags(node.value, info.rel)
                    if isinstance(node.value, ast.Call)
                    else None
                )
                if tags is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Attribute):
                        merged = self.attr_tags.get(
                            target.attr, frozenset()
                        )
                        self.attr_tags[target.attr] = merged | tags

    # ------------------------------------------------------------------
    # Expression provenance
    # ------------------------------------------------------------------

    def expr_tags(
        self,
        expr: ast.expr | None,
        info: FunctionInfo | None,
        rel: str,
        env: dict[str, frozenset[str]],
    ) -> frozenset[str]:
        """Provenance tags of ``expr`` in the given scope (empty set =
        not known to be an RNG)."""
        if expr is None:
            return frozenset()
        if isinstance(expr, ast.Call):
            tags = self._constructor_tags(expr, rel)
            if tags is not None:
                return tags
            callee = self._callee_of(expr, info)
            if callee is not None:
                return self.return_tags.get(callee.qual, frozenset())
            # ``random.random`` style draws on the module handled at
            # draw-site scan; as a value, the random module itself is
            # ambient state.
            return frozenset()
        if isinstance(expr, ast.Name):
            local = env.get(expr.id)
            if local is not None:
                return local
            module_level = self.module_rngs.get(rel, {}).get(expr.id)
            if module_level is not None:
                return module_level
            return frozenset()
        if isinstance(expr, ast.Attribute):
            return self.attr_tags.get(expr.attr, frozenset())
        if isinstance(expr, ast.BoolOp):
            merged: frozenset[str] = frozenset()
            for part in expr.values:
                merged |= self.expr_tags(part, info, rel, env)
            return merged
        if isinstance(expr, ast.IfExp):
            return self.expr_tags(
                expr.body, info, rel, env
            ) | self.expr_tags(expr.orelse, info, rel, env)
        if isinstance(expr, ast.NamedExpr):
            return self.expr_tags(expr.value, info, rel, env)
        return frozenset()

    def _callee_of(
        self, call: ast.Call, info: FunctionInfo | None
    ) -> FunctionInfo | None:
        if info is None:
            return None
        for node, callee in self.graphs.call_sites.get(info.qual, ()):
            if node is call:
                return callee
        return None

    # ------------------------------------------------------------------
    # Worklist solver
    # ------------------------------------------------------------------

    def scope_env(self, info: FunctionInfo) -> dict[str, frozenset[str]]:
        """Name -> tags for one function scope: parameters (from the
        current fixpoint state), enclosing-closure names, and locals
        (two passes so later-defined locals feed earlier uses)."""
        env: dict[str, frozenset[str]] = {}
        if info.parent_qual is not None:
            parent = self.symbols.functions.get(info.parent_qual)
            if parent is not None:
                env.update(self.scope_env(parent))
        env.update(self.param_tags.get(info.qual, {}))
        for _ in range(2):
            for node in scope_statements(info.node):
                if isinstance(node, ast.Assign):
                    tags = self.expr_tags(node.value, info, info.rel, env)
                    if not tags:
                        continue
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            env[target.id] = tags
                elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    tags = self.expr_tags(node.value, info, info.rel, env)
                    if tags:
                        env[node.target.id] = tags
        return env

    def _solve(self) -> None:
        functions = list(self.symbols.functions.values())
        for _ in range(12):
            changed = False
            for info in functions:
                env = self.scope_env(info)
                # Returns.
                returned: frozenset[str] = frozenset()
                for node in scope_statements(info.node):
                    if isinstance(node, ast.Return) and node.value is not None:
                        returned |= self.expr_tags(
                            node.value, info, info.rel, env
                        )
                if returned != self.return_tags.get(info.qual, frozenset()):
                    self.return_tags[info.qual] = returned
                    changed = True
                # Push argument tags into callee parameters.
                for call, callee in self.graphs.call_sites.get(
                    info.qual, ()
                ):
                    if self._push_args(call, callee, info, env):
                        changed = True
            if not changed:
                break

    def _push_args(
        self,
        call: ast.Call,
        callee: FunctionInfo,
        info: FunctionInfo,
        env: dict[str, frozenset[str]],
    ) -> bool:
        params = callee.params
        if callee.cls is not None and params and params[0] == "self":
            params = params[1:]
        slot = self.param_tags.setdefault(callee.qual, {})
        changed = False

        def merge(param: str, tags: frozenset[str]) -> None:
            nonlocal changed
            if not tags:
                return
            merged = slot.get(param, frozenset()) | tags
            if merged != slot.get(param):
                slot[param] = merged
                changed = True

        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred) or index >= len(params):
                break
            merge(params[index], self.expr_tags(arg, info, info.rel, env))
        for keyword in call.keywords:
            if keyword.arg is not None and keyword.arg in params:
                merge(
                    keyword.arg,
                    self.expr_tags(keyword.value, info, info.rel, env),
                )
        return changed

    # ------------------------------------------------------------------
    # Draw-site scan
    # ------------------------------------------------------------------

    def iter_draws(self) -> Iterator[TaintedDraw]:
        """Every ``<recv>.<draw>()`` whose receiver carries tags, plus
        bare ``random.<draw>()`` module draws (always ambient)."""
        for rel, module in sorted(self.symbols.modules.items()):
            imports = module.imports
            for scope in iter_scopes(module.source.tree):
                info = self._info_for_scope(scope, rel)
                env = self.scope_env(info) if info is not None else {}
                for node in scope_statements(scope):
                    if not isinstance(node, ast.Call) or not isinstance(
                        node.func, ast.Attribute
                    ):
                        continue
                    method = node.func.attr
                    if method not in DRAW_METHODS:
                        continue
                    recv = node.func.value
                    if (
                        isinstance(recv, ast.Name)
                        and imports.get(recv.id) == "random"
                    ):
                        yield TaintedDraw(
                            rel=rel,
                            node=node,
                            method=method,
                            tags=frozenset({"ambient"}),
                            origin="the random module's global stream",
                        )
                        continue
                    tags = self.expr_tags(recv, info, rel, env)
                    if tags:
                        yield TaintedDraw(
                            rel=rel,
                            node=node,
                            method=method,
                            tags=tags,
                            origin=self._describe(recv, rel, env),
                        )

    def _info_for_scope(
        self, scope: ast.AST, rel: str
    ) -> FunctionInfo | None:
        del rel
        return self._by_node.get(id(scope))

    def _describe(
        self, recv: ast.expr, rel: str, env: dict[str, frozenset[str]]
    ) -> str:
        if isinstance(recv, ast.Name):
            if recv.id in self.module_rngs.get(rel, {}):
                return f"module-level RNG {recv.id!r}"
            return f"name {recv.id!r}"
        if isinstance(recv, ast.Attribute):
            return f"attribute {recv.attr!r}"
        return "expression"
