"""reproflow — whole-program dataflow layer under reprolint.

The per-file rules (R001–R010) reason locally; the invariants they
protect — seeded determinism, snapshot immutability, supervised
failure containment — are just as easily broken *across* module,
thread, and process boundaries.  This package builds the project-wide
picture those checks need:

* :mod:`.symbols` — symbol table: every module, class, function and
  method, import maps, and inferred attribute types;
* :mod:`.graph` — the module-level import graph (with the layering
  ranks R014 enforces) and a resolved intra-project call graph,
  exportable as JSON via ``repro lint --graph``;
* :mod:`.taint` — a worklist solver propagating RNG seed-provenance
  tags through assignments, calls, returns, closures, and dataclass
  fields (R011's lattice);
* :mod:`.raises` — interprocedural raised-exception sets checked
  against supervisor containment contracts (R013);
* :mod:`.rules_flow` — the flow rules themselves (R011–R014).

All of it is built once per lint run and memoized on the
:class:`~repro.devtools.lint.Project` via :class:`FlowAnalysis`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .graph import FlowGraphs
from .raises import RaisesAnalysis
from .symbols import SymbolTable
from .taint import TaintAnalysis

if TYPE_CHECKING:  # pragma: no cover
    from ..lint import Project

__all__ = [
    "FlowAnalysis",
    "FlowGraphs",
    "RaisesAnalysis",
    "SymbolTable",
    "TaintAnalysis",
]


class FlowAnalysis:
    """Symbol table + graphs + taint facts, computed once per project.

    Every flow rule calls :meth:`of` so the (comparatively expensive)
    whole-program passes run exactly once per ``run_lint`` invocation
    no matter how many rules consume them.
    """

    def __init__(self, project: "Project") -> None:
        self.symbols = SymbolTable(project)
        self.graphs = FlowGraphs(self.symbols)
        self.taint = TaintAnalysis(self.symbols, self.graphs)
        self.raises = RaisesAnalysis(self.symbols, self.graphs)

    @classmethod
    def of(cls, project: "Project") -> "FlowAnalysis":
        analysis = project.cache.get("flow")
        if analysis is None:
            analysis = cls(project)
            project.cache["flow"] = analysis
        return analysis
