"""Project-wide symbol table for the flow engine.

Everything here is name-level and deliberately approximate: the repro
tree is a closed codebase with unambiguous class names, so a bare-name
class index plus per-module import maps resolve the overwhelming
majority of references without real type inference.  The consumers
(:mod:`.graph`, :mod:`.taint`, :mod:`.raises`) are written so that an
*unresolved* reference degrades to "no edge / no fact", never to a
false finding.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from ..lint import Project, SourceFile

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "SymbolTable",
    "module_name",
]

#: Attribute names so common on builtins that a unique project method
#: of the same name must not capture unrelated ``obj.name()`` calls.
GENERIC_METHOD_NAMES = frozenset(
    {
        "add", "append", "clear", "close", "copy", "count", "decode",
        "discard", "encode", "endswith", "extend", "format", "get",
        "index", "insert", "items", "join", "keys", "lower", "pop",
        "read", "remove", "replace", "setdefault", "sort", "split",
        "startswith", "strip", "update", "upper", "values", "write",
    }
)


def module_name(rel: str) -> str:
    """Dotted module name of a rel path: ``serve/query.py`` ->
    ``serve.query``; package ``__init__`` files name the package."""
    parts = rel[:-3].split("/") if rel.endswith(".py") else rel.split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def iter_scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """Module, every class body, and every (nested) function."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def scope_statements(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested function or class
    bodies (each is analysed as its own scope)."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@dataclass(slots=True)
class FunctionInfo:
    """One function or method, anywhere in the tree."""

    #: ``rel::Class.method`` / ``rel::func`` / ``rel::outer.<locals>.inner``.
    qual: str
    rel: str
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    source: "SourceFile"
    #: Owning class name for methods, else None.
    cls: str | None = None
    #: Qual of the lexically enclosing function, for closures.
    parent_qual: str | None = None

    @property
    def params(self) -> list[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names


@dataclass(slots=True)
class ClassInfo:
    """One class definition plus its inferred attribute types."""

    name: str
    rel: str
    node: ast.ClassDef
    source: "SourceFile"
    #: Base-class names as written (bare trailing name of the base expr).
    bases: tuple[str, ...] = ()
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.x = SomeClass(...)`` / annotated fields -> class name.
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass(slots=True)
class ModuleInfo:
    """Per-module import facts."""

    rel: str
    name: str
    source: "SourceFile"
    #: Local name -> fully dotted origin, relative imports resolved to
    #: project-local dotted names.  Includes function-level imports.
    imports: dict[str, str] = field(default_factory=dict)
    #: Dotted modules imported at module level at runtime (class bodies
    #: count, ``if TYPE_CHECKING`` bodies and function bodies do not),
    #: with the line of the import statement.
    runtime_imports: list[tuple[str, int]] = field(default_factory=list)


def _is_type_checking_guard(node: ast.stmt) -> bool:
    if not isinstance(node, ast.If):
        return False
    test = node.test
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _annotation_class(ann: ast.expr | None) -> str | None:
    """Best-effort class name out of an annotation expression.

    Handles ``X``, ``mod.X``, ``Optional[X]``, ``X | None``, and string
    annotations; container annotations return None (we only track
    whole-object types)."""
    if ann is None:
        return None
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        try:
            ann = ast.parse(ann.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(ann, ast.Name):
        return ann.id
    if isinstance(ann, ast.Attribute):
        return ann.attr
    if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
        left = _annotation_class(ann.left)
        if left is not None and left != "None":
            return left
        return _annotation_class(ann.right)
    if isinstance(ann, ast.Subscript):
        base = _annotation_class(ann.value)
        if base == "Optional" and not isinstance(ann.slice, ast.Tuple):
            return _annotation_class(ann.slice)
    return None


class SymbolTable:
    """Modules, classes, functions, import maps, attribute types."""

    def __init__(self, project: "Project") -> None:
        self.project = project
        self.modules: dict[str, ModuleInfo] = {}
        #: Dotted module name -> rel path.
        self.by_module_name: dict[str, str] = {}
        #: Bare class name -> ClassInfo (first definition wins; the
        #: repro tree has no duplicate class names).
        self.classes: dict[str, ClassInfo] = {}
        #: Full qual -> FunctionInfo.
        self.functions: dict[str, FunctionInfo] = {}
        #: (rel, name) -> top-level module function.
        self.module_functions: dict[tuple[str, str], FunctionInfo] = {}
        #: Method name -> every project method with that name.
        self.methods_by_name: dict[str, list[FunctionInfo]] = {}
        #: parent function qual -> {name: qual} of directly nested defs.
        self.nested: dict[str, dict[str, str]] = {}

        for source in project.files:
            self._index_module(source)
        for source in project.files:
            self._index_defs(source)
        for info in self.classes.values():
            self._infer_attr_types(info)

    # ------------------------------------------------------------------
    # Imports
    # ------------------------------------------------------------------

    def _index_module(self, source: "SourceFile") -> None:
        info = ModuleInfo(
            rel=source.rel, name=module_name(source.rel), source=source
        )
        self.modules[source.rel] = info
        self.by_module_name[info.name] = source.rel
        package = info.name.split(".") if info.name else []
        if not source.rel.endswith("__init__.py"):
            package = package[:-1] if package else []

        def resolve_from(node: ast.ImportFrom) -> str:
            if node.level:
                base = package[: len(package) - (node.level - 1)]
                if node.module:
                    base = base + node.module.split(".")
                return ".".join(base)
            return node.module or ""

        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    origin = alias.name if alias.asname else local
                    info.imports[local] = origin
            elif isinstance(node, ast.ImportFrom):
                base = resolve_from(node)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    info.imports[alias.asname or alias.name] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )

        def walk_runtime(body: Iterable[ast.stmt]) -> None:
            for node in body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if _is_type_checking_guard(node):
                    walk_runtime(node.orelse)
                    continue
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        info.runtime_imports.append((alias.name, node.lineno))
                elif isinstance(node, ast.ImportFrom):
                    base = resolve_from(node)
                    if base:
                        info.runtime_imports.append((base, node.lineno))
                    for alias in node.names:
                        if base and alias.name != "*":
                            # ``from pkg import mod`` imports a module
                            # too; resolution tolerates non-modules.
                            info.runtime_imports.append(
                                (f"{base}.{alias.name}", node.lineno)
                            )
                if isinstance(
                    node, (ast.If, ast.Try, ast.With, ast.For, ast.While)
                ):
                    for attr in ("body", "orelse", "finalbody", "handlers"):
                        sub = getattr(node, attr, None) or []
                        if attr == "handlers":
                            for handler in sub:
                                walk_runtime(handler.body)
                        else:
                            walk_runtime(sub)
                elif isinstance(node, ast.ClassDef):
                    walk_runtime(node.body)

        walk_runtime(source.tree.body)

    def resolve_module(self, dotted: str) -> str | None:
        """Rel path of a dotted module, tolerating the installed
        package prefix (``repro.serve.query`` matches ``serve/query.py``
        when the linted root *is* the package directory)."""
        parts = dotted.split(".")
        for start in range(len(parts)):
            rel = self.by_module_name.get(".".join(parts[start:]))
            if rel is not None:
                return rel
        return None

    # ------------------------------------------------------------------
    # Definitions
    # ------------------------------------------------------------------

    def _register_function(self, info: FunctionInfo) -> None:
        self.functions[info.qual] = info
        if info.cls is None and info.parent_qual is None:
            self.module_functions[(info.rel, info.name)] = info
        if info.cls is not None:
            self.methods_by_name.setdefault(info.name, []).append(info)
        if info.parent_qual is not None:
            self.nested.setdefault(info.parent_qual, {})[info.name] = info.qual

    def _index_defs(self, source: "SourceFile") -> None:
        def visit(
            body: Iterable[ast.stmt],
            cls: ClassInfo | None,
            parent: FunctionInfo | None,
        ) -> None:
            for node in body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if parent is not None:
                        qual = f"{parent.qual}.<locals>.{node.name}"
                    elif cls is not None:
                        qual = f"{source.rel}::{cls.name}.{node.name}"
                    else:
                        qual = f"{source.rel}::{node.name}"
                    info = FunctionInfo(
                        qual=qual,
                        rel=source.rel,
                        name=node.name,
                        node=node,
                        source=source,
                        cls=cls.name if cls is not None and parent is None else None,
                        parent_qual=parent.qual if parent is not None else None,
                    )
                    self._register_function(info)
                    if cls is not None and parent is None:
                        cls.methods[node.name] = info
                    visit(node.body, cls if parent is None else None, info)
                elif isinstance(node, ast.ClassDef) and parent is None:
                    bases = []
                    for base in node.bases:
                        while isinstance(base, ast.Subscript):
                            base = base.value
                        if isinstance(base, ast.Attribute):
                            bases.append(base.attr)
                        elif isinstance(base, ast.Name):
                            bases.append(base.id)
                    cinfo = ClassInfo(
                        name=node.name,
                        rel=source.rel,
                        node=node,
                        source=source,
                        bases=tuple(bases),
                    )
                    self.classes.setdefault(node.name, cinfo)
                    visit(node.body, cinfo, None)

        visit(source.tree.body, None, None)

    def _infer_attr_types(self, info: ClassInfo) -> None:
        for stmt in info.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                cls = _annotation_class(stmt.annotation)
                if cls in self.classes:
                    info.attr_types.setdefault(stmt.target.id, cls)
        for method in info.methods.values():
            for node in ast.walk(method.node):
                target: ast.expr | None = None
                value: ast.expr | None = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                    cls = _annotation_class(node.annotation)
                    if (
                        cls in self.classes
                        and isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        info.attr_types.setdefault(target.attr, cls)
                if (
                    target is None
                    or value is None
                    or not isinstance(target, ast.Attribute)
                    or not isinstance(target.value, ast.Name)
                    or target.value.id != "self"
                ):
                    continue
                cls = self.call_class_name(value)
                if cls is not None:
                    info.attr_types.setdefault(target.attr, cls)

    def call_class_name(self, value: ast.expr) -> str | None:
        """Class name when ``value`` (possibly ``x or Cls(...)``)
        constructs a known project class."""
        if isinstance(value, ast.BoolOp):
            for part in value.values:
                cls = self.call_class_name(part)
                if cls is not None:
                    return cls
            return None
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        return name if name in self.classes else None

    # ------------------------------------------------------------------
    # Class hierarchy helpers
    # ------------------------------------------------------------------

    def mro_names(self, cls_name: str) -> list[str]:
        """``cls_name`` plus project ancestors (bare names, cycle-safe)."""
        seen: list[str] = []
        stack = [cls_name]
        while stack:
            name = stack.pop(0)
            if name in seen:
                continue
            seen.append(name)
            info = self.classes.get(name)
            if info is not None:
                stack.extend(info.bases)
        return seen

    def lookup_method(self, cls_name: str, method: str) -> FunctionInfo | None:
        for name in self.mro_names(cls_name):
            info = self.classes.get(name)
            if info is not None and method in info.methods:
                return info.methods[method]
        return None
