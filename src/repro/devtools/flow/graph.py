"""Import graph (with layering metadata) and resolved call graph.

The import graph covers *module-level runtime* imports only:
``TYPE_CHECKING`` blocks and function-local imports do not execute at
import time, so they cannot create import cycles or layering
violations, and excluding them keeps R014 aligned with what Python
actually executes.

Layering: each top-level unit of the tree (package directory or root
module) has a rank; a module-level runtime import must target a
*strictly lower* rank unless both modules live in the same unit.
Units absent from :data:`LAYER_RANKS` are skipped — fixture trees and
out-of-tree code simply get no layering findings.

The call graph resolves, per function: direct calls to module-level
functions (local or imported), constructor calls, ``self.m()`` through
the class hierarchy, ``obj.m()`` when ``obj``'s class is inferable
from annotations / constructor assignments / attribute types, and —
as a last resort — method names defined by exactly one project class
(excluding names shared with builtins).  Unresolved calls produce no
edge.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from typing import Iterable

from .symbols import (
    GENERIC_METHOD_NAMES,
    FunctionInfo,
    SymbolTable,
    _annotation_class,
    scope_statements,
)

__all__ = ["FlowGraphs", "LAYER_RANKS", "unit_of"]

#: Architecture layering of the repro tree, low ranks at the bottom.
#: Documented in DESIGN.md §5j; a new top-level package must be given
#: a rank here before R014 will police it.
LAYER_RANKS: dict[str, int] = {
    # 0 — leaves: observability, CLI plumbing, runtime sanitizer
    "obs": 0,
    "cliutil": 0,
    "sanitize": 0,
    # 1 — substrate with no inference dependencies
    "topology": 1,
    "exec": 1,
    "columnar": 1,
    # 2 — data + perturbation over the substrate
    "datasets": 2,
    "faults": 2,
    # 3-5 — the inference pipeline proper
    "measurement": 3,
    "alias": 4,
    "core": 5,
    # 6 — persistence / evaluation over pipeline results
    "checkpoint": 6,
    "validation": 6,
    "export": 6,
    "baselines": 6,
    "analysis": 6,
    "inference": 6,
    # 7 — the stable facade
    "api": 7,
    # 8 — long-running consumers of the facade
    "serve": 8,
    "experiments": 8,
    "devtools": 8,
    # 9+ — entry points
    "cli": 9,
    "__init__": 10,
    "__main__": 10,
}


def unit_of(rel: str) -> str:
    """Top-level unit of a rel path: package dir, or module stem for
    root-level files (``serve/query.py`` -> ``serve``; ``api.py`` ->
    ``api``)."""
    head = rel.split("/", 1)[0]
    return head[:-3] if head.endswith(".py") else head


@dataclass(slots=True)
class ImportEdge:
    src: str
    dst: str
    line: int


@dataclass(slots=True)
class FlowGraphs:
    """Module import graph + function call graph over one project."""

    symbols: SymbolTable
    #: Project-internal module-level runtime import edges.
    import_edges: list[ImportEdge] = field(default_factory=list)
    #: qual -> sorted callee quals (project-internal, resolved only).
    calls: dict[str, list[str]] = field(default_factory=dict)
    #: qual -> per-call-site (node, callee FunctionInfo) pairs.
    call_sites: dict[str, list[tuple[ast.Call, FunctionInfo]]] = field(
        default_factory=dict
    )

    def __init__(self, symbols: SymbolTable) -> None:
        self.symbols = symbols
        self.import_edges = []
        self.calls = {}
        self.call_sites = {}
        self._build_imports()
        for info in symbols.functions.values():
            self._resolve_calls(info)

    # ------------------------------------------------------------------
    # Import graph
    # ------------------------------------------------------------------

    def _build_imports(self) -> None:
        seen: set[tuple[str, str]] = set()
        for rel in sorted(self.symbols.modules):
            module = self.symbols.modules[rel]
            for dotted, line in module.runtime_imports:
                target = self.symbols.resolve_module(dotted)
                if target is None or target == rel:
                    continue
                if (rel, target) in seen:
                    continue
                seen.add((rel, target))
                self.import_edges.append(ImportEdge(rel, target, line))

    def import_cycles(self) -> list[list[str]]:
        """Strongly connected components of size > 1 (each is an
        import cycle), members sorted, components sorted by head."""
        adjacency: dict[str, list[str]] = {}
        for edge in self.import_edges:
            adjacency.setdefault(edge.src, []).append(edge.dst)
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = [0]
        components: list[list[str]] = []

        def strongconnect(node: str) -> None:
            # Iterative Tarjan: (node, iterator state) frames.
            work = [(node, iter(adjacency.get(node, ())))]
            index[node] = low[node] = counter[0]
            counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            while work:
                current, children = work[-1]
                advanced = False
                for child in children:
                    if child not in index:
                        index[child] = low[child] = counter[0]
                        counter[0] += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append((child, iter(adjacency.get(child, ()))))
                        advanced = True
                        break
                    if child in on_stack:
                        low[current] = min(low[current], index[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[current])
                if low[current] == index[current]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == current:
                            break
                    if len(component) > 1:
                        components.append(sorted(component))

        for node in sorted(adjacency):
            if node not in index:
                strongconnect(node)
        return sorted(components)

    def layering_violations(self) -> list[ImportEdge]:
        """Module-level runtime imports that point at an equal or
        higher layer in a *different* unit."""
        violations: list[ImportEdge] = []
        for edge in self.import_edges:
            src_unit, dst_unit = unit_of(edge.src), unit_of(edge.dst)
            if src_unit == dst_unit:
                continue
            src_rank = LAYER_RANKS.get(src_unit)
            dst_rank = LAYER_RANKS.get(dst_unit)
            if src_rank is None or dst_rank is None:
                continue
            if dst_rank >= src_rank:
                violations.append(edge)
        return violations

    # ------------------------------------------------------------------
    # Call graph
    # ------------------------------------------------------------------

    def _local_types(self, info: FunctionInfo) -> dict[str, str]:
        """Name -> project class name for params and simple locals,
        including names inherited from enclosing function scopes."""
        env: dict[str, str] = {}
        if info.parent_qual is not None:
            parent = self.symbols.functions.get(info.parent_qual)
            if parent is not None:
                env.update(self._local_types(parent))
        args = info.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            cls = _annotation_class(arg.annotation)
            if cls in self.symbols.classes:
                env[arg.arg] = cls
        # Two passes so ``a = b`` after ``b = Cls()`` resolves.
        for _ in range(2):
            for node in scope_statements(info.node):
                target: ast.expr | None = None
                value: ast.expr | None = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    target, value = node.target, node.value
                    cls = _annotation_class(node.annotation)
                    if cls in self.symbols.classes and isinstance(
                        target, ast.Name
                    ):
                        env[target.id] = cls
                if target is None or not isinstance(target, ast.Name):
                    continue
                cls = self._expr_class(value, info, env)
                if cls is not None:
                    env[target.id] = cls
        return env

    def _expr_class(
        self,
        expr: ast.expr | None,
        info: FunctionInfo,
        env: dict[str, str],
    ) -> str | None:
        """Project class constructed/held by ``expr``, if inferable."""
        if expr is None:
            return None
        cls = self.symbols.call_class_name(expr)
        if cls is not None:
            return cls
        if isinstance(expr, ast.Name):
            if expr.id == "self" and info.cls is not None:
                return info.cls
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self._expr_class(expr.value, info, env)
            if base is not None:
                for name in self.symbols.mro_names(base):
                    owner = self.symbols.classes.get(name)
                    if owner is not None and expr.attr in owner.attr_types:
                        return owner.attr_types[expr.attr]
        return None

    def _resolve_name_call(
        self, name: str, info: FunctionInfo
    ) -> FunctionInfo | None:
        # Nested function in this or an enclosing function scope?
        probe: str | None = info.qual
        while probe is not None:
            qual = self.symbols.nested.get(probe, {}).get(name)
            if qual is not None:
                return self.symbols.functions.get(qual)
            owner = self.symbols.functions.get(probe)
            probe = owner.parent_qual if owner is not None else None
        # Module-level function in the same file?
        local = self.symbols.module_functions.get((info.rel, name))
        if local is not None:
            return local
        # Class constructor in the same file / project?
        if name in self.symbols.classes:
            return self.symbols.lookup_method(name, "__init__")
        # Imported name?
        module = self.symbols.modules.get(info.rel)
        origin = module.imports.get(name) if module is not None else None
        if origin is None:
            return None
        head, _, tail = origin.rpartition(".")
        if not head:
            return None
        target_rel = self.symbols.resolve_module(head)
        if target_rel is None:
            return None
        if tail in self.symbols.classes and (
            self.symbols.classes[tail].rel == target_rel
        ):
            return self.symbols.lookup_method(tail, "__init__")
        return self.symbols.module_functions.get((target_rel, tail))

    def _resolve_attr_call(
        self,
        call: ast.Call,
        func: ast.Attribute,
        info: FunctionInfo,
        env: dict[str, str],
    ) -> FunctionInfo | None:
        method = func.attr
        base_cls = self._expr_class(func.value, info, env)
        if base_cls is not None:
            resolved = self.symbols.lookup_method(base_cls, method)
            if resolved is not None:
                return resolved
        # ``module.func(...)`` through the import map.
        if isinstance(func.value, ast.Name):
            module = self.symbols.modules.get(info.rel)
            origin = (
                module.imports.get(func.value.id)
                if module is not None
                else None
            )
            if origin is not None:
                target_rel = self.symbols.resolve_module(origin)
                if target_rel is not None:
                    resolved = self.symbols.module_functions.get(
                        (target_rel, method)
                    )
                    if resolved is not None:
                        return resolved
        # Unique project method name (never for builtin-ish names).
        if method not in GENERIC_METHOD_NAMES:
            candidates = self.symbols.methods_by_name.get(method, [])
            if len(candidates) == 1:
                return candidates[0]
        return None

    def _resolve_calls(self, info: FunctionInfo) -> None:
        env = self._local_types(info)
        sites: list[tuple[ast.Call, FunctionInfo]] = []
        for node in scope_statements(info.node):
            if not isinstance(node, ast.Call):
                continue
            resolved: FunctionInfo | None = None
            if isinstance(node.func, ast.Name):
                resolved = self._resolve_name_call(node.func.id, info)
            elif isinstance(node.func, ast.Attribute):
                resolved = self._resolve_attr_call(node, node.func, info, env)
            if resolved is not None:
                sites.append((node, resolved))
        if sites:
            self.call_sites[info.qual] = sites
            self.calls[info.qual] = sorted(
                {callee.qual for _, callee in sites}
            )

    def local_types(self, info: FunctionInfo) -> dict[str, str]:
        """Public accessor used by the flow rules."""
        return self._local_types(info)

    def expr_class(
        self, expr: ast.expr, info: FunctionInfo, env: dict[str, str]
    ) -> str | None:
        """Public accessor used by the flow rules."""
        return self._expr_class(expr, info, env)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def as_dict(self) -> dict[str, object]:
        modules = sorted(self.symbols.modules)
        layers = {}
        for rel in modules:
            rank = LAYER_RANKS.get(unit_of(rel))
            if rank is not None:
                layers[rel] = rank
        return {
            "schema": "repro/flow-graph/1",
            "modules": modules,
            "layers": layers,
            "imports": sorted(
                [edge.src, edge.dst] for edge in self.import_edges
            ),
            "calls": sorted(
                [caller, callee]
                for caller, callees in self.calls.items()
                for callee in callees
            ),
            "stats": {
                "modules": len(modules),
                "functions": len(self.symbols.functions),
                "classes": len(self.symbols.classes),
                "import_edges": len(self.import_edges),
                "call_edges": sum(len(c) for c in self.calls.values()),
            },
        }

    def render_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=False) + "\n"


def edges_from(edges: Iterable[ImportEdge], src: str) -> list[ImportEdge]:
    return [edge for edge in edges if edge.src == src]
