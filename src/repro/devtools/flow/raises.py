"""Interprocedural raised-exception sets (R013's engine).

For every function we compute the set of exception *types* that can
escape it, propagated over the resolved call graph to a fixpoint and
filtered through the ``try/except`` structure at each raise and call
site.  Two deliberate scope limits keep the signal honest:

* Only project-defined exception classes and the process-control
  builtins (``SystemExit``, ``KeyboardInterrupt``, ``GeneratorExit``,
  ``BaseException``; ``sys.exit()`` counts as ``SystemExit``) are
  tracked.  Builtin validation errors (``ValueError`` and friends)
  raised on bad arguments are a different contract — constructor
  validation is allowed to fail loudly everywhere — and tracking them
  would drown the supervisor findings in noise.
* Only *resolved* call edges propagate.  A function reference passed
  as a value (e.g. into a process pool) is not a call edge, which is
  exactly right for containment: the supervisor boundary is crossed
  by the submitting call, not by the worker-side body.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable

from .graph import FlowGraphs
from .symbols import FunctionInfo, SymbolTable

__all__ = ["RaisesAnalysis", "TRACKED_BUILTINS"]

#: Builtins that terminate the process / generator machinery; letting
#: one cross a supervisor boundary is always a containment break.
TRACKED_BUILTINS = frozenset(
    {"BaseException", "GeneratorExit", "KeyboardInterrupt", "SystemExit"}
)

#: Partial builtin exception hierarchy (child -> parent), enough to
#: answer "does ``except X`` catch ``Y``" for the names this tree uses.
_BUILTIN_BASES: dict[str, str | None] = {
    "BaseException": None,
    "Exception": "BaseException",
    "ArithmeticError": "Exception",
    "AssertionError": "Exception",
    "AttributeError": "Exception",
    "EOFError": "Exception",
    "GeneratorExit": "BaseException",
    "IOError": "OSError",
    "IndexError": "LookupError",
    "KeyError": "LookupError",
    "KeyboardInterrupt": "BaseException",
    "LookupError": "Exception",
    "NotImplementedError": "RuntimeError",
    "OSError": "Exception",
    "RuntimeError": "Exception",
    "StopIteration": "Exception",
    "SystemExit": "BaseException",
    "TimeoutError": "OSError",
    "TypeError": "Exception",
    "ValueError": "Exception",
    "ZeroDivisionError": "ArithmeticError",
}

_EXCEPTION_SUFFIXES = ("Error", "Exception", "Fault", "Violation", "Interrupt")


@dataclass(frozen=True, slots=True)
class _RaiseFact:
    """One escaping exception type with its originating raise site."""

    exc: str
    rel: str
    line: int


class RaisesAnalysis:
    """Escaping-exception sets for every project function."""

    def __init__(self, symbols: SymbolTable, graphs: FlowGraphs) -> None:
        self.symbols = symbols
        self.graphs = graphs
        self.project_exceptions = self._find_exception_classes()
        #: qual -> {exc name: originating (rel, line)}.
        self.escaping: dict[str, dict[str, tuple[str, int]]] = {}
        self._solve()

    # ------------------------------------------------------------------
    # Class hierarchy
    # ------------------------------------------------------------------

    def _find_exception_classes(self) -> frozenset[str]:
        names: set[str] = set()
        for name in self.symbols.classes:
            for ancestor in self.symbols.mro_names(name):
                if ancestor in _BUILTIN_BASES or ancestor.endswith(
                    _EXCEPTION_SUFFIXES
                ):
                    names.add(name)
                    break
        return frozenset(names)

    def _parents(self, name: str) -> list[str]:
        info = self.symbols.classes.get(name)
        if info is not None:
            return list(info.bases)
        parent = _BUILTIN_BASES.get(name)
        if parent is not None:
            return [parent]
        if parent is None and name in _BUILTIN_BASES:
            return []
        # Unknown class: assume a plain Exception subclass.
        return ["Exception"]

    def is_subclass(self, exc: str, handler: str) -> bool:
        seen: set[str] = set()
        stack = [exc]
        while stack:
            current = stack.pop()
            if current == handler:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._parents(current))
        return False

    def _tracked(self, exc: str) -> bool:
        return exc in self.project_exceptions or exc in TRACKED_BUILTINS

    # ------------------------------------------------------------------
    # Per-function escape computation
    # ------------------------------------------------------------------

    @staticmethod
    def _handler_names(handler: ast.ExceptHandler) -> tuple[str, ...] | None:
        """Names a handler catches; None means a bare ``except:``."""
        if handler.type is None:
            return None
        types = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        names: list[str] = []
        for node in types:
            if isinstance(node, ast.Attribute):
                names.append(node.attr)
            elif isinstance(node, ast.Name):
                names.append(node.id)
        return tuple(names)

    def _caught(
        self, exc: str, guards: list[tuple[str, ...] | None]
    ) -> bool:
        for names in guards:
            if names is None:
                return True
            if any(self.is_subclass(exc, name) for name in names):
                return True
        return False

    def _raised_type(self, exc: ast.expr) -> str | None:
        node: ast.expr = exc
        if isinstance(node, ast.Call):
            node = node.func
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        return None

    def _escapes_of(self, info: FunctionInfo) -> dict[str, tuple[str, int]]:
        out: dict[str, tuple[str, int]] = {}
        sites = {
            id(node): callee
            for node, callee in self.graphs.call_sites.get(info.qual, ())
        }
        module = self.symbols.modules.get(info.rel)
        imports = module.imports if module is not None else {}

        def add(
            fact: _RaiseFact,
            guards: list[tuple[str, ...] | None],
            force: bool = False,
        ) -> None:
            # ``force`` bypasses the tracked-type filter: bare
            # re-raises and facts propagated from callees were already
            # judged worth tracking where they originated.
            if not force and not self._tracked(fact.exc):
                return
            if self._caught(fact.exc, guards):
                return
            out.setdefault(fact.exc, (fact.rel, fact.line))

        def visit_expr(
            expr: ast.expr, guards: list[tuple[str, ...] | None]
        ) -> None:
            for node in ast.walk(expr):
                if not isinstance(node, ast.Call):
                    continue
                # ``sys.exit()`` / imported ``exit``.
                target = node.func
                dotted = None
                if isinstance(target, ast.Attribute) and isinstance(
                    target.value, ast.Name
                ):
                    base = imports.get(target.value.id)
                    if base is not None:
                        dotted = f"{base}.{target.attr}"
                elif isinstance(target, ast.Name):
                    dotted = imports.get(target.id)
                if dotted == "sys.exit":
                    add(
                        _RaiseFact("SystemExit", info.rel, node.lineno),
                        guards,
                    )
                callee = sites.get(id(node))
                if callee is not None:
                    for exc, origin in self.escaping.get(
                        callee.qual, {}
                    ).items():
                        add(_RaiseFact(exc, *origin), guards, force=True)

        def visit_block(
            stmts: Iterable[ast.stmt],
            guards: list[tuple[str, ...] | None],
            handler_ctx: tuple[str, ...] | None,
        ) -> None:
            for stmt in stmts:
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                if isinstance(stmt, ast.Raise):
                    if stmt.exc is None:
                        # Bare re-raise: the handler's caught types (a
                        # bare ``except:`` re-raises anything).
                        for exc in handler_ctx or ("BaseException",):
                            add(
                                _RaiseFact(exc, info.rel, stmt.lineno),
                                guards,
                                force=True,
                            )
                    else:
                        exc_name = self._raised_type(stmt.exc)
                        if exc_name is not None:
                            add(
                                _RaiseFact(exc_name, info.rel, stmt.lineno),
                                guards,
                            )
                        if stmt.exc is not None:
                            visit_expr(stmt.exc, guards)
                    continue
                if isinstance(stmt, ast.Try):
                    inner = self._try_guards(stmt)
                    visit_block(stmt.body, guards + inner, handler_ctx)
                    for handler in stmt.handlers:
                        visit_block(
                            handler.body,
                            guards,
                            self._handler_names(handler),
                        )
                    visit_block(stmt.orelse, guards, handler_ctx)
                    visit_block(stmt.finalbody, guards, handler_ctx)
                    continue
                for expr in self._stmt_exprs(stmt):
                    visit_expr(expr, guards)
                for attr in ("body", "orelse", "finalbody"):
                    sub = getattr(stmt, attr, None)
                    if sub:
                        visit_block(sub, guards, handler_ctx)

        visit_block(info.node.body, [], None)
        return out

    @staticmethod
    def _try_guards(stmt: ast.Try) -> list[tuple[str, ...] | None]:
        guards: list[tuple[str, ...] | None] = []
        for handler in stmt.handlers:
            guards.append(RaisesAnalysis._handler_names(handler))
        return guards

    @staticmethod
    def _stmt_exprs(stmt: ast.stmt) -> list[ast.expr]:
        exprs: list[ast.expr] = []
        for field_name in ("value", "test", "iter", "exc"):
            value = getattr(stmt, field_name, None)
            if isinstance(value, ast.expr):
                exprs.append(value)
        items = getattr(stmt, "items", None)
        if items:
            for item in items:
                exprs.append(item.context_expr)
        targets = getattr(stmt, "targets", None)
        if targets:
            exprs.extend(t for t in targets if isinstance(t, ast.expr))
        return exprs

    # ------------------------------------------------------------------
    # Fixpoint
    # ------------------------------------------------------------------

    def _solve(self) -> None:
        functions = list(self.symbols.functions.values())
        for _ in range(12):
            changed = False
            for info in functions:
                escapes = self._escapes_of(info)
                if set(escapes) != set(self.escaping.get(info.qual, {})):
                    self.escaping[info.qual] = escapes
                    changed = True
            if not changed:
                break
