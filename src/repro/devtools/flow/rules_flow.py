"""The flow rules R011–R014 (interprocedural; see package docstring).

All four consume the shared :class:`~repro.devtools.flow.FlowAnalysis`
(memoized per project) from their ``finalize`` pass — they need the
whole program, so a per-file pass would be wasted work.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..lint import Finding, Project, Rule, SourceFile, parent_of
from . import FlowAnalysis
from .graph import LAYER_RANKS, unit_of
from .raises import RaisesAnalysis
from .symbols import FunctionInfo, scope_statements

__all__ = [
    "ExceptionContainment",
    "ImportLayering",
    "SeedProvenance",
    "SharedStateRace",
    "FLOW_RULES",
]

#: Container-mutating method names (on an escaped object's attribute
#: or on the object itself) that count as writes for R012.
_MUTATOR_METHODS = frozenset(
    {
        "add", "append", "clear", "discard", "extend", "insert", "pop",
        "popitem", "remove", "setdefault", "sort", "update",
    }
)

_LOCKISH = ("lock", "mutex", "guard", "sem")


def _lock_guarded(node: ast.AST) -> bool:
    """True when ``node`` sits inside a ``with <something lock-ish>:``."""
    current = parent_of(node)
    while current is not None:
        if isinstance(current, (ast.With, ast.AsyncWith)):
            for item in current.items:
                for name_node in ast.walk(item.context_expr):
                    text = None
                    if isinstance(name_node, ast.Name):
                        text = name_node.id
                    elif isinstance(name_node, ast.Attribute):
                        text = name_node.attr
                    if text is not None and any(
                        mark in text.lower() for mark in _LOCKISH
                    ):
                        return True
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Stop at the owning function: an outer caller's lock does
            # not guard code in a function that may be called bare.
            return False
        current = parent_of(current)
    return False


def _base_name(expr: ast.expr) -> str | None:
    """Leftmost ``Name`` of an attribute/subscript chain."""
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    return expr.id if isinstance(expr, ast.Name) else None


class SeedProvenance(Rule):
    """R011 — every RNG reaching the measurement/alias/fault/serve/exec
    draw sites must derive from ``exec.substream()`` or an explicit
    seed; ambient (module-level or global-``random``) streams and RNG
    instances crossing the fork boundary are findings."""

    id = "R011"
    title = "pipeline RNG draws derive from substream or an explicit seed"

    #: Units whose draws feed trace/alias/fault/ingest inference.
    SINK_UNITS = frozenset({"alias", "exec", "faults", "measurement", "serve"})
    #: Fork entry points whose ``context`` payload must not carry RNGs.
    FORK_ENTRY_POINTS = frozenset({"parallel_map", "supervised_map"})

    def finalize(self, project: Project) -> Iterable[Finding]:
        flow = FlowAnalysis.of(project)
        for draw in flow.taint.iter_draws():
            if unit_of(draw.rel) not in self.SINK_UNITS:
                continue
            if "ambient" not in draw.tags:
                continue
            yield Finding(
                rule=self.id,
                path=draw.rel,
                line=draw.node.lineno,
                col=draw.node.col_offset,
                message=(
                    f"{draw.method}() draws from {draw.origin}; ambient "
                    "RNG state is shared across callers and fork "
                    "boundaries — derive a named stream via "
                    "exec.substream(...) or thread an explicit seed"
                ),
            )
        yield from self._check_fork_context(flow)

    def _check_fork_context(self, flow: FlowAnalysis) -> Iterator[Finding]:
        for qual, sites in sorted(flow.graphs.call_sites.items()):
            info = flow.symbols.functions[qual]
            env = flow.taint.scope_env(info)
            for call, callee in sites:
                if callee.name not in self.FORK_ENTRY_POINTS:
                    continue
                for keyword in call.keywords:
                    if keyword.arg != "context":
                        continue
                    payload = (
                        list(keyword.value.elts)
                        if isinstance(keyword.value, (ast.Tuple, ast.List))
                        else [keyword.value]
                    )
                    for item in payload:
                        tags = flow.taint.expr_tags(
                            item, info, info.rel, env
                        )
                        if tags:
                            yield Finding(
                                rule=self.id,
                                path=info.rel,
                                line=item.lineno,
                                col=item.col_offset,
                                message=(
                                    "an RNG instance crosses the fork "
                                    f"boundary via {callee.name}'s "
                                    "context; pass seeds and rebuild "
                                    "per-shard streams with "
                                    "substream() inside the worker"
                                ),
                            )


class SharedStateRace(Rule):
    """R012 — objects that escape into serve/soak worker threads may
    only be mutated at their documented atomic points (``__init__``,
    the per-class atomic method set, or under a lock)."""

    id = "R012"
    title = "thread-shared state mutates only at documented atomic points"

    #: Documented atomic mutation points per thread-escaped class.
    ATOMIC_METHODS: dict[str, frozenset[str]] = {
        "QueryEngine": frozenset({"swap"}),
        "ServiceHealth": frozenset(
            {
                "transition",
                "record_failure",
                "record_quarantine",
                "record_rollback",
                "record_publish",
                "record_map_assessment",
                "subscribe",
            }
        ),
    }

    def finalize(self, project: Project) -> Iterable[Finding]:
        flow = FlowAnalysis.of(project)
        escaped_classes: set[str] = set()
        findings: list[Finding] = []
        for source in project.files:
            findings.extend(
                self._check_thread_sites(source, flow, escaped_classes)
            )
        escaped_classes.update(
            name for name in self.ATOMIC_METHODS if name in flow.symbols.classes
        )
        for cls_name in sorted(escaped_classes):
            findings.extend(self._check_class_methods(cls_name, flow))
        findings.extend(self._check_outside_writes(escaped_classes, flow))
        return findings

    # -- thread spawn sites -------------------------------------------

    def _check_thread_sites(
        self,
        source: SourceFile,
        flow: FlowAnalysis,
        escaped_classes: set[str],
    ) -> Iterator[Finding]:
        module = flow.symbols.modules.get(source.rel)
        imports = module.imports if module is not None else {}
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            dotted = None
            if isinstance(func, ast.Name):
                dotted = imports.get(func.id)
            elif isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name
            ):
                base = imports.get(func.value.id)
                if base is not None:
                    dotted = f"{base}.{func.attr}"
            if dotted != "threading.Thread":
                continue
            target_info, extra_args = self._thread_target(node, source, flow)
            if target_info is None:
                continue
            escaped = self._escaped_names(target_info, extra_args, flow)
            owner = flow.symbols.functions.get(target_info.parent_qual or "")
            env = (
                flow.graphs.local_types(owner)
                if owner is not None
                else {}
            )
            for name in sorted(escaped):
                cls = env.get(name)
                if cls is not None:
                    escaped_classes.add(cls)
            yield from self._check_closure_mutations(
                target_info, escaped, source
            )

    def _thread_target(
        self, call: ast.Call, source: SourceFile, flow: FlowAnalysis
    ) -> tuple[FunctionInfo | None, list[str]]:
        target: FunctionInfo | None = None
        extra: list[str] = []
        for keyword in call.keywords:
            if keyword.arg == "target" and isinstance(
                keyword.value, ast.Name
            ):
                wanted = keyword.value.id
                for info in flow.symbols.functions.values():
                    if info.rel == source.rel and info.name == wanted:
                        target = info
                        break
            elif keyword.arg == "args" and isinstance(
                keyword.value, (ast.Tuple, ast.List)
            ):
                for element in keyword.value.elts:
                    name = _base_name(element)
                    if name is not None:
                        extra.append(name)
        return target, extra

    def _escaped_names(
        self,
        target: FunctionInfo,
        extra_args: list[str],
        flow: FlowAnalysis,
    ) -> set[str]:
        args = target.node.args
        local: set[str] = {a.arg for a in args.posonlyargs + args.args}
        for node in ast.walk(target.node):
            if isinstance(node, ast.Assign):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        local.add(tgt.id)
            elif isinstance(node, (ast.For,)) and isinstance(
                node.target, ast.Name
            ):
                local.add(node.target.id)
        enclosing: set[str] = set()
        probe = target.parent_qual
        while probe is not None:
            owner = flow.symbols.functions.get(probe)
            if owner is None:
                break
            for node in ast.walk(owner.node):
                if isinstance(node, ast.Assign):
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Name):
                            enclosing.add(tgt.id)
            owner_args = owner.node.args
            enclosing.update(
                a.arg for a in owner_args.posonlyargs + owner_args.args
            )
            probe = owner.parent_qual
        free: set[str] = set()
        for node in ast.walk(target.node):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in enclosing
                and node.id not in local
            ):
                free.add(node.id)
        free.update(extra_args)
        return free

    def _check_closure_mutations(
        self,
        target: FunctionInfo,
        escaped: set[str],
        source: SourceFile,
    ) -> Iterator[Finding]:
        for node in ast.walk(target.node):
            write: ast.expr | None = None
            verb = "mutates"
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for tgt in targets:
                    if isinstance(tgt, (ast.Attribute, ast.Subscript)):
                        write = tgt
                        break
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
            ):
                write = node.func.value
                verb = f"calls .{node.func.attr}() on"
            if write is None:
                continue
            name = _base_name(write)
            if name is None or name not in escaped:
                continue
            if _lock_guarded(node):
                continue
            yield Finding(
                rule=self.id,
                path=source.rel,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"thread body {verb} {name!r}, which is shared "
                    "with other threads, outside any lock; guard the "
                    "write or route it through the object's atomic "
                    "mutation point"
                ),
            )

    # -- escaped-class method scan ------------------------------------

    def _allowed(self, cls_name: str, method: str) -> bool:
        if method == "__init__":
            return True
        return method in self.ATOMIC_METHODS.get(cls_name, frozenset())

    def _check_class_methods(
        self, cls_name: str, flow: FlowAnalysis
    ) -> Iterator[Finding]:
        info = flow.symbols.classes.get(cls_name)
        if info is None:
            return
        for method_name, method in sorted(info.methods.items()):
            if self._allowed(cls_name, method_name):
                continue
            for node in ast.walk(method.node):
                write: ast.expr | None = None
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for tgt in targets:
                        if (
                            isinstance(tgt, (ast.Attribute, ast.Subscript))
                            and _base_name(tgt) == "self"
                        ):
                            write = tgt
                            break
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATOR_METHODS
                    and _base_name(node.func.value) == "self"
                    and isinstance(node.func.value, ast.Attribute)
                ):
                    write = node.func.value
                if write is None or _lock_guarded(node):
                    continue
                atomic = ", ".join(
                    sorted(self.ATOMIC_METHODS.get(cls_name, ()))
                ) or "__init__"
                yield Finding(
                    rule=self.id,
                    path=info.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"{cls_name}.{method_name} mutates thread-"
                        f"shared state outside the documented atomic "
                        f"points ({atomic}) and without a lock"
                    ),
                )

    # -- writes from outside the class --------------------------------

    def _check_outside_writes(
        self, escaped_classes: set[str], flow: FlowAnalysis
    ) -> Iterator[Finding]:
        if not escaped_classes:
            return
        for qual in sorted(flow.symbols.functions):
            info = flow.symbols.functions[qual]
            if info.cls in escaped_classes:
                continue  # own methods handled above
            env = flow.graphs.local_types(info)
            for node in scope_statements(info.node):
                if not isinstance(node, (ast.Assign, ast.AugAssign)):
                    continue
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for tgt in targets:
                    if not isinstance(tgt, (ast.Attribute, ast.Subscript)):
                        continue
                    holder = tgt.value if isinstance(tgt, ast.Attribute) else tgt
                    while isinstance(holder, ast.Subscript):
                        holder = holder.value
                    if isinstance(holder, ast.Attribute):
                        owner_cls = flow.graphs.expr_class(
                            holder.value, info, env
                        )
                    elif isinstance(tgt, ast.Attribute):
                        owner_cls = flow.graphs.expr_class(
                            tgt.value, info, env
                        )
                    else:
                        owner_cls = None
                    if owner_cls not in escaped_classes:
                        continue
                    if _lock_guarded(node):
                        continue
                    yield Finding(
                        rule=self.id,
                        path=info.rel,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"writes {owner_cls} state from outside "
                            "the class; thread-shared objects mutate "
                            "only via their atomic methods"
                        ),
                    )


class ExceptionContainment(Rule):
    """R013 — functions under a supervision contract cannot let
    exceptions escape past their declared boundary."""

    id = "R013"
    title = "supervised boundaries contain every non-contract exception"

    #: (module rel suffix, dotted function, exception names allowed to
    #: escape).  The serve supervisor's docstring contract is
    #: "exceptions never escape"; supervised_map's contract names
    #: ShardExecutionError as its one deliberate re-raise.
    BOUNDARIES: tuple[tuple[str, str, frozenset[str]], ...] = (
        ("exec/supervise.py", "supervised_map", frozenset({"ShardExecutionError"})),
        ("serve/supervise.py", "ServiceSupervisor.ingest_epoch", frozenset()),
        ("serve/supervise.py", "ServiceSupervisor.drain_epoch", frozenset()),
        ("serve/supervise.py", "ServiceSupervisor.publish", frozenset()),
    )

    #: Fail-loud diagnostics: these assert broken invariants, and the
    #: whole point of an invariant assertion is that nothing swallows
    #: it — any boundary may let them escape.
    FAIL_LOUD = frozenset(
        {"AssertionError", "SanitizerViolation", "UnregisteredEventError"}
    )

    def finalize(self, project: Project) -> Iterable[Finding]:
        flow = FlowAnalysis.of(project)
        raises: RaisesAnalysis = flow.raises
        for suffix, dotted, allowed in self.BOUNDARIES:
            for qual, info in flow.symbols.functions.items():
                if not info.rel.endswith(suffix):
                    continue
                local = qual.split("::", 1)[1]
                if local != dotted:
                    continue
                for exc, (origin_rel, origin_line) in sorted(
                    raises.escaping.get(qual, {}).items()
                ):
                    if exc in allowed or exc in self.FAIL_LOUD:
                        continue
                    where = (
                        f"raised at {origin_rel}:{origin_line}"
                        if (origin_rel, origin_line)
                        != (info.rel, info.node.lineno)
                        else "raised here"
                    )
                    yield Finding(
                        rule=self.id,
                        path=info.rel,
                        line=info.node.lineno,
                        col=info.node.col_offset,
                        message=(
                            f"{dotted} lets {exc} escape its "
                            f"containment boundary ({where}); the "
                            "contract allows only "
                            f"{{{', '.join(sorted(allowed)) or 'nothing'}}}"
                        ),
                    )


class ImportLayering(Rule):
    """R014 — the module-level runtime import graph must be a DAG that
    respects the architecture layering (see DESIGN.md §5j)."""

    id = "R014"
    title = "module imports respect the layering DAG"

    def finalize(self, project: Project) -> Iterable[Finding]:
        flow = FlowAnalysis.of(project)
        for edge in flow.graphs.layering_violations():
            src_unit, dst_unit = unit_of(edge.src), unit_of(edge.dst)
            yield Finding(
                rule=self.id,
                path=edge.src,
                line=edge.line,
                col=0,
                message=(
                    f"imports {edge.dst} ({dst_unit}, layer "
                    f"{LAYER_RANKS[dst_unit]}) from {src_unit} (layer "
                    f"{LAYER_RANKS[src_unit]}); module-level imports "
                    "must point strictly down the layering"
                ),
            )
        for component in flow.graphs.import_cycles():
            head = component[0]
            line = 1
            for edge in flow.graphs.import_edges:
                if edge.src == head and edge.dst in component:
                    line = edge.line
                    break
            yield Finding(
                rule=self.id,
                path=head,
                line=line,
                col=0,
                message=(
                    "import cycle: " + " -> ".join(component + [head])
                ),
            )


FLOW_RULES: tuple[type[Rule], ...] = (
    SeedProvenance,
    SharedStateRace,
    ExceptionContainment,
    ImportLayering,
)
