"""JSON export of inference results and topology summaries.

The paper published its inferred interconnection map as supplemental
data.  This module renders a :class:`~repro.core.types.CfsResult` (and
the supporting metadata) into plain JSON-serialisable dictionaries so a
downstream consumer — a dashboard, a notebook, another tool — can use
the map without importing this library.

The schema is stable and documented field-by-field on each function.
"""

from __future__ import annotations

import json
from typing import Any

from .core.facility_db import FacilityDatabase
from .core.types import CfsResult, InterfaceState, LinkInference
from .topology.addressing import int_to_ip
from .topology.topology import Topology

__all__ = [
    "interface_record",
    "link_record",
    "export_result",
    "export_topology_summary",
    "export_facility_graph_dot",
    "dumps_result",
]


def interface_record(
    state: InterfaceState, facility_db: FacilityDatabase | None = None
) -> dict[str, Any]:
    """One interface's inference as a JSON-ready dict.

    Fields: ``address`` (dotted quad), ``owner_asn``, ``status``,
    ``type``, ``remote``, ``facility`` (or null), ``candidates`` (sorted
    list), ``metro`` (when the facility database can name it),
    ``confidence`` and ``data_health`` (degraded-mode annotations).
    """
    facility = state.resolved_facility
    metro = None
    if facility is not None and facility_db is not None:
        metro = facility_db.metro_of(facility)
    return {
        "address": int_to_ip(state.address),
        "owner_asn": state.owner_asn,
        "status": state.status.value,
        "type": state.inferred_type.value,
        "remote": state.remote,
        "facility": facility,
        "metro": metro,
        "candidates": sorted(state.candidates) if state.candidates else [],
        "conflicts": state.conflicts,
        "confidence": state.confidence,
        "data_health": state.data_health,
    }


def link_record(link: LinkInference) -> dict[str, Any]:
    """One interconnection inference as a JSON-ready dict."""
    return {
        "kind": link.kind.value,
        "type": link.inferred_type.value,
        "near": {
            "address": int_to_ip(link.near_address),
            "asn": link.near_asn,
            "facility": link.near_facility,
        },
        "far": {
            "asn": link.far_asn,
            "facility": link.far_facility,
            "address": (
                int_to_ip(link.far_address)
                if link.far_address is not None
                else None
            ),
            "port": (
                int_to_ip(link.ixp_address)
                if link.ixp_address is not None
                else None
            ),
        },
        "ixp": link.ixp_id,
        "confidence": link.confidence,
    }


def export_result(
    result: CfsResult, facility_db: FacilityDatabase | None = None
) -> dict[str, Any]:
    """The full inference map: interfaces, links, and run statistics.

    ``metrics`` carries the run's counters and per-stage wall-clock
    timings (see :class:`repro.obs.MetricsSnapshot.as_dict`); it is
    ``None`` for results produced outside the instrumented loop.  The
    per-iteration ``applied``/``traces_parsed`` history fields describe
    *work done*, not inferences — the incremental and full-rescan
    engines agree on everything else byte for byte.
    """
    return {
        "schema": "repro/cfs-result/1",
        "stats": {
            "iterations": result.iterations_run,
            "interfaces_seen": result.peering_interfaces_seen,
            "resolved": len(result.resolved_interfaces()),
            "resolved_fraction": result.resolved_fraction(),
            "followup_traces": result.followup_traces,
        },
        "interfaces": [
            interface_record(state, facility_db)
            for _, state in sorted(result.interfaces.items())
        ],
        "links": [link_record(link) for link in result.links],
        "history": [
            {
                "iteration": stats.iteration,
                "total": stats.total_interfaces,
                "resolved": stats.resolved,
                "unresolved_local": stats.unresolved_local,
                "unresolved_remote": stats.unresolved_remote,
                "missing_data": stats.missing_data,
                "observations": stats.observations_total,
                "applied": stats.observations_applied,
                "traces_parsed": stats.traces_parsed,
            }
            for stats in result.history
        ],
        "metrics": (
            result.metrics.as_dict() if result.metrics is not None else None
        ),
    }


def export_topology_summary(topology: Topology) -> dict[str, Any]:
    """Ground-truth metadata useful next to an exported map: facilities
    with operators/metros/coordinates and the exchanges with their
    partner facilities (building-directory data, not tenant lists)."""
    return {
        "schema": "repro/topology-summary/1",
        "counts": topology.summary(),
        "facilities": [
            {
                "id": facility.facility_id,
                "name": facility.name,
                "operator": topology.operators[facility.operator_id].name,
                "metro": facility.metro,
                "country": facility.country,
                "region": facility.region,
                "latitude": facility.location.latitude,
                "longitude": facility.location.longitude,
            }
            for facility in sorted(
                topology.facilities.values(), key=lambda f: f.facility_id
            )
        ],
        "ixps": [
            {
                "id": ixp.ixp_id,
                "name": ixp.name,
                "metro": ixp.metro,
                "active": ixp.active,
                "facilities": sorted(ixp.facility_ids),
                "prefixes": [str(prefix) for prefix in ixp.peering_lans],
            }
            for ixp in sorted(topology.ixps.values(), key=lambda i: i.ixp_id)
        ],
    }


def export_facility_graph_dot(
    result: CfsResult,
    facility_db: FacilityDatabase | None = None,
    min_links: int = 1,
) -> str:
    """The inferred facility-level interconnection graph as Graphviz DOT.

    Nodes are facilities (labelled with their metro when the database
    can name it); an edge joins two facilities when at least
    ``min_links`` inferred interconnections have one pinned end in each.
    Cross-connects collapse onto self-loops, which DOT renders as loops
    on the node; they are omitted for readability.
    """
    edge_weights: dict[tuple[int, int], int] = {}
    nodes: set[int] = set()
    for link in result.links:
        if link.near_facility is None or link.far_facility is None:
            continue
        nodes.add(link.near_facility)
        nodes.add(link.far_facility)
        if link.near_facility == link.far_facility:
            continue
        key = (
            min(link.near_facility, link.far_facility),
            max(link.near_facility, link.far_facility),
        )
        edge_weights[key] = edge_weights.get(key, 0) + 1

    def node_label(facility: int) -> str:
        metro = (
            facility_db.metro_of(facility) if facility_db is not None else None
        )
        return f"f{facility}\\n{metro}" if metro else f"f{facility}"

    lines = ["graph inferred_facility_map {", "  node [shape=box];"]
    for facility in sorted(nodes):
        lines.append(f'  f{facility} [label="{node_label(facility)}"];')
    for (a, b), weight in sorted(edge_weights.items()):
        if weight < min_links:
            continue
        lines.append(f'  f{a} -- f{b} [label="{weight}"];')
    lines.append("}")
    return "\n".join(lines)


def dumps_result(
    result: CfsResult,
    facility_db: FacilityDatabase | None = None,
    **json_kwargs: Any,
) -> str:
    """JSON text of :func:`export_result` (``indent=2`` by default)."""
    json_kwargs.setdefault("indent", 2)
    return json.dumps(export_result(result, facility_db), **json_kwargs)
