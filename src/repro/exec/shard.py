"""Seeded shard planning and named RNG substreams.

Parallel execution must not change a single output byte, which rules
out anything order- or timing-dependent:

* work is split by a **stable key** (CRC-32 of a caller-chosen string,
  never the PYTHONHASHSEED-randomised builtin ``hash``), so the same
  plan shards identically in every process and on every run;
* items keep their **original indices** through the shard, so the
  parent can merge results back into plan order no matter which shard
  finished first;
* randomness inside a shard comes from a **named substream**
  (``substream("shard", name, index)`` style) derived from string
  parts, never from a shared sequential stream whose state would
  depend on how work interleaves.

The planner is pure bookkeeping — it never touches the items.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from random import Random
from typing import Callable, Sequence, TypeVar

from ..sanitize import tag_rng

__all__ = ["Shard", "plan_shards", "plan_blocks", "stable_key", "substream"]

T = TypeVar("T")


def stable_key(text: str) -> int:
    """A process-stable 32-bit key for ``text``.

    The builtin ``hash()`` of a string varies per process under hash
    randomisation; CRC-32 is fixed by the bytes alone, so shard
    assignment survives forks, restarts, and resumed runs.
    """
    return zlib.crc32(text.encode("utf-8"))


def substream(*parts: object) -> Random:
    """A named RNG substream, e.g. ``substream("shard", name, index)``.

    Derived from the colon-joined string rendering of ``parts`` —
    ``random.Random`` seeds from strings deterministically — so every
    (name, index) pair owns an independent stream regardless of how
    many other streams were consumed before it.

    Under the sanitizer the stream is stamped with its derivation, so
    draw chokepoints can assert provenance (``assert_rng``).
    """
    return tag_rng(Random(":".join(str(part) for part in parts)), *parts)


@dataclass(frozen=True, slots=True)
class Shard:
    """One unit of parallel work: items plus their plan positions."""

    #: Position in the shard plan (merge order).
    index: int
    #: The items assigned to this shard, in original relative order.
    items: tuple
    #: Original plan index of each item (aligned with ``items``).
    item_indices: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.items)


def plan_shards(
    items: Sequence[T],
    shards: int,
    key: Callable[[T], str],
) -> list[Shard]:
    """Partition ``items`` into at most ``shards`` shards by key.

    Items with equal ``key`` strings land in the same shard (CRC-32 of
    the key modulo the shard count), and every shard preserves the
    items' original relative order.  Empty shards are dropped, so the
    returned list may be shorter than ``shards``.
    """
    if shards < 1:
        raise ValueError(f"shards must be at least 1, got {shards}")
    buckets: list[list[int]] = [[] for _ in range(shards)]
    for index, item in enumerate(items):
        buckets[stable_key(key(item)) % shards].append(index)
    planned: list[Shard] = []
    for bucket in buckets:
        if not bucket:
            continue
        planned.append(
            Shard(
                index=len(planned),
                items=tuple(items[i] for i in bucket),
                item_indices=tuple(bucket),
            )
        )
    return planned


def plan_blocks(
    total: int, shards: int, min_size: int = 1
) -> list[tuple[int, int]]:
    """Split ``range(total)`` into at most ``shards`` contiguous blocks.

    Block sizes differ by at most one and every index is covered
    exactly once, so merging block results in block order reproduces
    the serial iteration order.  Empty blocks are dropped.

    ``min_size`` coarsens the split: no block is planned smaller than
    it (except the single block of an undersized total), so callers can
    keep fork/IPC overhead amortised over batches instead of paying a
    submission round-trip per sliver of work.
    """
    if shards < 1:
        raise ValueError(f"shards must be at least 1, got {shards}")
    if min_size < 1:
        raise ValueError(f"min_size must be at least 1, got {min_size}")
    if total <= 0:
        return []
    count = min(shards, total, max(1, total // min_size))
    base, extra = divmod(total, count)
    blocks: list[tuple[int, int]] = []
    start = 0
    for index in range(count):
        stop = start + base + (1 if index < extra else 0)
        blocks.append((start, stop))
        start = stop
    return blocks
