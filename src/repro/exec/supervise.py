"""Supervised parallel execution: deadlines, retries, quarantine.

:func:`repro.exec.pool.parallel_map` assumes a well-behaved pool — a
worker that dies mid-shard (``BrokenProcessPool``) or hangs forever
aborts the whole map.  :func:`supervised_map` wraps the same fork-based
pool in a supervisor that keeps the campaign alive through exactly
those failures:

* a **progress deadline** (:attr:`SupervisorConfig.shard_timeout_s`)
  bounds how long the supervisor waits between shard completions; when
  it expires, the still-pending shards are treated as hung, the pool is
  killed and rebuilt, and the shards are resubmitted;
* a **dead worker** (``BrokenProcessPool`` — the child called
  ``os._exit``, segfaulted, or was OOM-killed) likewise triggers a pool
  rebuild and a retry of every shard that had not completed;
* each shard is retried at most :attr:`SupervisorConfig.max_retries`
  times; a shard that keeps failing is **quarantined** — executed
  serially in the parent process, where an injected crash/hang cannot
  occur — so a poisoned shard degrades throughput, never correctness;
* pool rebuilds are bounded too
  (:attr:`SupervisorConfig.max_pool_rebuilds`); past the bound, or when
  a rebuild itself fails (``OSError``), every remaining shard runs
  serially in the parent (reported via ``fallback("pool_unavailable")``).

**Determinism.**  Every slot of the returned list is ``fn(context,
payload)`` — computed in a forked child, a retried child, or the parent
— and ``fn`` draws randomness only from substreams keyed by its payload
(:func:`repro.exec.shard.substream`), never from shared sequential
state.  A retried or quarantined shard therefore lands in its original
slot with its original bytes, so ``workers=N`` output under *any* crash
pattern is byte-identical to the serial run (``tests/exec`` and the
acceptance gate in ``tests/core/test_resume.py`` pin this down).

**Seeded chaos.**  :class:`ExecFaultSpec` injects ``worker_crash`` /
``worker_hang`` faults *inside the forked child only*: the draw comes
from ``substream("exec-fault", seed, index, attempt)``, so the fault
pattern is a pure function of the spec — independent of worker count,
scheduling, or wall-clock — and a retry (next ``attempt``) re-rolls.
Serial and quarantined execution never inject, which is what makes the
quarantine escape hatch sound.

A genuine Python exception raised by ``fn`` is *not* retried — the
function is deterministic, so the retry would fail identically — it is
wrapped in :class:`ShardExecutionError` naming the payload index (and
the shard, via ``describe``) and re-raised.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Sequence, TypeVar

import multiprocessing

from .pool import ShardExecutionError, _wrapped_call, fork_available
from .shard import substream

__all__ = [
    "ExecFaultSpec",
    "ShardExecutionError",
    "SupervisorConfig",
    "instrument_observer",
    "supervised_map",
]

P = TypeVar("P")
R = TypeVar("R")

#: Exit status of an injected worker crash (visible in core dumps and
#: strace output when debugging the supervisor itself).
CRASH_EXIT_CODE = 113

#: Fork-inherited context for supervised workers (same copy-on-write
#: discipline as :data:`repro.exec.pool._WORKER_CONTEXT`).
_SUPERVISED_CONTEXT: Any = None

#: Sentinel for "this slot has no result yet".
_MISSING = object()


@dataclass(frozen=True, slots=True)
class SupervisorConfig:
    """Knobs of the supervision loop (validated at construction)."""

    #: Progress deadline: the longest the supervisor waits between
    #: shard completions before declaring the pending shards hung
    #: (``None`` = wait forever; dead workers are still detected).
    shard_timeout_s: float | None = None
    #: Times one shard may be retried on a rebuilt pool before it is
    #: quarantined to serial in-process execution.
    max_retries: int = 2
    #: Pool rebuilds allowed per map; past this every remaining shard
    #: runs serially in the parent.
    max_pool_rebuilds: int = 4

    def __post_init__(self) -> None:
        if self.shard_timeout_s is not None and self.shard_timeout_s <= 0:
            raise ValueError(
                f"shard_timeout_s must be positive, got {self.shard_timeout_s}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        if self.max_pool_rebuilds < 0:
            raise ValueError(
                f"max_pool_rebuilds must be non-negative, "
                f"got {self.max_pool_rebuilds}"
            )


@dataclass(frozen=True, slots=True)
class ExecFaultSpec:
    """Seeded executor-level fault intensities (chaos for the pool).

    Faults fire only inside forked children, from the substream
    ``("exec-fault", seed, payload_index, attempt)`` — deterministic in
    the spec alone.  ``crash`` calls ``os._exit`` mid-shard (the worker
    dies without unwinding); ``hang`` sleeps ``hang_s`` seconds before
    computing, which trips the supervisor's deadline when ``hang_s``
    exceeds it and is a harmless pause otherwise.
    """

    crash: float = 0.0
    hang: float = 0.0
    hang_s: float = 30.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("crash", "hang"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"fault rate {name}={value!r} must be in [0, 1]"
                )
        if self.hang_s <= 0:
            raise ValueError(f"hang_s must be positive, got {self.hang_s}")

    @property
    def is_zero(self) -> bool:
        """True when neither executor fault class is enabled."""
        return self.crash == 0.0 and self.hang == 0.0


def instrument_observer(obs: Any) -> Callable[[str, int, str], None]:
    """Adapt an ``Instrumentation`` into a supervision observer.

    Maps supervisor incidents onto the registered event namespace:
    ``exec.shard.retry`` (one shard resubmitted after a crash/hang),
    ``exec.shard.quarantine`` (one shard demoted to serial in-process
    execution), and ``exec.pool.rebuild`` (the pool was torn down and
    recreated; ``index`` carries the number of shards resubmitted on
    the fresh pool).  Each incident also bumps the counter of the same
    name, which the chaos report and the recovery smoke read back.
    """

    def observer(kind: str, index: int, reason: str) -> None:
        if kind == "retry":
            obs.count("exec.shard.retry")
            obs.emit("exec.shard.retry", index=index, reason=reason)
        elif kind == "quarantine":
            obs.count("exec.shard.quarantine")
            obs.emit("exec.shard.quarantine", index=index, reason=reason)
        elif kind == "rebuild":
            obs.count("exec.pool.rebuild")
            obs.emit("exec.pool.rebuild", index=index, reason=reason)

    return observer


# ----------------------------------------------------------------------
# Worker-side trampoline
# ----------------------------------------------------------------------


def _supervised_call(
    fn: Callable[[Any, P], R],
    index: int,
    attempt: int,
    faults: ExecFaultSpec | None,
    payload: P,
) -> R:
    """Run one shard in a forked child, injecting seeded exec faults.

    The fault draw is keyed by (index, attempt): a crashed shard's
    retry re-rolls, so bounded retries converge with probability
    ``1 - crash**(max_retries+1)`` and the quarantine path mops up the
    rest.  Runs only in pool children — the parent's serial and
    quarantine paths call ``fn`` directly and never inject.
    """
    if faults is not None and not faults.is_zero:
        rng = substream("exec-fault", faults.seed, index, attempt)
        if faults.crash > 0 and rng.random() < faults.crash:
            os._exit(CRASH_EXIT_CODE)
        if faults.hang > 0 and rng.random() < faults.hang:
            time.sleep(faults.hang_s)
    return fn(_SUPERVISED_CONTEXT, payload)


def _draw_faults(
    faults: ExecFaultSpec | None, index: int, attempt: int
) -> bool:
    """Parent-side replica of :func:`_supervised_call`'s fault draw.

    The draw is a pure function of ``(spec, index, attempt)``, so the
    supervisor can tell *which* shard took the pool down without any
    signal from the dead child (``BrokenProcessPool`` fails every
    pending future indiscriminately).  Returns True when the shard's
    current attempt draws an injected crash or hang.
    """
    if faults is None or faults.is_zero:
        return False
    rng = substream("exec-fault", faults.seed, index, attempt)
    if faults.crash > 0 and rng.random() < faults.crash:
        return True
    return faults.hang > 0 and rng.random() < faults.hang


# ----------------------------------------------------------------------
# Parent-side supervision
# ----------------------------------------------------------------------


def _new_pool(workers: int, payload_count: int) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(
        max_workers=min(workers, payload_count),
        mp_context=multiprocessing.get_context("fork"),
    )


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting on hung or dead children."""
    pool.shutdown(wait=False, cancel_futures=True)
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except (OSError, ValueError):  # already reaped / closed handle
            pass


def supervised_map(
    fn: Callable[[Any, P], R],
    payloads: Sequence[P],
    *,
    workers: int,
    context: Any = None,
    config: SupervisorConfig | None = None,
    faults: ExecFaultSpec | None = None,
    fallback: Callable[[str], None] | None = None,
    observer: Callable[[str, int, str], None] | None = None,
    describe: Callable[[P], str] | None = None,
) -> list[R]:
    """Apply ``fn(context, payload)`` to every payload, surviving the pool.

    The robust superset of :func:`repro.exec.pool.parallel_map`: same
    ordered byte-identical merge contract, same serial fallbacks and
    ``fallback(reason)`` vocabulary (``"too_few_payloads"``,
    ``"no_fork"``, ``"pool_unavailable"``), plus supervision — dead
    workers and hung shards are retried on a rebuilt pool and
    persistently-failing shards are quarantined to serial in-process
    execution (see the module docstring for the full policy).

    ``observer(kind, index, reason)`` is called on every supervision
    incident with ``kind`` in ``{"retry", "quarantine", "rebuild"}``;
    :func:`instrument_observer` adapts an ``Instrumentation``.
    ``describe(payload)`` labels a shard in :class:`ShardExecutionError`
    messages.
    """
    config = config or SupervisorConfig()

    def run_serial(indices: Sequence[int]) -> None:
        for index in indices:
            results[index] = _wrapped_call(
                fn, context, index, payloads[index], describe
            )

    results: list[Any] = [_MISSING] * len(payloads)
    if workers <= 1 or len(payloads) <= 1:
        if workers > 1 and fallback is not None:
            fallback("too_few_payloads")
        run_serial(range(len(payloads)))
        return results
    if not fork_available():
        if fallback is not None:
            fallback("no_fork")
        run_serial(range(len(payloads)))
        return results

    global _SUPERVISED_CONTEXT
    _SUPERVISED_CONTEXT = context
    attempts = [0] * len(payloads)
    rebuilds = 0
    pool: ProcessPoolExecutor | None = None
    try:
        try:
            pool = _new_pool(workers, len(payloads))
        except OSError:
            if fallback is not None:
                fallback("pool_unavailable")
            run_serial(range(len(payloads)))
            return results

        active: dict[Future, int] = {}

        def submit(indices: Sequence[int]) -> list[int]:
            """Submit shards; return the ones a mid-loop pool break
            left unsubmitted (an early crash can flag the pool broken
            before the loop reaches its later indices)."""
            pending = list(indices)
            while pending:
                try:
                    future = pool.submit(
                        _supervised_call,
                        fn,
                        pending[0],
                        attempts[pending[0]],
                        faults,
                        payloads[pending[0]],
                    )
                except BrokenProcessPool:
                    return pending
                active[future] = pending.pop(0)
            return []

        def recover(failed: list[int], reason: str) -> None:
            """Classify failed shards, rebuild the pool, resubmit.

            One dead worker fails *every* in-flight future, but only the
            shard whose seeded draw fired actually burned an attempt —
            the rest are innocent bystanders that never ran (or were
            killed mid-flight through no fault of their own).  Charging
            everyone amplifies one crash into a retry per in-flight
            shard and cascades into repeated rebuilds, so retries are
            charged **per shard attempt**: only shards whose current
            (index, attempt) draw faults are charged and re-rolled;
            bystanders resubmit with their attempt unchanged, which
            re-runs the identical (clean) draw.  When no culprit can be
            predicted — a genuine crash or hang, no fault spec to
            consult — every failed shard is charged, as before.
            """
            nonlocal pool, rebuilds
            failed = sorted(set(failed))
            culprits = {
                index
                for index in failed
                if _draw_faults(faults, index, attempts[index])
            } or set(failed)
            retry: list[int] = []
            quarantine: list[int] = []
            unsubmitted: list[int] = []
            for index in failed:
                if index not in culprits:
                    retry.append(index)
                    continue
                attempts[index] += 1
                if attempts[index] > config.max_retries:
                    quarantine.append(index)
                    if observer is not None:
                        observer("quarantine", index, reason)
                else:
                    retry.append(index)
                    if observer is not None:
                        observer("retry", index, reason)
            _kill_pool(pool)
            pool = None
            active.clear()
            if retry:
                rebuilds += 1
                rebuild_failed = rebuilds > config.max_pool_rebuilds
                if not rebuild_failed:
                    try:
                        pool = _new_pool(workers, len(retry))
                    except OSError:
                        rebuild_failed = True
                if rebuild_failed:
                    # The pool cannot come back: demote the retries to
                    # the quarantine path rather than give up on them.
                    if fallback is not None:
                        fallback("pool_unavailable")
                    quarantine.extend(retry)
                    retry = []
                else:
                    if observer is not None:
                        observer("rebuild", len(retry), reason)
                    unsubmitted = submit(retry)
            run_serial(quarantine)
            if unsubmitted:
                # The rebuilt pool broke during resubmission: the shards
                # it did accept are doomed alongside the leftovers.
                recover(unsubmitted + list(active.values()), "crash")

        unsubmitted = submit(range(len(payloads)))
        if unsubmitted:
            recover(unsubmitted + list(active.values()), "crash")
        while active:
            done, _ = wait(
                set(active),
                timeout=config.shard_timeout_s,
                return_when=FIRST_COMPLETED,
            )
            if not done:
                # No completion within the deadline: everything still
                # pending counts as hung (running or starved behind a
                # hung worker — either way the pool must go).
                recover([active[future] for future in active], "hang")
                continue
            crashed: list[int] = []
            for future in done:
                index = active.pop(future)
                try:
                    results[index] = future.result()
                except BrokenProcessPool:
                    crashed.append(index)
                except Exception as error:
                    label = (
                        describe(payloads[index])
                        if describe is not None
                        else None
                    )
                    raise ShardExecutionError(index, label, error) from error
            if crashed:
                # A dead worker breaks the whole executor; every shard
                # that has not delivered a result needs the rebuilt pool.
                crashed.extend(active.values())
                recover(crashed, "crash")
    finally:
        if pool is not None:
            pool.shutdown(wait=True)
        _SUPERVISED_CONTEXT = None
    return results
