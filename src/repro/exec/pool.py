"""Fork-based ``parallel_map`` with deterministic, ordered results.

The one place in the repository allowed to import ``multiprocessing``
and ``concurrent.futures`` (reprolint rule R007 keeps every other
module out): concentrating process management here keeps the seeding
and merge discipline auditable in one file.

Design constraints, in order:

1. **Determinism** — results come back in submission order regardless
   of completion order, and the worker context is shared by fork
   (copy-on-write), never re-seeded or re-built per process.
2. **Graceful degradation** — when fork is unavailable or the pool
   cannot be created (sandboxes, restricted platforms), the map runs
   serially in-process and reports the reason through the optional
   ``fallback`` callback.  Serial and parallel execution produce
   byte-identical results by construction, so falling back is always
   safe.
3. **Cheap payloads** — the context (engines, topologies, corpora) is
   inherited by fork and addressed through a module global; only the
   per-shard payloads and results cross the pickle boundary.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Sequence, TypeVar

__all__ = ["fork_available", "parallel_map"]

P = TypeVar("P")
R = TypeVar("R")

#: Fork-inherited worker context.  The parent sets it immediately
#: before creating the pool; forked children see the same object via
#: copy-on-write, so it is never pickled.
_WORKER_CONTEXT: Any = None


def _call_with_context(fn: Callable[[Any, P], R], payload: P) -> R:
    """Worker-side trampoline: re-attach the fork-inherited context."""
    return fn(_WORKER_CONTEXT, payload)


def fork_available() -> bool:
    """Whether this platform can fork worker processes."""
    return "fork" in multiprocessing.get_all_start_methods()


def parallel_map(
    fn: Callable[[Any, P], R],
    payloads: Sequence[P],
    *,
    workers: int,
    context: Any = None,
    fallback: Callable[[str], None] | None = None,
) -> list[R]:
    """Apply ``fn(context, payload)`` to every payload, in order.

    With ``workers > 1`` the payloads run on a fork-based process pool
    (``fn`` must be a module-level function; ``context`` is inherited
    by fork and must not be mutated concurrently by the parent).
    Results are collected in submission order, so the output is
    byte-for-byte the serial ``[fn(context, p) for p in payloads]``
    whenever ``fn`` is deterministic in (context, payload).

    Serial execution is used — and ``fallback(reason)`` called once —
    when parallelism is pointless (``workers <= 1``, fewer than two
    payloads) or impossible (no fork support, pool creation failed).
    """
    global _WORKER_CONTEXT
    if workers <= 1 or len(payloads) <= 1:
        if workers > 1 and fallback is not None:
            fallback("too_few_payloads")
        return [fn(context, payload) for payload in payloads]
    if not fork_available():
        if fallback is not None:
            fallback("no_fork")
        return [fn(context, payload) for payload in payloads]
    _WORKER_CONTEXT = context
    try:
        try:
            executor = ProcessPoolExecutor(
                max_workers=min(workers, len(payloads)),
                mp_context=multiprocessing.get_context("fork"),
            )
        except OSError:
            if fallback is not None:
                fallback("pool_unavailable")
            return [fn(context, payload) for payload in payloads]
        with executor:
            futures = [
                executor.submit(_call_with_context, fn, payload)
                for payload in payloads
            ]
            return [future.result() for future in futures]
    finally:
        _WORKER_CONTEXT = None
