"""Fork-based ``parallel_map`` with deterministic, ordered results.

The one place in the repository allowed to import ``multiprocessing``
and ``concurrent.futures`` (reprolint rule R007 keeps every other
module out): concentrating process management here keeps the seeding
and merge discipline auditable in one file.

Design constraints, in order:

1. **Determinism** — results come back in submission order regardless
   of completion order, and the worker context is shared by fork
   (copy-on-write), never re-seeded or re-built per process.
2. **Graceful degradation** — when fork is unavailable or the pool
   cannot be created (sandboxes, restricted platforms), the map runs
   serially in-process and reports the reason through the optional
   ``fallback`` callback.  Serial and parallel execution produce
   byte-identical results by construction, so falling back is always
   safe.
3. **Cheap payloads** — the context (engines, topologies, corpora) is
   inherited by fork and addressed through a module global; only the
   per-shard payloads and results cross the pickle boundary.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Sequence, TypeVar

__all__ = [
    "FALLBACK_REASONS",
    "ShardExecutionError",
    "fork_available",
    "parallel_map",
]

P = TypeVar("P")
R = TypeVar("R")


class ShardExecutionError(RuntimeError):
    """``fn`` raised while executing one payload of a parallel map.

    Names the payload index (its position in the submitted plan) and,
    when the caller supplied a ``describe`` callback, the shard's key —
    so a failure deep in a 10k-probe campaign points at the exact shard
    instead of surfacing as a bare pool traceback.  The original
    exception rides along as ``__cause__``.
    """

    def __init__(self, index: int, label: str | None, cause: BaseException):
        detail = f" ({label})" if label else ""
        super().__init__(
            f"shard at payload index {index}{detail} failed: "
            f"{type(cause).__name__}: {cause}"
        )
        self.index = index
        self.label = label

#: The closed vocabulary passed to the ``fallback`` callback.  Every
#: serial degradation names exactly one of these reasons:
#:
#: * ``"too_few_payloads"`` — parallelism was requested but there are
#:   fewer than two payloads, so a pool would only add overhead;
#: * ``"no_fork"`` — the platform cannot fork worker processes
#:   (``fork_available()`` is false);
#: * ``"pool_unavailable"`` — pool creation (or, under supervision,
#:   rebuild) failed with ``OSError``, or the rebuild budget ran out.
FALLBACK_REASONS = ("too_few_payloads", "no_fork", "pool_unavailable")

#: Fork-inherited worker context.  The parent sets it immediately
#: before creating the pool; forked children see the same object via
#: copy-on-write, so it is never pickled.
_WORKER_CONTEXT: Any = None


def _call_with_context(fn: Callable[[Any, P], R], payload: P) -> R:
    """Worker-side trampoline: re-attach the fork-inherited context."""
    return fn(_WORKER_CONTEXT, payload)


def fork_available() -> bool:
    """Whether this platform can fork worker processes."""
    return "fork" in multiprocessing.get_all_start_methods()


def parallel_map(
    fn: Callable[[Any, P], R],
    payloads: Sequence[P],
    *,
    workers: int,
    context: Any = None,
    fallback: Callable[[str], None] | None = None,
    describe: Callable[[P], str] | None = None,
) -> list[R]:
    """Apply ``fn(context, payload)`` to every payload, in order.

    With ``workers > 1`` the payloads run on a fork-based process pool
    (``fn`` must be a module-level function; ``context`` is inherited
    by fork and must not be mutated concurrently by the parent).
    Results are collected in submission order, so the output is
    byte-for-byte the serial ``[fn(context, p) for p in payloads]``
    whenever ``fn`` is deterministic in (context, payload).

    Serial execution is used — and ``fallback(reason)`` called once
    with a reason from :data:`FALLBACK_REASONS` — when parallelism is
    pointless (``workers <= 1``, fewer than two payloads:
    ``"too_few_payloads"``) or impossible (``"no_fork"``,
    ``"pool_unavailable"``).

    An exception raised by ``fn`` — in a worker or on a serial path —
    is wrapped in :class:`ShardExecutionError` naming the payload index
    and, when ``describe`` is given, the shard's key.  Worker death and
    hangs are *not* handled here; that is
    :func:`repro.exec.supervise.supervised_map`'s job.
    """
    global _WORKER_CONTEXT

    def run_serial() -> list[R]:
        return [
            _wrapped_call(fn, context, index, payload, describe)
            for index, payload in enumerate(payloads)
        ]

    if workers <= 1 or len(payloads) <= 1:
        if workers > 1 and fallback is not None:
            fallback("too_few_payloads")
        return run_serial()
    if not fork_available():
        if fallback is not None:
            fallback("no_fork")
        return run_serial()
    _WORKER_CONTEXT = context
    try:
        try:
            executor = ProcessPoolExecutor(
                max_workers=min(workers, len(payloads)),
                mp_context=multiprocessing.get_context("fork"),
            )
        except OSError:
            if fallback is not None:
                fallback("pool_unavailable")
            return run_serial()
        with executor:
            futures = [
                executor.submit(_call_with_context, fn, payload)
                for payload in payloads
            ]
            results = []
            for index, future in enumerate(futures):
                try:
                    results.append(future.result())
                except Exception as error:
                    label = (
                        describe(payloads[index])
                        if describe is not None
                        else None
                    )
                    raise ShardExecutionError(index, label, error) from error
            return results
    finally:
        _WORKER_CONTEXT = None


def _wrapped_call(
    fn: Callable[[Any, P], R],
    context: Any,
    index: int,
    payload: P,
    describe: Callable[[P], str] | None,
) -> R:
    """In-process execution with :class:`ShardExecutionError` wrapping."""
    try:
        return fn(context, payload)
    except Exception as error:
        label = describe(payload) if describe is not None else None
        raise ShardExecutionError(index, label, error) from error
