"""Parallel execution with byte-identical merge.

The subsystem behind ``PipelineConfig(workers=N)``: a seeded shard
planner (:mod:`repro.exec.shard`), and a fork-based process pool with
ordered deterministic results (:mod:`repro.exec.pool`).  The campaign
driver and the CFS extraction path shard their work here; everything
merges back in shard-index order, so ``workers=N`` output is
byte-identical to the serial ``workers=1`` path.

This package is the only place allowed to import ``multiprocessing``
or ``concurrent.futures`` (reprolint rule R007).
"""

from .pool import fork_available, parallel_map
from .shard import Shard, plan_blocks, plan_shards, stable_key, substream

__all__ = [
    "Shard",
    "fork_available",
    "parallel_map",
    "plan_blocks",
    "plan_shards",
    "stable_key",
    "substream",
]
