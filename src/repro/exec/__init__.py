"""Parallel execution with byte-identical merge.

The subsystem behind ``PipelineConfig(workers=N)``: a seeded shard
planner (:mod:`repro.exec.shard`), a fork-based process pool with
ordered deterministic results (:mod:`repro.exec.pool`), and a
supervisor that keeps a map alive through dead workers, hung shards,
and failed pool rebuilds (:mod:`repro.exec.supervise`).  The campaign
driver and the CFS extraction path shard their work here; everything
merges back in shard-index order, so ``workers=N`` output is
byte-identical to the serial ``workers=1`` path — under any crash
pattern, once supervised.

This package is the only place allowed to import ``multiprocessing``
or ``concurrent.futures`` (reprolint rule R007).
"""

from .pool import (
    FALLBACK_REASONS,
    ShardExecutionError,
    fork_available,
    parallel_map,
)
from .shard import Shard, plan_blocks, plan_shards, stable_key, substream
from .supervise import (
    ExecFaultSpec,
    SupervisorConfig,
    instrument_observer,
    supervised_map,
)

__all__ = [
    "FALLBACK_REASONS",
    "ExecFaultSpec",
    "Shard",
    "ShardExecutionError",
    "SupervisorConfig",
    "fork_available",
    "instrument_observer",
    "parallel_map",
    "plan_blocks",
    "plan_shards",
    "stable_key",
    "substream",
    "supervised_map",
]
