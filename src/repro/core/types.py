"""Shared record types of the Constrained Facility Search pipeline."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..obs import MetricsSnapshot

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..alias.midar import AliasSets

__all__ = [
    "PeeringKind",
    "InferredType",
    "InterfaceStatus",
    "ObservedPeering",
    "InterfaceState",
    "IterationStats",
    "LinkInference",
    "CfsResult",
]


class PeeringKind(enum.Enum):
    """Step-1 classification of an observed interconnection."""

    PUBLIC = "public"
    PRIVATE = "private"


class InferredType(enum.Enum):
    """Final engineering-type inference (the Figure 9/10 categories)."""

    PUBLIC_LOCAL = "public-local"
    PUBLIC_REMOTE = "public-remote"
    CROSS_CONNECT = "cross-connect"
    TETHERING = "tethering"
    UNKNOWN = "unknown"


class InterfaceStatus(enum.Enum):
    """Resolution status of one peering interface (Step-2 vocabulary)."""

    #: Converged to exactly one candidate facility.
    RESOLVED = "resolved"
    #: Local interconnection, several candidate facilities remain.
    UNRESOLVED_LOCAL = "unresolved-local"
    #: Remote peer: candidates are all facilities of the owning AS.
    UNRESOLVED_REMOTE = "unresolved-remote"
    #: Facility data too incomplete to constrain the interface.
    MISSING_DATA = "missing-data"


@dataclass(frozen=True, slots=True)
class ObservedPeering:
    """One interconnection crossing extracted from traceroute data.

    The *near* side is the peer whose border router appears before the
    crossing in the probe direction; its facility is what Steps 2-4
    constrain.  For public peerings the far side's peering-LAN port
    (``ixp_address``) is also recorded for far-end resolution.
    """

    kind: PeeringKind
    near_address: int
    near_asn: int
    far_asn: int
    far_address: int | None
    ixp_id: int | None = None
    ixp_address: int | None = None
    #: Minimum observed RTT step across the crossing (ms); drives the
    #: delay-based remote-peering test.
    min_rtt_step_ms: float | None = None
    #: How many traceroutes witnessed this crossing.
    observations: int = 1

    def key(self) -> tuple:
        """Identity of the crossing (used for deduplication)."""
        return (
            self.kind,
            self.near_address,
            self.far_asn,
            self.ixp_id,
            self.far_address if self.kind is PeeringKind.PRIVATE else None,
        )


@dataclass(slots=True)
class InterfaceState:
    """Evolving constraint state of one peering interface.

    ``candidates`` is ``None`` until the first constraint arrives; an
    empty set never persists (conflicting constraints are dropped and
    counted instead, since they indicate missing data, Section 5).
    """

    address: int
    owner_asn: int | None = None
    candidates: set[int] | None = None
    status: InterfaceStatus = InterfaceStatus.MISSING_DATA
    inferred_type: InferredType = InferredType.UNKNOWN
    #: Set when the delay test marked the owner a remote peer somewhere.
    remote: bool = False
    conflicts: int = 0
    #: IXPs already used to constrain this interface (Step 4 prefers
    #: follow-up targets away from them).
    constrained_by_ixps: set[int] = field(default_factory=set)
    #: ``"ok"`` normally; ``"degraded"`` when a constraint was widened
    #: because one side's facility data was missing (degraded mode).
    data_health: str = "ok"

    @property
    def confidence(self) -> float:
        """Heuristic confidence in [0, 1] for this interface's inference.

        Penalises degraded-mode widening, accumulated conflicts, and
        unconverged candidate sets; an unconstrained interface scores 0.
        """
        if self.candidates is None:
            return 0.0
        score = 1.0
        if self.data_health != "ok":
            score *= 0.6
        score *= 0.9 ** min(self.conflicts, 10)
        if len(self.candidates) > 1:
            score *= 0.75
        return round(score, 4)

    @property
    def resolved_facility(self) -> int | None:
        """The facility, when exactly one candidate remains."""
        if self.candidates is not None and len(self.candidates) == 1:
            return next(iter(self.candidates))
        return None

    def apply_constraint(self, facilities: set[int]) -> bool:
        """Intersect the candidate set with ``facilities``.

        Returns True if the state changed.  An intersection that would
        empty the set is rejected and counted as a conflict — with
        incomplete facility data a wrong constraint must not erase a
        plausible one.
        """
        if not facilities:
            return False
        if self.candidates is None:
            self.candidates = set(facilities)
            return True
        intersection = self.candidates & facilities
        if not intersection:
            self.conflicts += 1
            return False
        if intersection == self.candidates:
            return False
        self.candidates = intersection
        return True


@dataclass(frozen=True, slots=True)
class IterationStats:
    """Per-iteration convergence snapshot (the Figure 7 series)."""

    iteration: int
    total_interfaces: int
    resolved: int
    unresolved_local: int
    unresolved_remote: int
    missing_data: int
    followups_issued: int
    #: Accumulated crossings at the end of the iteration.
    observations_total: int = 0
    #: Step-2 applications this iteration (the incremental engine skips
    #: observations whose interfaces did not change).
    observations_applied: int = 0
    #: Traceroutes parsed (or re-parsed) this iteration.
    traces_parsed: int = 0

    @property
    def resolved_fraction(self) -> float:
        """Fraction of tracked interfaces pinned to one facility."""
        if self.total_interfaces == 0:
            return 0.0
        return self.resolved / self.total_interfaces


@dataclass(frozen=True, slots=True)
class LinkInference:
    """Final inference for one observed interconnection."""

    kind: PeeringKind
    inferred_type: InferredType
    near_address: int
    near_asn: int
    near_facility: int | None
    far_asn: int
    far_facility: int | None
    ixp_id: int | None
    #: The far side's peering-LAN port (public) — the interface the
    #: Figure 10 accounting attributes to the far AS.
    ixp_address: int | None = None
    #: The far side's point-to-point interface (private).
    far_address: int | None = None
    #: Confidence inherited from the near interface's constraint state
    #: (1.0 when the link was finalised without a tracked state).
    confidence: float = 1.0


@dataclass(slots=True)
class CfsResult:
    """Everything the CFS run produced."""

    interfaces: dict[int, InterfaceState]
    links: list[LinkInference]
    history: list[IterationStats]
    iterations_run: int
    followup_traces: int
    peering_interfaces_seen: int
    #: Counters and per-stage timings of the run; ``None`` for results
    #: built outside the instrumented loop.
    metrics: MetricsSnapshot | None = None
    #: The final alias resolution the run converged on; ``None`` when
    #: alias resolution was disabled.  Checkpointed as its own stage.
    alias_sets: "AliasSets | None" = None

    def resolved_interfaces(self) -> dict[int, int]:
        """address -> facility for every resolved interface."""
        return {
            address: state.resolved_facility
            for address, state in self.interfaces.items()
            if state.resolved_facility is not None
        }

    def resolved_fraction(self) -> float:
        """Fraction of tracked peering interfaces pinned to one facility."""
        if not self.interfaces:
            return 0.0
        return len(self.resolved_interfaces()) / len(self.interfaces)

    def states_with_status(self, status: InterfaceStatus) -> list[InterfaceState]:
        """All interface states currently in ``status``."""
        return [s for s in self.interfaces.values() if s.status is status]
