"""Constrained Facility Search — the paper's contribution.

Modules map onto the method sections: :mod:`classify` (Step 1),
:mod:`constrain` (Step 2), :mod:`alias_constraints` (Step 3),
:mod:`followup` (Step 4), :mod:`remote` (delay-based remote-peering
detection), :mod:`proximity` and :mod:`farside` (Sections 4.3-4.4),
:mod:`cfs` (the iteration loop), :mod:`facility_db` (Section 3.1
assembly) and :mod:`pipeline` (the Figure-4 end-to-end stack).
"""

from .alias_constraints import propagate_alias_constraints
from .cfs import CfsConfig, ConstrainedFacilitySearch
from .classify import PeeringClassifier
from .constrain import InitialFacilitySearch
from .facility_db import FacilityDatabase
from .farside import LinkFinalizer
from .followup import FollowupPlan, FollowupPlanner
from .pipeline import (
    Environment,
    PipelineConfig,
    PipelineResult,
    build_environment,
    run_pipeline,
    select_targets,
)
from .proximity import SwitchProximityModel
from .remote import DEFAULT_METRO_LOCAL_BOUND_MS, RemotePeeringDetector
from .types import (
    CfsResult,
    InferredType,
    InterfaceState,
    InterfaceStatus,
    IterationStats,
    LinkInference,
    ObservedPeering,
    PeeringKind,
)

__all__ = [
    "build_environment",
    "CfsConfig",
    "CfsResult",
    "ConstrainedFacilitySearch",
    "DEFAULT_METRO_LOCAL_BOUND_MS",
    "Environment",
    "FacilityDatabase",
    "FollowupPlan",
    "FollowupPlanner",
    "InferredType",
    "InitialFacilitySearch",
    "InterfaceState",
    "InterfaceStatus",
    "IterationStats",
    "LinkFinalizer",
    "LinkInference",
    "ObservedPeering",
    "PeeringClassifier",
    "PeeringKind",
    "PipelineConfig",
    "PipelineResult",
    "propagate_alias_constraints",
    "RemotePeeringDetector",
    "run_pipeline",
    "select_targets",
    "SwitchProximityModel",
]
