"""Far-end resolution and final link inference (Sections 4.3-4.4).

Traceroute replies come from ingress interfaces, so a forward path never
shows the egress side of a crossing; the far end of a public peering is
only directly constrained through its peering-LAN port.  The paper
narrows far ends three ways, all reproduced here:

1. **Reverse-direction search** (Section 4.3): vantage points on the far
   side turn the far AS into a *near* AS of other observations; alias
   sets then carry those constraints onto the port.  This happens
   upstream in Steps 2-3 — by finalisation time the port state already
   holds everything reverse paths contributed.
2. **Single-candidate members**: many far peers connect to one partner
   facility of the exchange; the intersection alone pins them.
3. **Switch proximity** (Section 4.4): remaining multi-candidate far
   ends take the fabric-proximate facility learned from resolved pairs.

Private interconnects get the cross-connect treatment: the far router
must be cross-connectable from the near facility, so a unique campus
candidate resolves it.
"""

from __future__ import annotations

from .facility_db import FacilityDatabase
from .proximity import SwitchProximityModel
from .types import (
    InferredType,
    InterfaceState,
    LinkInference,
    ObservedPeering,
    PeeringKind,
)

__all__ = ["LinkFinalizer"]


class LinkFinalizer:
    """Produces :class:`LinkInference` records from converged states."""

    def __init__(
        self,
        facility_db: FacilityDatabase,
        proximity: SwitchProximityModel | None = None,
    ) -> None:
        self._db = facility_db
        self.proximity = proximity or SwitchProximityModel()

    # ------------------------------------------------------------------

    def finalize(
        self,
        observations: dict[tuple, ObservedPeering],
        states: dict[int, InterfaceState],
        use_proximity: bool = True,
    ) -> list[LinkInference]:
        """Infer facility and engineering type for every observed link."""
        ordered = sorted(
            observations.values(),
            key=lambda obs: (
                obs.kind.value,
                obs.near_address,
                obs.far_asn,
                obs.ixp_id if obs.ixp_id is not None else -1,
                obs.far_address if obs.far_address is not None else -1,
            ),
        )
        if use_proximity:
            self._learn_proximity(ordered, states)
        links: list[LinkInference] = []
        for observation in ordered:
            if observation.kind is PeeringKind.PUBLIC:
                links.append(self._finalize_public(observation, states, use_proximity))
            else:
                links.append(self._finalize_private(observation, states))
        return links

    # ------------------------------------------------------------------

    def _learn_proximity(
        self,
        observations: list[ObservedPeering],
        states: dict[int, InterfaceState],
    ) -> None:
        """Train the proximity model on pairs already pinned by Steps 2-3."""
        for observation in observations:
            if observation.kind is not PeeringKind.PUBLIC:
                continue
            assert observation.ixp_id is not None
            near = states.get(observation.near_address)
            if near is None or near.resolved_facility is None or near.remote:
                continue
            far_facility = self._port_resolution(observation, states)
            if far_facility is not None:
                self.proximity.learn(
                    observation.ixp_id, near.resolved_facility, far_facility
                )

    def _port_resolution(
        self,
        observation: ObservedPeering,
        states: dict[int, InterfaceState],
    ) -> int | None:
        """Far-port facility if Steps 2-3 already pinned it."""
        if observation.ixp_address is None:
            return None
        port = states.get(observation.ixp_address)
        if port is None or port.remote:
            return None
        return port.resolved_facility

    # ------------------------------------------------------------------

    def _finalize_public(
        self,
        observation: ObservedPeering,
        states: dict[int, InterfaceState],
        use_proximity: bool,
    ) -> LinkInference:
        assert observation.ixp_id is not None
        near = states.get(observation.near_address)
        near_facility = near.resolved_facility if near is not None else None
        near_remote = near.remote if near is not None else False

        far_facility = self._port_resolution(observation, states)
        port = (
            states.get(observation.ixp_address)
            if observation.ixp_address is not None
            else None
        )
        far_remote = port.remote if port is not None else False
        if (
            far_facility is None
            and not far_remote
            and use_proximity
            and near_facility is not None
        ):
            candidates = self._far_candidates(observation, port)
            if candidates:
                far_facility = self.proximity.infer(
                    observation.ixp_id, near_facility, candidates
                )

        if near_remote:
            inferred = InferredType.PUBLIC_REMOTE
        elif near_facility is not None or (near is not None and near.candidates):
            inferred = InferredType.PUBLIC_LOCAL
        else:
            inferred = InferredType.UNKNOWN
        return LinkInference(
            kind=PeeringKind.PUBLIC,
            inferred_type=inferred,
            near_address=observation.near_address,
            near_asn=observation.near_asn,
            near_facility=near_facility,
            far_asn=observation.far_asn,
            far_facility=far_facility,
            ixp_id=observation.ixp_id,
            ixp_address=observation.ixp_address,
            confidence=near.confidence if near is not None else 1.0,
        )

    def _far_candidates(
        self,
        observation: ObservedPeering,
        port: InterfaceState | None,
    ) -> set[int]:
        if port is not None and port.candidates:
            return set(port.candidates)
        assert observation.ixp_id is not None
        return set(
            self._db.facilities_of(observation.far_asn)
            & self._db.facilities_of_ixp(observation.ixp_id)
        )

    # ------------------------------------------------------------------

    def _finalize_private(
        self,
        observation: ObservedPeering,
        states: dict[int, InterfaceState],
    ) -> LinkInference:
        near = states.get(observation.near_address)
        near_facility = near.resolved_facility if near is not None else None
        inferred = near.inferred_type if near is not None else InferredType.UNKNOWN

        far_facility = None
        if observation.far_address is not None:
            far_state = states.get(observation.far_address)
            if far_state is not None:
                far_facility = far_state.resolved_facility
        if far_facility is None and near_facility is not None and (
            inferred is InferredType.CROSS_CONNECT
        ):
            # The far router must be cross-connectable from the near
            # facility; a unique campus candidate settles it.
            reach = self._db.campus_of(near_facility) & self._db.facilities_of(
                observation.far_asn
            )
            if len(reach) == 1:
                far_facility = next(iter(reach))
        return LinkInference(
            kind=PeeringKind.PRIVATE,
            inferred_type=inferred,
            near_address=observation.near_address,
            near_asn=observation.near_asn,
            near_facility=near_facility,
            far_asn=observation.far_asn,
            far_facility=far_facility,
            ixp_id=None,
            far_address=observation.far_address,
            confidence=near.confidence if near is not None else 1.0,
        )
