"""CFS Step 1: identify public and private peerings in traceroute data.

Section 4.2, Step 1.  Given IP-to-ASN mapped traceroute paths:

* a hop sequence ``(IP_A, IP_e, IP_B)`` where ``IP_e`` falls inside the
  address space of an active IXP marks a **public** peering ``(A, B)``
  established over that exchange;
* a direct sequence ``(IP_A, IP_B)`` with the two addresses mapping to
  different ASes (and neither inside IXP space) marks a **private**
  interconnection — cross-connect, tethering, or remote private peering;
* sequences interrupted by unresponsive or unmapped hops are discarded
  (the paper drops paths where ``IP_e`` is unresolved or unresponsive).

The near-side interface of every crossing — and, for public peerings,
the far side's peering-LAN port — become the subjects of Steps 2-4.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..measurement.traceroute import TraceHop, Traceroute
from ..obs import Instrumentation
from .facility_db import FacilityDatabase
from .types import ObservedPeering, PeeringKind

__all__ = ["PeeringClassifier"]


class PeeringClassifier:
    """Extracts :class:`ObservedPeering` records from traceroutes."""

    def __init__(
        self,
        facility_db: FacilityDatabase,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self._db = facility_db
        self._obs = instrumentation or Instrumentation()

    # ------------------------------------------------------------------

    def extract(
        self,
        traces: Iterable[Traceroute],
        ip_to_asn: Mapping[int, int | None],
        into: dict[tuple, ObservedPeering] | None = None,
    ) -> dict[tuple, ObservedPeering]:
        """Parse ``traces`` and merge crossings into ``into``.

        Repeated sightings of the same crossing are merged: observation
        counts accumulate and the RTT step keeps its minimum (the paper
        repeats measurements at different times of day to shed transient
        congestion before the delay-based remote-peering test).
        """
        observations = into if into is not None else {}
        parsed = 0
        for trace in traces:
            parsed += 1
            for run in self._responsive_runs(trace):
                self._scan_run(
                    run, ip_to_asn, observations, dst_address=trace.dst_address
                )
        self._obs.count("classify.traces_parsed", parsed)
        return observations

    @staticmethod
    def _responsive_runs(trace: Traceroute) -> list[list[TraceHop]]:
        """Maximal sub-paths of consecutive responsive hops.

        An unresponsive hop hides a router, so adjacency across it is
        unknown and any crossing spanning it must be discarded.
        """
        runs: list[list[TraceHop]] = []
        current: list[TraceHop] = []
        for hop in trace.hops:
            if hop.address is None:
                if len(current) >= 2:
                    runs.append(current)
                current = []
            else:
                current.append(hop)
        if len(current) >= 2:
            runs.append(current)
        return runs

    # ------------------------------------------------------------------

    def _scan_run(
        self,
        run: list[TraceHop],
        ip_to_asn: Mapping[int, int | None],
        observations: dict[tuple, ObservedPeering],
        dst_address: int | None = None,
    ) -> None:
        index = 0
        while index < len(run) - 1:
            near = run[index]
            middle = run[index + 1]
            assert near.address is not None and middle.address is not None
            middle_ixp = self._db.ixp_of_address(middle.address)
            if middle_ixp is not None:
                # Public peering candidate: (near, IXP hop, far).
                if index + 2 < len(run):
                    far = run[index + 2]
                    assert far.address is not None
                    self._record_public(
                        near, middle, far, middle_ixp, ip_to_asn, observations
                    )
                # The far border router has been consumed as the IXP hop;
                # continue scanning from it.
                index += 1
                continue
            if middle.address == dst_address:
                # The destination answers the echo from the probed
                # address, not from its ingress interface — the crossing
                # type (and the real ingress) is unobservable, so no
                # constraint may be derived from this pair.
                index += 1
                continue
            if self._db.ixp_of_address(near.address) is None:
                self._record_private(near, middle, ip_to_asn, observations)
            index += 1

    def _record_public(
        self,
        near: TraceHop,
        middle: TraceHop,
        far: TraceHop,
        ixp_id: int,
        ip_to_asn: Mapping[int, int | None],
        observations: dict[tuple, ObservedPeering],
    ) -> None:
        near_asn = ip_to_asn.get(near.address)
        # The peering-LAN port belongs to the far border router, so its
        # (alias-repaired) mapping identifies the far AS most reliably —
        # essential when the hop after it is another exchange's LAN port
        # (multi-IXP routers, Section 5).  Fall back to the next hop.
        far_asn = ip_to_asn.get(middle.address)
        if far_asn is None or far_asn not in self._db.members_of(ixp_id):
            far_asn = ip_to_asn.get(far.address)
        if near_asn is None or far_asn is None or near_asn == far_asn:
            return
        self._obs.count("classify.crossings_public")
        rtt_step = self._rtt_step(near, middle)
        observation = ObservedPeering(
            kind=PeeringKind.PUBLIC,
            near_address=near.address,  # type: ignore[arg-type]
            near_asn=near_asn,
            far_asn=far_asn,
            far_address=far.address,
            ixp_id=ixp_id,
            ixp_address=middle.address,
            min_rtt_step_ms=rtt_step,
        )
        self.merge(observations, observation)

    def _record_private(
        self,
        near: TraceHop,
        far: TraceHop,
        ip_to_asn: Mapping[int, int | None],
        observations: dict[tuple, ObservedPeering],
    ) -> None:
        near_asn = ip_to_asn.get(near.address)
        far_asn = ip_to_asn.get(far.address)
        if near_asn is None or far_asn is None or near_asn == far_asn:
            return
        self._obs.count("classify.crossings_private")
        rtt_step = self._rtt_step(near, far)
        observation = ObservedPeering(
            kind=PeeringKind.PRIVATE,
            near_address=near.address,  # type: ignore[arg-type]
            near_asn=near_asn,
            far_asn=far_asn,
            far_address=far.address,
            min_rtt_step_ms=rtt_step,
        )
        self.merge(observations, observation)

    @staticmethod
    def _rtt_step(near: TraceHop, far: TraceHop) -> float | None:
        if near.rtt_ms is None or far.rtt_ms is None:
            return None
        return far.rtt_ms - near.rtt_ms

    @staticmethod
    def merge(
        observations: dict[tuple, ObservedPeering], observation: ObservedPeering
    ) -> None:
        """Fold one crossing record into ``observations``.

        Counts accumulate and the RTT step keeps its minimum; the first
        record's non-key fields win, so merging per-trace record batches
        in trace order is equivalent to one streaming pass.
        """
        key = observation.key()
        existing = observations.get(key)
        if existing is None:
            observations[key] = observation
            return
        steps = [
            step
            for step in (existing.min_rtt_step_ms, observation.min_rtt_step_ms)
            if step is not None
        ]
        observations[key] = ObservedPeering(
            kind=existing.kind,
            near_address=existing.near_address,
            near_asn=existing.near_asn,
            far_asn=existing.far_asn,
            far_address=existing.far_address,
            ixp_id=existing.ixp_id,
            ixp_address=existing.ixp_address,
            min_rtt_step_ms=min(steps) if steps else None,
            observations=existing.observations + observation.observations,
        )
