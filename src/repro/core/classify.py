"""CFS Step 1: identify public and private peerings in traceroute data.

Section 4.2, Step 1.  Given IP-to-ASN mapped traceroute paths:

* a hop sequence ``(IP_A, IP_e, IP_B)`` where ``IP_e`` falls inside the
  address space of an active IXP marks a **public** peering ``(A, B)``
  established over that exchange;
* a direct sequence ``(IP_A, IP_B)`` with the two addresses mapping to
  different ASes (and neither inside IXP space) marks a **private**
  interconnection — cross-connect, tethering, or remote private peering;
* sequences interrupted by unresponsive or unmapped hops are discarded
  (the paper drops paths where ``IP_e`` is unresolved or unresponsive).

The near-side interface of every crossing — and, for public peerings,
the far side's peering-LAN port — become the subjects of Steps 2-4.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..columnar import NO_ADDRESS, TraceArrays
from ..measurement.traceroute import TraceHop, Traceroute
from ..obs import Instrumentation
from .facility_db import FacilityDatabase
from .types import ObservedPeering, PeeringKind

__all__ = ["PeeringClassifier"]


class PeeringClassifier:
    """Extracts :class:`ObservedPeering` records from traceroutes."""

    def __init__(
        self,
        facility_db: FacilityDatabase,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self._db = facility_db
        self._obs = instrumentation or Instrumentation()

    # ------------------------------------------------------------------

    def extract(
        self,
        traces: Iterable[Traceroute],
        ip_to_asn: Mapping[int, int | None],
        into: dict[tuple, ObservedPeering] | None = None,
    ) -> dict[tuple, ObservedPeering]:
        """Parse ``traces`` and merge crossings into ``into``.

        Repeated sightings of the same crossing are merged: observation
        counts accumulate and the RTT step keeps its minimum (the paper
        repeats measurements at different times of day to shed transient
        congestion before the delay-based remote-peering test).
        """
        observations = into if into is not None else {}
        parsed = 0
        for trace in traces:
            parsed += 1
            for run in self._responsive_runs(trace):
                self._scan_run(
                    run, ip_to_asn, observations, dst_address=trace.dst_address
                )
        self._obs.count("classify.traces_parsed", parsed)
        return observations

    def extract_arrays(
        self,
        arrays: TraceArrays,
        indices: Sequence[int],
        ip_to_asn: Mapping[int, int | None],
        into: dict[tuple, ObservedPeering] | None = None,
    ) -> dict[tuple, ObservedPeering]:
        """Columnar twin of :meth:`extract` over flattened traces.

        Scans the hop columns of ``arrays`` for the traces named by
        ``indices`` without materialising a single hop object.  Both
        paths funnel into the same record builders
        (:meth:`_record_public` / :meth:`_record_private`), so the
        observation dicts — records, insertion order, counters — are
        byte-identical to the dataclass walk
        (``tests/core/test_columnar.py`` pins this on seeds 0-4).
        """
        observations = into if into is not None else {}
        parsed = 0
        for index in indices:
            parsed += 1
            self._scan_trace_arrays(arrays, index, ip_to_asn, observations)
        self._obs.count("classify.traces_parsed", parsed)
        return observations

    @staticmethod
    def _responsive_runs(trace: Traceroute) -> list[list[TraceHop]]:
        """Maximal sub-paths of consecutive responsive hops.

        An unresponsive hop hides a router, so adjacency across it is
        unknown and any crossing spanning it must be discarded.
        """
        runs: list[list[TraceHop]] = []
        current: list[TraceHop] = []
        for hop in trace.hops:
            if hop.address is None:
                if len(current) >= 2:
                    runs.append(current)
                current = []
            else:
                current.append(hop)
        if len(current) >= 2:
            runs.append(current)
        return runs

    # ------------------------------------------------------------------

    def _scan_run(
        self,
        run: list[TraceHop],
        ip_to_asn: Mapping[int, int | None],
        observations: dict[tuple, ObservedPeering],
        dst_address: int | None = None,
    ) -> None:
        index = 0
        while index < len(run) - 1:
            near = run[index]
            middle = run[index + 1]
            assert near.address is not None and middle.address is not None
            middle_ixp = self._db.ixp_of_address(middle.address)
            if middle_ixp is not None:
                # Public peering candidate: (near, IXP hop, far).
                if index + 2 < len(run):
                    far = run[index + 2]
                    assert far.address is not None
                    self._record_public(
                        near.address,
                        near.rtt_ms,
                        middle.address,
                        middle.rtt_ms,
                        far.address,
                        middle_ixp,
                        ip_to_asn,
                        observations,
                    )
                # The far border router has been consumed as the IXP hop;
                # continue scanning from it.
                index += 1
                continue
            if middle.address == dst_address:
                # The destination answers the echo from the probed
                # address, not from its ingress interface — the crossing
                # type (and the real ingress) is unobservable, so no
                # constraint may be derived from this pair.
                index += 1
                continue
            if self._db.ixp_of_address(near.address) is None:
                self._record_private(
                    near.address,
                    near.rtt_ms,
                    middle.address,
                    middle.rtt_ms,
                    ip_to_asn,
                    observations,
                )
            index += 1

    # ------------------------------------------------------------------
    # Columnar scan (flat hop indices instead of hop objects)
    # ------------------------------------------------------------------

    def _scan_trace_arrays(
        self,
        arrays: TraceArrays,
        index: int,
        ip_to_asn: Mapping[int, int | None],
        observations: dict[tuple, ObservedPeering],
    ) -> None:
        """Scan one flattened trace: runs over the address column, then
        the same pair walk as :meth:`_scan_run` on flat indices."""
        start, stop = arrays.hop_range(index)
        addresses = arrays.hop_address
        dst_address = arrays.dst_address[index]
        run_start = start
        for flat in range(start, stop + 1):
            if flat == stop or addresses[flat] == NO_ADDRESS:
                if flat - run_start >= 2:
                    self._scan_run_flat(
                        arrays, run_start, flat, ip_to_asn,
                        observations, dst_address,
                    )
                run_start = flat + 1

    def _scan_run_flat(
        self,
        arrays: TraceArrays,
        lo: int,
        hi: int,
        ip_to_asn: Mapping[int, int | None],
        observations: dict[tuple, ObservedPeering],
        dst_address: int,
    ) -> None:
        addresses = arrays.hop_address
        rtts = arrays.hop_rtt
        db = self._db
        flat = lo
        while flat < hi - 1:
            near_address = addresses[flat]
            middle_address = addresses[flat + 1]
            middle_ixp = db.ixp_of_address(middle_address)
            if middle_ixp is not None:
                if flat + 2 < hi:
                    near_rtt = rtts[flat]
                    middle_rtt = rtts[flat + 1]
                    self._record_public(
                        near_address,
                        # NaN is the missing-RTT sentinel (!= itself).
                        None if near_rtt != near_rtt else near_rtt,
                        middle_address,
                        None if middle_rtt != middle_rtt else middle_rtt,
                        addresses[flat + 2],
                        middle_ixp,
                        ip_to_asn,
                        observations,
                    )
                flat += 1
                continue
            if middle_address == dst_address:
                flat += 1
                continue
            if db.ixp_of_address(near_address) is None:
                near_rtt = rtts[flat]
                middle_rtt = rtts[flat + 1]
                self._record_private(
                    near_address,
                    None if near_rtt != near_rtt else near_rtt,
                    middle_address,
                    None if middle_rtt != middle_rtt else middle_rtt,
                    ip_to_asn,
                    observations,
                )
            flat += 1

    # ------------------------------------------------------------------
    # Record builders (shared by the object and columnar scans)
    # ------------------------------------------------------------------

    def _record_public(
        self,
        near_address: int,
        near_rtt: float | None,
        middle_address: int,
        middle_rtt: float | None,
        far_address: int,
        ixp_id: int,
        ip_to_asn: Mapping[int, int | None],
        observations: dict[tuple, ObservedPeering],
    ) -> None:
        near_asn = ip_to_asn.get(near_address)
        # The peering-LAN port belongs to the far border router, so its
        # (alias-repaired) mapping identifies the far AS most reliably —
        # essential when the hop after it is another exchange's LAN port
        # (multi-IXP routers, Section 5).  Fall back to the next hop.
        far_asn = ip_to_asn.get(middle_address)
        if far_asn is None or far_asn not in self._db.members_of(ixp_id):
            far_asn = ip_to_asn.get(far_address)
        if near_asn is None or far_asn is None or near_asn == far_asn:
            return
        self._obs.count("classify.crossings_public")
        rtt_step = (
            None
            if near_rtt is None or middle_rtt is None
            else middle_rtt - near_rtt
        )
        observation = ObservedPeering(
            kind=PeeringKind.PUBLIC,
            near_address=near_address,
            near_asn=near_asn,
            far_asn=far_asn,
            far_address=far_address,
            ixp_id=ixp_id,
            ixp_address=middle_address,
            min_rtt_step_ms=rtt_step,
        )
        self.merge(observations, observation)

    def _record_private(
        self,
        near_address: int,
        near_rtt: float | None,
        far_address: int,
        far_rtt: float | None,
        ip_to_asn: Mapping[int, int | None],
        observations: dict[tuple, ObservedPeering],
    ) -> None:
        near_asn = ip_to_asn.get(near_address)
        far_asn = ip_to_asn.get(far_address)
        if near_asn is None or far_asn is None or near_asn == far_asn:
            return
        self._obs.count("classify.crossings_private")
        rtt_step = (
            None if near_rtt is None or far_rtt is None else far_rtt - near_rtt
        )
        observation = ObservedPeering(
            kind=PeeringKind.PRIVATE,
            near_address=near_address,
            near_asn=near_asn,
            far_asn=far_asn,
            far_address=far_address,
            min_rtt_step_ms=rtt_step,
        )
        self.merge(observations, observation)

    @staticmethod
    def merge(
        observations: dict[tuple, ObservedPeering], observation: ObservedPeering
    ) -> None:
        """Fold one crossing record into ``observations``.

        Counts accumulate and the RTT step keeps its minimum; the first
        record's non-key fields win, so merging per-trace record batches
        in trace order is equivalent to one streaming pass.
        """
        key = observation.key()
        existing = observations.get(key)
        if existing is None:
            observations[key] = observation
            return
        steps = [
            step
            for step in (existing.min_rtt_step_ms, observation.min_rtt_step_ms)
            if step is not None
        ]
        observations[key] = ObservedPeering(
            kind=existing.kind,
            near_address=existing.near_address,
            near_asn=existing.near_asn,
            far_asn=existing.far_asn,
            far_address=existing.far_address,
            ixp_id=existing.ixp_id,
            ixp_address=existing.ixp_address,
            min_rtt_step_ms=min(steps) if steps else None,
            observations=existing.observations + observation.observations,
        )
