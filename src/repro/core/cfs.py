"""The Constrained Facility Search loop (Section 4.2, Figure 4).

One CFS iteration repeats Steps 2-4 over the accumulated measurement
corpus:

1. (once per corpus growth) map new interface addresses to ASNs and
   refresh alias resolution, repairing IP-to-ASN conflicts by alias
   majority vote;
2. re-extract public/private crossings (Step 1) and apply the initial
   facility search constraints (Step 2);
3. propagate constraints across router aliases (Step 3);
4. plan and launch targeted follow-up traceroutes for interfaces that
   have not converged (Step 4).

The loop stops at convergence, at quiescence (no constraint changed and
no follow-up is available), or at the iteration timeout (the paper used
100 rounds and observed diminishing returns after ~40).  Afterwards the
far ends of public peerings are settled with reverse-path constraints
and the switch proximity heuristic, and every observed link receives a
facility and engineering-type inference.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..alias.midar import AliasSets, MidarResolver, repair_ip_to_asn
from ..measurement.campaign import CampaignDriver, TraceCorpus
from ..measurement.platforms import MeasurementPlatform
from .alias_constraints import propagate_alias_constraints
from .classify import PeeringClassifier
from .constrain import InitialFacilitySearch
from .facility_db import FacilityDatabase
from .farside import LinkFinalizer
from .followup import FollowupPlanner
from .proximity import SwitchProximityModel
from .remote import RemotePeeringDetector
from .types import (
    CfsResult,
    InterfaceState,
    InterfaceStatus,
    IterationStats,
    ObservedPeering,
)

__all__ = ["CfsConfig", "ConstrainedFacilitySearch"]


@dataclass(frozen=True, slots=True)
class CfsConfig:
    """Knobs of the search loop (ablation switches included)."""

    #: Iteration timeout (the paper's 100 rounds).
    max_iterations: int = 100
    #: Follow-up probes planned per iteration.
    followup_budget: int = 32
    #: Step 3 on/off (ablation).
    use_alias_constraints: bool = True
    #: Step 4 on/off (ablation).
    use_followups: bool = True
    #: Step 4 target ordering: the paper's "smallest-overlap" rule, or
    #: "random" (ablation).
    followup_strategy: str = "smallest-overlap"
    #: Section 4.4 far-end heuristic on/off (ablation).
    use_proximity: bool = True
    #: IP-to-ASN repair by alias majority vote on/off (ablation).
    use_asn_repair: bool = True
    #: Apply the campus mirror constraint to the far interface of
    #: private crossings.  The paper does NOT (Step 2 constrains only
    #: the near interface; far sides come from reverse-direction paths,
    #: Section 4.3), and enabling it trades a lot of precision for some
    #: coverage: boundary-shifted observations (unrepaired shared /31s)
    #: pin *interior* far-AS interfaces to wrong facilities.  Kept as an
    #: ablation switch.
    constrain_private_far_side: bool = False
    #: Re-run alias resolution when the address pool grew by this factor.
    alias_refresh_fraction: float = 0.10


class ConstrainedFacilitySearch:
    """Drives the CFS loop over a corpus, optionally probing as it goes."""

    def __init__(
        self,
        facility_db: FacilityDatabase,
        ip_to_asn,
        alias_resolver: MidarResolver | None = None,
        driver: CampaignDriver | None = None,
        remote_detector: RemotePeeringDetector | None = None,
        config: CfsConfig | None = None,
    ) -> None:
        """Args:
            facility_db: the assembled Section-3.1 knowledge base.
            ip_to_asn: object with ``lookup(address) -> int | None``
                (e.g. :class:`repro.datasets.CymruService`).
            alias_resolver: MIDAR front-end; ``None`` disables alias
                resolution entirely (a harsher ablation than switching
                off Step 3, since IP-to-ASN repair also vanishes).
            driver: campaign driver for follow-up traceroutes; ``None``
                makes the run passive (archived corpus only).
            remote_detector: the delay-based remote-peering test.
            config: loop knobs.
        """
        self._db = facility_db
        self._ip_to_asn = ip_to_asn
        self._midar = alias_resolver
        self._driver = driver
        self.config = config or CfsConfig()
        self._classifier = PeeringClassifier(facility_db)
        self._search = InitialFacilitySearch(
            facility_db,
            remote_detector or RemotePeeringDetector(),
            constrain_private_far_side=self.config.constrain_private_far_side,
        )
        self._planner = FollowupPlanner(
            facility_db, strategy=self.config.followup_strategy
        )
        self.proximity = SwitchProximityModel()

    # ------------------------------------------------------------------

    def run(
        self,
        corpus: TraceCorpus,
        platforms: list[MeasurementPlatform] | None = None,
    ) -> CfsResult:
        """Run the loop to convergence/timeout and finalize inferences."""
        known_addresses: set[int] = set()
        raw_mapping: dict[int, int | None] = {}
        mapping: dict[int, int | None] = {}
        alias_sets = AliasSets()
        addresses_at_last_resolve = 0
        parsed_traces = 0
        observations: dict[tuple, ObservedPeering] = {}
        states: dict[int, InterfaceState] = {}
        probed_pairs: set[tuple[int, int]] = set()
        history: list[IterationStats] = []
        followup_traces = 0
        iterations_run = 0

        for iteration in range(1, self.config.max_iterations + 1):
            iterations_run = iteration
            # --- mapping upkeep for newly observed addresses ----------
            fresh = [
                address
                for trace in corpus.traces[parsed_traces:]
                for address in trace.responsive_addresses()
                if address not in known_addresses
            ]
            for address in fresh:
                known_addresses.add(address)
                asn = self._ip_to_asn.lookup(address)
                raw_mapping[address] = asn
                mapping[address] = asn

            # --- alias refresh + IP-to-ASN repair ----------------------
            grew_enough = len(known_addresses) - addresses_at_last_resolve > (
                self.config.alias_refresh_fraction * max(1, addresses_at_last_resolve)
            )
            if self._midar is not None and (iteration == 1 or grew_enough):
                alias_sets = self._midar.resolve(sorted(known_addresses))
                addresses_at_last_resolve = len(known_addresses)
                if self.config.use_asn_repair:
                    mapping = repair_ip_to_asn(alias_sets, raw_mapping)
                else:
                    mapping = dict(raw_mapping)
                # Boundaries may move under the repaired mapping.
                observations = {}
                parsed_traces = 0

            # --- Step 1: (re)extract crossings -------------------------
            self._classifier.extract(
                corpus.traces[parsed_traces:], mapping, into=observations
            )
            parsed_traces = len(corpus.traces)

            # --- Step 2: initial facility search -----------------------
            changed = False
            for observation in observations.values():
                if self._search.apply(observation, states):
                    changed = True

            # --- Step 3: alias constraint propagation ------------------
            if self.config.use_alias_constraints and len(alias_sets):
                narrowed = propagate_alias_constraints(states, alias_sets)
                if narrowed:
                    changed = True
                self._search.refresh_statuses(states)

            # --- Step 4: targeted follow-ups ----------------------------
            plans = []
            if (
                self.config.use_followups
                and self._driver is not None
                and self._has_unresolved(states)
            ):
                plans = self._planner.plan(
                    states, probed_pairs, self.config.followup_budget
                )
                for plan in plans:
                    probed_pairs.add((plan.near_asn, plan.target_asn))
                    followup_traces += self._driver.probe_peering(
                        plan.near_asn, plan.target_asn, corpus, platforms
                    )

            history.append(self._snapshot(iteration, states, len(plans)))
            if not self._has_unresolved(states) and not self._has_missing(states):
                break
            if not changed and not plans:
                break

        finalizer = LinkFinalizer(self._db, self.proximity)
        links = finalizer.finalize(
            observations, states, use_proximity=self.config.use_proximity
        )
        return CfsResult(
            interfaces=states,
            links=links,
            history=history,
            iterations_run=iterations_run,
            followup_traces=followup_traces,
            peering_interfaces_seen=len(states),
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _has_unresolved(states: dict[int, InterfaceState]) -> bool:
        return any(
            state.status
            in (InterfaceStatus.UNRESOLVED_LOCAL, InterfaceStatus.UNRESOLVED_REMOTE)
            for state in states.values()
        )

    @staticmethod
    def _has_missing(states: dict[int, InterfaceState]) -> bool:
        return any(
            state.status is InterfaceStatus.MISSING_DATA
            for state in states.values()
        )

    @staticmethod
    def _snapshot(
        iteration: int, states: dict[int, InterfaceState], followups: int
    ) -> IterationStats:
        counts = {status: 0 for status in InterfaceStatus}
        for state in states.values():
            counts[state.status] += 1
        return IterationStats(
            iteration=iteration,
            total_interfaces=len(states),
            resolved=counts[InterfaceStatus.RESOLVED],
            unresolved_local=counts[InterfaceStatus.UNRESOLVED_LOCAL],
            unresolved_remote=counts[InterfaceStatus.UNRESOLVED_REMOTE],
            missing_data=counts[InterfaceStatus.MISSING_DATA],
            followups_issued=followups,
        )
