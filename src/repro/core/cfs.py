"""The Constrained Facility Search loop (Section 4.2, Figure 4).

One CFS iteration repeats Steps 2-4 over the accumulated measurement
corpus:

1. (once per corpus growth) map new interface addresses to ASNs and
   refresh alias resolution, repairing IP-to-ASN conflicts by alias
   majority vote;
2. re-extract public/private crossings (Step 1) and apply the initial
   facility search constraints (Step 2);
3. propagate constraints across router aliases (Step 3);
4. plan and launch targeted follow-up traceroutes for interfaces that
   have not converged (Step 4).

The loop stops at convergence, at quiescence (no constraint changed and
no follow-up is available), or at the iteration timeout (the paper used
100 rounds and observed diminishing returns after ~40).  Afterwards the
far ends of public peerings are settled with reverse-path constraints
and the switch proximity heuristic, and every observed link receives a
facility and engineering-type inference.

Two evaluation engines share this loop:

* the **incremental** engine (default): Step 2 only revisits
  *dirty* observations — crossings created or updated by newly parsed
  traces, plus crossings whose constraints currently conflict (the
  full-rescan loop re-counts those conflicts every round, so the
  incremental engine re-applies them to stay byte-identical).  Alias
  refreshes re-parse only the traces whose address-to-ASN mapping
  actually moved, reusing cached per-trace extractions for the rest;
* the **full-rescan** engine (``CfsConfig(incremental=False)``): the
  paper-literal loop that re-applies every accumulated observation each
  iteration and, on every alias refresh, drops the parsed corpus and
  starts over.  Kept as the equivalence oracle for the incremental
  path.

Both engines produce identical inferences; see
``tests/core/test_incremental.py`` for the property test.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dataclass_replace

from ..alias.midar import AliasSets, MidarResolver, repair_ip_to_asn
from ..columnar import TraceArrays
from ..exec import (
    ExecFaultSpec,
    SupervisorConfig,
    instrument_observer,
    plan_blocks,
    supervised_map,
)
from ..measurement.campaign import CampaignDriver, TraceCorpus
from ..measurement.platforms import MeasurementPlatform
from ..measurement.traceroute import Traceroute
from ..obs import Instrumentation, MetricsSnapshot
from .alias_constraints import propagate_alias_constraints
from .classify import PeeringClassifier
from .constrain import InitialFacilitySearch
from .facility_db import FacilityDatabase
from .farside import LinkFinalizer
from .followup import FollowupPlanner
from .proximity import SwitchProximityModel
from .remote import RemotePeeringDetector
from .types import (
    CfsResult,
    InterfaceState,
    InterfaceStatus,
    IterationStats,
    ObservedPeering,
    PeeringKind,
)

__all__ = ["CfsConfig", "ConstrainedFacilitySearch", "FOLLOWUP_STRATEGIES"]

#: Valid values of :attr:`CfsConfig.followup_strategy`.
FOLLOWUP_STRATEGIES = ("smallest-overlap", "random")

#: Minimum traces in one extraction batch before forking pays off —
#: below this the pool's fork/pickle overhead dwarfs the work.
PARALLEL_EXTRACT_MIN = 64

#: Minimum traces per extraction block: a fork that classifies fewer
#: than this spends more on submit/IPC than on work, so block planning
#: coarsens small batches into fewer, fatter shards.
EXTRACT_BLOCK_MIN = 32


@dataclass(frozen=True, slots=True)
class CfsConfig:
    """Knobs of the search loop (ablation switches included).

    Invalid knob values raise :class:`ValueError` at construction, so a
    bad ``followup_strategy`` cannot survive until deep inside the
    follow-up planner.
    """

    #: Iteration timeout (the paper's 100 rounds).
    max_iterations: int = 100
    #: Follow-up probes planned per iteration.
    followup_budget: int = 32
    #: Step 3 on/off (ablation).
    use_alias_constraints: bool = True
    #: Step 4 on/off (ablation).
    use_followups: bool = True
    #: Step 4 target ordering: the paper's "smallest-overlap" rule, or
    #: "random" (ablation).
    followup_strategy: str = "smallest-overlap"
    #: Section 4.4 far-end heuristic on/off (ablation).
    use_proximity: bool = True
    #: IP-to-ASN repair by alias majority vote on/off (ablation).
    use_asn_repair: bool = True
    #: Apply the campus mirror constraint to the far interface of
    #: private crossings.  The paper does NOT (Step 2 constrains only
    #: the near interface; far sides come from reverse-direction paths,
    #: Section 4.3), and enabling it trades a lot of precision for some
    #: coverage: boundary-shifted observations (unrepaired shared /31s)
    #: pin *interior* far-AS interfaces to wrong facilities.  Kept as an
    #: ablation switch.
    constrain_private_far_side: bool = False
    #: Re-run alias resolution when the address pool grew by this factor.
    alias_refresh_fraction: float = 0.10
    #: Dirty-set incremental evaluation (the default).  ``False`` runs
    #: the original full-rescan loop: every observation re-applied each
    #: iteration, the whole corpus re-parsed on every alias refresh.
    incremental: bool = True
    #: Columnar hot paths (the default): address scanning, Step-1/2
    #: extraction, and the moved-address re-parse consume flat arrays
    #: (:class:`repro.columnar.TraceArrays`) flattened once per corpus
    #: growth instead of walking hop dataclasses.  Byte-identical to the
    #: object walk; ``False`` keeps the dataclass path.  The full-rescan
    #: oracle (``incremental=False``) always walks objects — it is the
    #: paper-literal reference both optimisations are measured against.
    columnar: bool = True
    #: Tolerate missing facility rows: when one side of a Step-2
    #: constraint is unknown, widen the candidate set with the known
    #: side (marked ``data_health="degraded"``) instead of leaving the
    #: interface at MISSING_DATA.  Off by default — it trades precision
    #: for coverage and is intended for fault-injected corpora.
    degraded_mode: bool = False

    def __post_init__(self) -> None:
        if self.followup_strategy not in FOLLOWUP_STRATEGIES:
            raise ValueError(
                f"unknown follow-up strategy {self.followup_strategy!r}; "
                f"expected one of {FOLLOWUP_STRATEGIES}"
            )
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        if self.followup_budget < 0:
            raise ValueError("followup_budget must not be negative")
        if self.alias_refresh_fraction < 0:
            raise ValueError("alias_refresh_fraction must not be negative")

    def replace(self, **overrides) -> "CfsConfig":
        """A copy with ``overrides`` applied (and re-validated).

        The ablation harnesses and benchmarks flip single switches off a
        base configuration; this keeps them from rebuilding the config
        field by field.
        """
        return _dataclass_replace(self, **overrides)


class ConstrainedFacilitySearch:
    """Drives the CFS loop over a corpus, optionally probing as it goes."""

    def __init__(
        self,
        facility_db: FacilityDatabase,
        ip_to_asn,
        alias_resolver: MidarResolver | None = None,
        driver: CampaignDriver | None = None,
        remote_detector: RemotePeeringDetector | None = None,
        config: CfsConfig | None = None,
        instrumentation: Instrumentation | None = None,
        workers: int = 1,
        supervision: SupervisorConfig | None = None,
        exec_faults: ExecFaultSpec | None = None,
    ) -> None:
        """Args:
            facility_db: the assembled Section-3.1 knowledge base.
            ip_to_asn: object with ``lookup(address) -> int | None``
                (e.g. :class:`repro.datasets.CymruService`).
            alias_resolver: MIDAR front-end; ``None`` disables alias
                resolution entirely (a harsher ablation than switching
                off Step 3, since IP-to-ASN repair also vanishes).
            driver: campaign driver for follow-up traceroutes; ``None``
                makes the run passive (archived corpus only).
            remote_detector: the delay-based remote-peering test.
            config: loop knobs.
            instrumentation: counters/timers/event sink for the run; a
                fresh silent instance when omitted.
            workers: process-pool width for Step-2 trace extraction
                (1 = serial; output is byte-identical either way).
            supervision: executor supervision policy (deadline, retry
                and quarantine bounds); defaults apply when ``None``.
            exec_faults: seeded executor-fault intensities (chaos);
                ``None`` injects nothing.
        """
        self._db = facility_db
        self.workers = workers
        self.supervision = supervision
        self.exec_faults = exec_faults
        self._ip_to_asn = ip_to_asn
        self._midar = alias_resolver
        self._driver = driver
        self.config = config or CfsConfig()
        self.instrumentation = instrumentation or Instrumentation()
        self._obs = self.instrumentation
        self._classifier = PeeringClassifier(
            facility_db, instrumentation=self._obs
        )
        self._search = InitialFacilitySearch(
            facility_db,
            remote_detector or RemotePeeringDetector(),
            constrain_private_far_side=self.config.constrain_private_far_side,
            degraded=self.config.degraded_mode,
            instrumentation=self._obs,
        )
        self._planner = FollowupPlanner(
            facility_db, strategy=self.config.followup_strategy
        )
        self.proximity = SwitchProximityModel()

    # ------------------------------------------------------------------

    def run(
        self,
        corpus: TraceCorpus,
        platforms: list[MeasurementPlatform] | None = None,
    ) -> CfsResult:
        """Run the loop to convergence/timeout and finalize inferences."""
        obs = self._obs
        incremental = self.config.incremental
        # The columnar fast path serves the incremental engine only; the
        # full-rescan engine stays the untouched paper-literal oracle.
        use_columnar = incremental and self.config.columnar
        arrays: TraceArrays | None = None
        known_addresses: set[int] = set()
        raw_mapping: dict[int, int | None] = {}
        mapping: dict[int, int | None] = {}
        previous_mapping: dict[int, int | None] = {}
        alias_sets = AliasSets()
        addresses_at_last_resolve = 0
        #: Address-discovery frontier (never rewinds).
        scanned_traces = 0
        #: Extraction frontier (the full-rescan engine rewinds it to 0
        #: on every alias refresh).
        parsed_traces = 0
        observations: dict[tuple, ObservedPeering] = {}
        #: Incremental engine: per-trace extraction cache (``None`` for
        #: traces yielding no crossing, which is most of them — keeps
        #: the cache light for the garbage collector).
        trace_records: list[dict[tuple, ObservedPeering] | None] = []
        #: Observation keys whose constraints currently conflict; the
        #: full-rescan loop re-counts such conflicts every iteration, so
        #: the incremental engine keeps re-applying them.
        sticky_conflicts: set[tuple] = set()
        states: dict[int, InterfaceState] = {}
        probed_pairs: set[tuple[int, int]] = set()
        history: list[IterationStats] = []
        followup_traces = 0
        iterations_run = 0

        for iteration in range(1, self.config.max_iterations + 1):
            iterations_run = iteration
            obs.count("cfs.iterations")

            # --- mapping upkeep for newly observed addresses ----------
            with obs.stage("map"):
                scan_from = scanned_traces if incremental else parsed_traces
                if use_columnar:
                    # Re-flatten lazily: only traces appended since the
                    # last epoch are encoded (the corpus is append-only).
                    arrays = corpus.columnar()
                    fresh = [
                        address
                        for index in range(scan_from, len(corpus.traces))
                        for address in arrays.responsive_addresses(index)
                        if address not in known_addresses
                    ]
                else:
                    fresh = [
                        address
                        for trace in corpus.traces[scan_from:]
                        for address in trace.responsive_addresses()
                        if address not in known_addresses
                    ]
                for address in fresh:
                    known_addresses.add(address)
                    asn = self._ip_to_asn.lookup(address)
                    raw_mapping[address] = asn
                    mapping[address] = asn
                scanned_traces = len(corpus.traces)
                obs.count("cfs.addresses_mapped", len(fresh))

            # --- alias refresh + IP-to-ASN repair ----------------------
            refreshed = False
            grew_enough = len(known_addresses) - addresses_at_last_resolve > (
                self.config.alias_refresh_fraction * max(1, addresses_at_last_resolve)
            )
            if self._midar is not None and (iteration == 1 or grew_enough):
                with obs.stage("alias"):
                    alias_sets = self._midar.resolve(sorted(known_addresses))
                    addresses_at_last_resolve = len(known_addresses)
                    previous_mapping = mapping
                    if self.config.use_asn_repair:
                        mapping = repair_ip_to_asn(alias_sets, raw_mapping)
                    else:
                        mapping = dict(raw_mapping)
                refreshed = True
                obs.count("cfs.alias_refreshes")
                obs.emit(
                    "cfs.alias_refresh",
                    iteration=iteration,
                    addresses=len(known_addresses),
                    alias_sets=len(alias_sets),
                )
                if not incremental:
                    # Boundaries may move under the repaired mapping:
                    # the full-rescan engine drops the parsed corpus.
                    observations = {}
                    parsed_traces = 0

            # --- Step 1: (re)extract crossings -------------------------
            with obs.stage("extract"):
                traces_parsed_now = 0
                dirty: set[tuple] | None
                if incremental:
                    if refreshed:
                        reparsed = self._reparse_moved(
                            corpus, mapping, previous_mapping, trace_records,
                            arrays,
                        )
                        traces_parsed_now += reparsed
                        if reparsed:
                            observations = self._rebuild_observations(
                                trace_records
                            )
                        # Post-refresh, revisit every crossing once —
                        # the full-rescan engine does the same pass.
                        dirty = None
                    else:
                        dirty = set(sticky_conflicts)
                    merge = PeeringClassifier.merge
                    new_keys: set[tuple] = set()
                    fresh_indices = range(parsed_traces, len(corpus.traces))
                    for records in self._extract_many(
                        corpus, mapping, fresh_indices, arrays
                    ):
                        trace_records.append(records)
                        traces_parsed_now += 1
                        if records is None:
                            continue
                        for record in records.values():
                            merge(observations, record)
                        new_keys.update(records)
                    if dirty is not None:
                        dirty |= new_keys
                else:
                    traces_parsed_now = len(corpus.traces) - parsed_traces
                    self._classifier.extract(
                        corpus.traces[parsed_traces:], mapping, into=observations
                    )
                    dirty = None
                parsed_traces = len(corpus.traces)

            # --- Step 2: initial facility search -----------------------
            with obs.stage("constrain"):
                changed = False
                applied = 0
                if dirty is None:
                    for observation in observations.values():
                        applied += 1
                        if self._apply_observation(
                            observation, states, sticky_conflicts, incremental
                        ):
                            changed = True
                elif dirty:
                    # Dict order is first-appearance order; walking the
                    # dict (not the dirty set) keeps application order
                    # identical to the full-rescan engine.
                    for key, observation in observations.items():
                        if key not in dirty:
                            continue
                        applied += 1
                        if self._apply_observation(
                            observation, states, sticky_conflicts, incremental
                        ):
                            changed = True
                obs.count("cfs.observations_applied", applied)
                obs.count(
                    "cfs.observations_skipped", len(observations) - applied
                )

            # --- Step 3: alias constraint propagation ------------------
            if self.config.use_alias_constraints and len(alias_sets):
                with obs.stage("propagate"):
                    narrowed = propagate_alias_constraints(states, alias_sets)
                    if narrowed:
                        changed = True
                    obs.count("cfs.constraints_narrowed", narrowed)
                    self._search.refresh_statuses(states)

            # --- Step 4: targeted follow-ups ----------------------------
            plans = []
            if (
                self.config.use_followups
                and self._driver is not None
                and self._has_unresolved(states)
            ):
                with obs.stage("followup"):
                    plans = self._planner.plan(
                        states, probed_pairs, self.config.followup_budget
                    )
                    for plan in plans:
                        probed_pairs.add((plan.near_asn, plan.target_asn))
                        followup_traces += self._driver.probe_peering(
                            plan.near_asn, plan.target_asn, corpus, platforms
                        )
                obs.count("cfs.followups_issued", len(plans))

            history.append(
                self._snapshot(
                    iteration,
                    states,
                    len(plans),
                    observations_total=len(observations),
                    observations_applied=applied,
                    traces_parsed=traces_parsed_now,
                )
            )
            obs.emit(
                "cfs.iteration",
                iteration=iteration,
                interfaces=len(states),
                observations=len(observations),
                applied=applied,
                followups=len(plans),
            )
            if not self._has_unresolved(states) and not self._has_missing(states):
                break
            if not changed and not plans:
                break

        with obs.stage("finalize"):
            finalizer = LinkFinalizer(self._db, self.proximity)
            links = finalizer.finalize(
                observations, states, use_proximity=self.config.use_proximity
            )
        return CfsResult(
            interfaces=states,
            links=links,
            history=history,
            iterations_run=iterations_run,
            followup_traces=followup_traces,
            peering_interfaces_seen=len(states),
            metrics=obs.snapshot(),
            alias_sets=alias_sets if self._midar is not None else None,
        )

    # ------------------------------------------------------------------
    # Incremental-engine helpers
    # ------------------------------------------------------------------

    def _extract_trace(
        self, trace: Traceroute, mapping: dict[int, int | None]
    ) -> dict[tuple, ObservedPeering] | None:
        """One trace's crossings as an isolated (cacheable) record batch.

        ``None`` stands for "no crossings" so the cache holds no empty
        dicts (most traces cross no peering).
        """
        records = self._classifier.extract([trace], mapping, into={})
        return records or None

    def _extract_many(
        self,
        corpus: TraceCorpus,
        mapping: dict[int, int | None],
        indices,
        arrays: TraceArrays | None = None,
    ) -> list[dict[tuple, ObservedPeering] | None]:
        """Extract many traces by index, on the pool when it pays off.

        Extraction is pure per trace, so the corpus splits into
        contiguous blocks (:func:`repro.exec.plan_blocks`, coarsened to
        at least :data:`EXTRACT_BLOCK_MIN` traces each so every fork
        amortises its IPC cost) and the block results concatenate back
        into index order — byte-identical to the serial loop.  Each
        worker classifies against a private :class:`Instrumentation`;
        the parent absorbs the snapshots in block order, so counter
        totals match the serial path exactly.

        With ``arrays`` (the columnar engine) the scan runs over flat
        hop columns, workers inherit the arrays copy-on-write, and
        results come back as packed rows instead of pickled record
        objects (:func:`_pack_records` / :func:`_unpack_records`).
        """
        indices = list(indices)
        if (
            self.workers <= 1
            or len(indices) < max(2, PARALLEL_EXTRACT_MIN)
        ):
            if arrays is not None:
                classifier = self._classifier
                return [
                    classifier.extract_arrays(arrays, (index,), mapping, into={})
                    or None
                    for index in indices
                ]
            traces = corpus.traces
            return [
                self._extract_trace(traces[index], mapping)
                for index in indices
            ]
        blocks = plan_blocks(
            len(indices), self.workers, min_size=EXTRACT_BLOCK_MIN
        )
        payloads = [tuple(indices[start:stop]) for start, stop in blocks]
        self._obs.count("exec.extract.blocks", len(payloads))
        columnar = arrays is not None
        outputs = supervised_map(
            _extract_block_columnar if columnar else _extract_block,
            payloads,
            workers=self.workers,
            context=(
                (self._db, arrays, mapping)
                if columnar
                else (self._db, corpus.traces, mapping)
            ),
            config=self.supervision,
            faults=self.exec_faults,
            fallback=lambda reason: self._obs.count(f"exec.fallback.{reason}"),
            observer=instrument_observer(self._obs),
            describe=lambda block: f"extract block of {len(block)} traces",
        )
        results: list[dict[tuple, ObservedPeering] | None] = []
        for records, snapshot in outputs:
            if columnar:
                results.extend(
                    _unpack_records(packed) for packed in records
                )
            else:
                results.extend(records)
            self._obs.absorb(snapshot)
        return results

    def _reparse_moved(
        self,
        corpus: TraceCorpus,
        mapping: dict[int, int | None],
        previous_mapping: dict[int, int | None],
        trace_records: list[dict[tuple, ObservedPeering] | None],
        arrays: TraceArrays | None = None,
    ) -> int:
        """Re-extract cached traces whose address-to-ASN mapping moved.

        Extraction depends on the mapping only through a trace's own
        responsive addresses, so traces disjoint from the moved set keep
        their cached records verbatim.  Returns the re-parse count.
        """
        moved = {
            address
            for address, asn in mapping.items()
            if previous_mapping.get(address) != asn
        }
        if not moved:
            return 0
        if arrays is not None:
            intersects = arrays.intersects
            touched = [
                index
                for index in range(len(trace_records))
                if intersects(index, moved)
            ]
        else:
            disjoint = moved.isdisjoint
            traces = corpus.traces
            touched = [
                index
                for index in range(len(trace_records))
                if not disjoint(traces[index].responsive_addresses())
            ]
        for index, records in zip(
            touched, self._extract_many(corpus, mapping, touched, arrays)
        ):
            trace_records[index] = records
        reparsed = len(touched)
        self._obs.count("cfs.traces_reparsed", reparsed)
        self._obs.count(
            "cfs.trace_cache_hits", len(trace_records) - reparsed
        )
        return reparsed

    @staticmethod
    def _rebuild_observations(
        trace_records: list[dict[tuple, ObservedPeering] | None],
    ) -> dict[tuple, ObservedPeering]:
        """Merge per-trace record batches back into one crossing dict.

        Merging batches in trace order reproduces the dict a full
        re-parse would build — same records, same insertion order — so
        downstream link finalisation stays byte-identical.
        """
        rebuilt: dict[tuple, ObservedPeering] = {}
        merge = PeeringClassifier.merge
        for records in trace_records:
            if records is None:
                continue
            for record in records.values():
                merge(rebuilt, record)
        return rebuilt

    def _apply_observation(
        self,
        observation: ObservedPeering,
        states: dict[int, InterfaceState],
        sticky_conflicts: set[tuple],
        track_conflicts: bool,
    ) -> bool:
        """Step-2 application, optionally tracking conflicting keys.

        The incremental engine must know which observations conflicted:
        the full-rescan loop re-applies them every iteration and counts
        a fresh conflict each time, so they stay in the dirty set until
        a mapping move lifts the contradiction.
        """
        if not track_conflicts:
            return self._search.apply(observation, states)
        involved = [observation.near_address]
        if observation.kind is PeeringKind.PUBLIC:
            if observation.ixp_address is not None:
                involved.append(observation.ixp_address)
        elif (
            observation.far_address is not None
            and self.config.constrain_private_far_side
        ):
            involved.append(observation.far_address)
        before = sum(
            states[address].conflicts
            for address in involved
            if address in states
        )
        changed = self._search.apply(observation, states)
        after = sum(
            states[address].conflicts
            for address in involved
            if address in states
        )
        key = observation.key()
        if after > before:
            sticky_conflicts.add(key)
        else:
            sticky_conflicts.discard(key)
        return changed

    # ------------------------------------------------------------------

    @staticmethod
    def _has_unresolved(states: dict[int, InterfaceState]) -> bool:
        return any(
            state.status
            in (InterfaceStatus.UNRESOLVED_LOCAL, InterfaceStatus.UNRESOLVED_REMOTE)
            for state in states.values()
        )

    @staticmethod
    def _has_missing(states: dict[int, InterfaceState]) -> bool:
        return any(
            state.status is InterfaceStatus.MISSING_DATA
            for state in states.values()
        )

    @staticmethod
    def _snapshot(
        iteration: int,
        states: dict[int, InterfaceState],
        followups: int,
        observations_total: int = 0,
        observations_applied: int = 0,
        traces_parsed: int = 0,
    ) -> IterationStats:
        counts = {status: 0 for status in InterfaceStatus}
        for state in states.values():
            counts[state.status] += 1
        return IterationStats(
            iteration=iteration,
            total_interfaces=len(states),
            resolved=counts[InterfaceStatus.RESOLVED],
            unresolved_local=counts[InterfaceStatus.UNRESOLVED_LOCAL],
            unresolved_remote=counts[InterfaceStatus.UNRESOLVED_REMOTE],
            missing_data=counts[InterfaceStatus.MISSING_DATA],
            followups_issued=followups,
            observations_total=observations_total,
            observations_applied=observations_applied,
            traces_parsed=traces_parsed,
        )


def _extract_block(
    context: tuple, indices: tuple[int, ...]
) -> tuple[list[dict[tuple, ObservedPeering] | None], MetricsSnapshot]:
    """Extract one trace block (:func:`repro.exec.parallel_map` worker).

    ``context`` is ``(facility_db, traces, mapping)``, fork-inherited.
    The worker classifies with a private classifier over a private
    :class:`Instrumentation`, so nothing parent-owned is mutated — the
    in-process serial fallback and the forked pool behave identically —
    and the returned snapshot carries the block's counter contribution.
    """
    facility_db, traces, mapping = context
    obs = Instrumentation()
    classifier = PeeringClassifier(facility_db, instrumentation=obs)
    records = [
        classifier.extract([traces[index]], mapping, into={}) or None
        for index in indices
    ]
    return records, obs.snapshot()


def _pack_records(
    records: dict[tuple, ObservedPeering] | None,
) -> tuple[tuple, ...] | None:
    """One trace's record batch as plain rows (the shard-result codec).

    Rows keep the dict's insertion order, which *is* the scan order, so
    :func:`_unpack_records` rebuilds an identical dict — same records,
    same order — while the pool boundary moves flat tuples instead of
    dataclass object graphs.
    """
    if records is None:
        return None
    return tuple(
        (
            record.kind.value,
            record.near_address,
            record.near_asn,
            record.far_asn,
            record.far_address,
            record.ixp_id,
            record.ixp_address,
            record.min_rtt_step_ms,
            record.observations,
        )
        for record in records.values()
    )


def _unpack_records(
    rows: tuple[tuple, ...] | None,
) -> dict[tuple, ObservedPeering] | None:
    """Materialise packed rows back into a keyed record batch."""
    if rows is None:
        return None
    records: dict[tuple, ObservedPeering] = {}
    for (
        kind,
        near_address,
        near_asn,
        far_asn,
        far_address,
        ixp_id,
        ixp_address,
        min_rtt_step_ms,
        observations,
    ) in rows:
        record = ObservedPeering(
            kind=PeeringKind(kind),
            near_address=near_address,
            near_asn=near_asn,
            far_asn=far_asn,
            far_address=far_address,
            ixp_id=ixp_id,
            ixp_address=ixp_address,
            min_rtt_step_ms=min_rtt_step_ms,
            observations=observations,
        )
        records[record.key()] = record
    return records


def _extract_block_columnar(
    context: tuple, indices: tuple[int, ...]
) -> tuple[list[tuple[tuple, ...] | None], MetricsSnapshot]:
    """Columnar twin of :func:`_extract_block`.

    ``context`` is ``(facility_db, trace_arrays, mapping)``,
    fork-inherited copy-on-write — the flat arrays are never pickled on
    the way in.  The scan walks array slices, and each trace's records
    leave the worker as packed rows (:func:`_pack_records`), so the
    result pickle is a list of flat tuples rather than an object graph.
    """
    facility_db, arrays, mapping = context
    obs = Instrumentation()
    classifier = PeeringClassifier(facility_db, instrumentation=obs)
    records = [
        _pack_records(
            classifier.extract_arrays(arrays, (index,), mapping, into={})
            or None
        )
        for index in indices
    ]
    return records, obs.snapshot()
