"""CFS Step 3: constraint propagation across router aliases.

All interfaces of one router are in one building, so the candidate
facilities of an interface must also cover its aliases (Section 4.2,
Step 3 and the worked example of Figure 5: ``A.1 -> {f1, f2}`` and
``A.3 -> {f2, f3}`` being aliases forces both to ``{f2}``).

Propagation intersects the candidate sets of every alias set and
rewrites all members with the intersection.  An empty intersection
signals inconsistent facility data (or a false alias); the states are
left untouched and the conflict is counted, mirroring how the paper's
incomplete-data analysis treats contradictions (Section 5, Figure 8).
"""

from __future__ import annotations

from ..alias.midar import AliasSets
from .types import InterfaceState

__all__ = ["propagate_alias_constraints"]


def propagate_alias_constraints(
    states: dict[int, InterfaceState], alias_sets: AliasSets
) -> int:
    """One propagation pass; returns the number of interfaces narrowed."""
    narrowed = 0
    for alias_set in alias_sets.sets:
        members = [
            states[address] for address in alias_set if address in states
        ]
        if len(members) < 2:
            continue
        constrained = [
            member.candidates
            for member in members
            if member.candidates is not None
        ]
        if not constrained:
            continue
        intersection = set(constrained[0])
        for candidates in constrained[1:]:
            intersection &= candidates
        if not intersection:
            for member in members:
                member.conflicts += 1
            continue
        remote = any(member.remote for member in members)
        for member in members:
            if member.candidates is None or member.candidates != intersection:
                member.candidates = set(intersection)
                narrowed += 1
            if remote:
                member.remote = True
    return narrowed
