"""Delay-based remote-peering detection (Castro et al., CoNEXT 2014).

Section 4.2 Step 2, outcome 3: when a peer shares no facility with the
exchange whose LAN address its router holds, either it peers *remotely*
through a reseller or the facility data is simply incomplete.  The paper
disambiguates with the delay method of [14]: the RTT step across the
fabric crossing, minimised over measurements taken at different times of
day, is compatible with metro-local forwarding only below a small bound.

The classifier consumes the ``min_rtt_step_ms`` aggregated by Step 1.
Negative steps (jitter on short legs) are treated as local.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RemotePeeringDetector", "DEFAULT_METRO_LOCAL_BOUND_MS"]

#: Conservative default for "could be in the same metro": 60 km of
#: inflated fiber both ways plus forwarding and jitter headroom.  The
#: pipeline overrides this with the RTT model's own bound.
DEFAULT_METRO_LOCAL_BOUND_MS = 3.0


@dataclass(frozen=True, slots=True)
class RemotePeeringDetector:
    """Threshold test over minimum observed fabric-crossing RTT steps."""

    metro_local_bound_ms: float = DEFAULT_METRO_LOCAL_BOUND_MS
    #: Require this many sightings before trusting a *remote* verdict;
    #: a single sample may be congestion-inflated.
    min_observations: int = 1

    def classify(
        self, min_rtt_step_ms: float | None, observations: int = 1
    ) -> bool | None:
        """``True`` = remote, ``False`` = local, ``None`` = undecidable."""
        if min_rtt_step_ms is None:
            return None
        if min_rtt_step_ms <= self.metro_local_bound_ms:
            return False
        if observations < self.min_observations:
            return None
        return True
