"""CFS Step 2: the initial facility search.

For every crossing found in Step 1, intersect what the facility map
knows about the two sides (Section 4.2):

* **public** ``(IP_A, IP_e, IP_B)`` over exchange *E*: interface
  ``IP_A`` lies in ``F(A) ∩ F(E)`` — one common facility resolves it,
  several leave it *unresolved local*, none means either remote peering
  (delay test positive; candidates fall back to ``F(A)``) or missing
  data.  The far port ``IP_e`` belongs to *B*'s router and is
  constrained by ``F(B) ∩ F(E)`` symmetrically;
* **private** ``(IP_A, IP_B)``: ``IP_A`` lies in a facility of *A* from
  which *B* is cross-connectable — the same building, or a campus
  building of the same operator.  No such facility means tethering or
  remote private peering (the two routers need not share a building) or
  missing data; common membership of an active exchange supports the
  tethering reading.
"""

from __future__ import annotations

from ..obs import Instrumentation
from .facility_db import FacilityDatabase
from .remote import RemotePeeringDetector
from .types import (
    InferredType,
    InterfaceState,
    InterfaceStatus,
    ObservedPeering,
    PeeringKind,
)

__all__ = ["InitialFacilitySearch"]


class InitialFacilitySearch:
    """Applies Step-2 constraints from observations to interface states."""

    def __init__(
        self,
        facility_db: FacilityDatabase,
        remote_detector: RemotePeeringDetector | None = None,
        constrain_private_far_side: bool = False,
        degraded: bool = False,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        """``constrain_private_far_side`` applies the campus mirror
        constraint to the far interface of private crossings.  The
        paper's Step 2 constrains only the near interface (far sides are
        resolved through reverse-direction paths, Section 4.3), because
        the mirror is vulnerable to boundary-shifted observations:
        unrepaired shared /31s make an *interior* far-AS interface look
        like the crossing interface and pin it to a wrong facility.
        Enabling it is a coverage-over-precision ablation.

        ``degraded`` tolerates missing facility rows: when one side of a
        constraint is unknown (an AS or IXP with no recorded facilities),
        the interface is *widened* with the known side instead of being
        left at MISSING_DATA, and marked ``data_health="degraded"``.
        Coverage over precision — meant for corpora corrupted by the
        fault injector, off by default."""
        self._db = facility_db
        self._remote = remote_detector or RemotePeeringDetector()
        self._constrain_private_far = constrain_private_far_side
        self._degraded = degraded
        self._obs = instrumentation or Instrumentation()
        # Constraint-set caches: the loop re-applies every observation on
        # every iteration, and the sets only depend on (asn, ixp) or
        # (asn, other_asn) pairs over an immutable facility database.
        self._public_cache: dict[tuple[int, int], frozenset[int]] = {}
        self._private_cache: dict[tuple[int, int], frozenset[int]] = {}

    # ------------------------------------------------------------------

    def state_for(
        self, states: dict[int, InterfaceState], address: int, owner_asn: int
    ) -> InterfaceState:
        """Get or create the constraint state of one interface."""
        state = states.get(address)
        if state is None:
            state = InterfaceState(address=address, owner_asn=owner_asn)
            states[address] = state
        elif state.owner_asn is None:
            state.owner_asn = owner_asn
        return state

    def apply(
        self,
        observation: ObservedPeering,
        states: dict[int, InterfaceState],
    ) -> bool:
        """Constrain the interfaces involved in one observation.

        Returns True if any candidate set changed.
        """
        if observation.kind is PeeringKind.PUBLIC:
            return self._apply_public(observation, states)
        return self._apply_private(observation, states)

    # ------------------------------------------------------------------

    def _apply_public(
        self, observation: ObservedPeering, states: dict[int, InterfaceState]
    ) -> bool:
        assert observation.ixp_id is not None
        changed = False
        fabric = self._db.facilities_of_ixp(observation.ixp_id)
        changed |= self._constrain_public_side(
            states,
            address=observation.near_address,
            asn=observation.near_asn,
            fabric=fabric,
            observation=observation,
        )
        if observation.ixp_address is not None:
            changed |= self._constrain_public_side(
                states,
                address=observation.ixp_address,
                asn=observation.far_asn,
                fabric=fabric,
                observation=observation,
            )
        return changed

    def _constrain_public_side(
        self,
        states: dict[int, InterfaceState],
        address: int,
        asn: int,
        fabric: frozenset[int],
        observation: ObservedPeering,
    ) -> bool:
        state = self.state_for(states, address, asn)
        presence = self._db.facilities_of(asn)
        if not presence or not fabric:
            changed = False
            known = presence or fabric
            if self._degraded and known:
                # Degraded mode: one side of the intersection is missing
                # from the corpus.  Widen with the known side rather than
                # leaving the interface unconstrained.
                changed = self._widen(state, known)
                if changed and state.inferred_type is InferredType.UNKNOWN:
                    state.inferred_type = InferredType.PUBLIC_LOCAL
            self._refresh_status(state)
            return changed
        assert observation.ixp_id is not None
        cache_key = (asn, observation.ixp_id)
        common = self._public_cache.get(cache_key)
        if common is None:
            common = frozenset(presence & fabric)
            self._public_cache[cache_key] = common
        changed = False
        if common:
            changed = state.apply_constraint(set(common))
            state.constrained_by_ixps.add(observation.ixp_id)
            if state.inferred_type is InferredType.UNKNOWN:
                state.inferred_type = InferredType.PUBLIC_LOCAL
        else:
            verdict = self._remote.classify(
                observation.min_rtt_step_ms, observation.observations
            )
            if verdict:
                # Remote peer: its router can be at any of its facilities.
                changed = state.apply_constraint(set(presence))
                state.remote = True
                state.inferred_type = InferredType.PUBLIC_REMOTE
            # verdict False/None with no common facility: missing data,
            # no constraint to apply.
        self._refresh_status(state)
        return changed

    # ------------------------------------------------------------------

    def _apply_private(
        self, observation: ObservedPeering, states: dict[int, InterfaceState]
    ) -> bool:
        changed = self._constrain_private_side(
            states,
            address=observation.near_address,
            asn=observation.near_asn,
            other_asn=observation.far_asn,
            observation=observation,
        )
        if observation.far_address is not None and self._constrain_private_far:
            changed |= self._constrain_private_side(
                states,
                address=observation.far_address,
                asn=observation.far_asn,
                other_asn=observation.near_asn,
                observation=observation,
            )
        return changed

    def _constrain_private_side(
        self,
        states: dict[int, InterfaceState],
        address: int,
        asn: int,
        other_asn: int,
        observation: ObservedPeering,
    ) -> bool:
        state = self.state_for(states, address, asn)
        presence = self._db.facilities_of(asn)
        other_presence = self._db.facilities_of(other_asn)
        if not presence or not other_presence:
            changed = False
            if self._degraded and presence:
                # The peer's facility list is missing: fall back to the
                # near AS's own footprint (wide, but not empty).
                changed = self._widen(state, presence)
                if changed and state.inferred_type is InferredType.UNKNOWN:
                    state.inferred_type = InferredType.CROSS_CONNECT
            self._refresh_status(state)
            return changed
        cache_key = (asn, other_asn)
        reachable = self._private_cache.get(cache_key)
        if reachable is None:
            reachable = frozenset(
                facility_id
                for facility_id in presence
                if self._db.campus_of(facility_id) & other_presence
            )
            self._private_cache[cache_key] = reachable
        changed = False
        if reachable:
            changed = state.apply_constraint(set(reachable))
            if state.inferred_type is InferredType.UNKNOWN:
                state.inferred_type = InferredType.CROSS_CONNECT
        else:
            shared_ixps = self._db.ixps_of(asn) & self._db.ixps_of(other_asn)
            if shared_ixps:
                # Tethering over a common fabric: the near router sits in
                # one of its own facilities, unconstrained by the peer's.
                changed = state.apply_constraint(set(presence))
                if state.inferred_type is InferredType.UNKNOWN:
                    state.inferred_type = InferredType.TETHERING
            elif self._remote.classify(
                observation.min_rtt_step_ms, observation.observations
            ):
                # Remote private peering over leased transport.
                changed = state.apply_constraint(set(presence))
                state.remote = True
                if state.inferred_type is InferredType.UNKNOWN:
                    state.inferred_type = InferredType.TETHERING
            # otherwise: missing data.
        self._refresh_status(state)
        return changed

    # ------------------------------------------------------------------

    def _widen(self, state: InterfaceState, known: frozenset[int]) -> bool:
        """Apply the one known side as a (wide) degraded constraint."""
        changed = state.apply_constraint(set(known))
        if changed:
            state.data_health = "degraded"
            self._obs.count("cfs.degraded_widenings")
        return changed

    @staticmethod
    def _refresh_status(state: InterfaceState) -> None:
        if state.candidates is None:
            state.status = InterfaceStatus.MISSING_DATA
        elif len(state.candidates) == 1:
            state.status = InterfaceStatus.RESOLVED
        elif state.remote:
            state.status = InterfaceStatus.UNRESOLVED_REMOTE
        else:
            state.status = InterfaceStatus.UNRESOLVED_LOCAL

    def refresh_statuses(self, states: dict[int, InterfaceState]) -> None:
        """Recompute statuses after external constraint propagation."""
        for state in states.values():
            self._refresh_status(state)
