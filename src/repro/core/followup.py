"""CFS Step 4: choosing targets for follow-up traceroutes.

When an interface remains unresolved, CFS actively looks for *other*
peerings of the same router that would add constraints (Section 4.2,
Step 4):

* for an **unresolved local** interface of AS *A* with candidate set
  *C*, useful follow-up targets are ASes whose known facilities are a
  subset of *C* (otherwise intersecting adds nothing); probing starts
  from the target with the smallest facility overlap, and targets not
  colocated at the already-queried exchanges are preferred since a new
  constraint must come from a *different* fabric or a private peering;
* for an **unresolved remote** interface the candidates are all of
  *A*'s facilities, and targets with the smallest non-empty overlap are
  probed first in the hope of catching a *local* peering of the remote
  router.

The planner only ranks; issuing traceroutes is the campaign driver's
job, so the same planner serves live pipelines and replayed corpora.
"""

from __future__ import annotations

from dataclasses import dataclass

from .facility_db import FacilityDatabase
from .types import InterfaceState, InterfaceStatus

__all__ = ["FollowupPlan", "FollowupPlanner"]


@dataclass(frozen=True, slots=True)
class FollowupPlan:
    """One planned follow-up probe: capture the (near, target) peering."""

    near_address: int
    near_asn: int
    target_asn: int
    #: Smaller overlap sorts first (tighter potential constraint).
    overlap: int
    strict_subset: bool


class FollowupPlanner:
    """Ranks follow-up targets for unresolved interfaces.

    ``strategy`` selects the target ordering:

    * ``"smallest-overlap"`` (the paper's rule): strict-subset targets
      first, then ascending facility overlap, then away from
      already-queried exchanges;
    * ``"random"`` (ablation): any colocated target, in an order
      deterministic in the interface address but unrelated to overlap.
    """

    def __init__(
        self, facility_db: FacilityDatabase, strategy: str = "smallest-overlap"
    ) -> None:
        if strategy not in ("smallest-overlap", "random"):
            raise ValueError(f"unknown follow-up strategy {strategy!r}")
        self._db = facility_db
        self.strategy = strategy
        # Inverted index: facility -> ASes known to be present there.
        self._tenants: dict[int, set[int]] = {}
        for asn, facilities in facility_db.as_facilities.items():
            for facility_id in facilities:
                self._tenants.setdefault(facility_id, set()).add(asn)

    # ------------------------------------------------------------------

    def candidates_for(
        self, state: InterfaceState, exclude: set[int] | None = None
    ) -> list[FollowupPlan]:
        """Ranked follow-up targets for one unresolved interface."""
        if state.owner_asn is None or state.candidates is None:
            return []
        exclude = exclude or set()
        candidates = state.candidates
        # Only ASes with presence inside the candidate set can tighten it.
        colocated: set[int] = set()
        for facility_id in candidates:
            colocated.update(self._tenants.get(facility_id, ()))
        colocated.discard(state.owner_asn)
        colocated -= exclude

        queried_ixp_members: set[int] = set()
        for ixp_id in state.constrained_by_ixps:
            queried_ixp_members |= self._db.members_of(ixp_id)

        plans: list[FollowupPlan] = []
        for target_asn in sorted(colocated):
            target_facilities = self._db.facilities_of(target_asn)
            if not target_facilities:
                continue
            overlap = len(target_facilities & candidates)
            if overlap == 0:
                continue
            strict = target_facilities <= candidates
            plans.append(
                FollowupPlan(
                    near_address=state.address,
                    near_asn=state.owner_asn,
                    target_asn=target_asn,
                    overlap=overlap,
                    strict_subset=strict,
                )
            )
        if self.strategy == "random":
            # Ablation ordering: deterministic but overlap-blind.
            plans.sort(
                key=lambda plan: hash((plan.near_address, plan.target_asn)) & 0xFFFF
            )
            return plans
        # Strict subsets first (guaranteed not to widen the candidates),
        # then smallest overlap, then targets away from already-queried
        # exchanges, then ASN for determinism.
        plans.sort(
            key=lambda plan: (
                not plan.strict_subset,
                plan.overlap,
                plan.target_asn in queried_ixp_members,
                plan.target_asn,
            )
        )
        return plans

    def plan(
        self,
        states: dict[int, InterfaceState],
        already_probed: set[tuple[int, int]],
        budget: int,
    ) -> list[FollowupPlan]:
        """Pick up to ``budget`` follow-up probes across all unresolved
        interfaces, one per interface per round, most-constrained first.

        ``already_probed`` holds (near_asn, target_asn) pairs that were
        already measured; re-probing them cannot add constraints.
        """
        unresolved = [
            state
            for state in states.values()
            if state.status
            in (InterfaceStatus.UNRESOLVED_LOCAL, InterfaceStatus.UNRESOLVED_REMOTE)
        ]
        # Interfaces closest to convergence first: a 2-candidate
        # interface needs exactly one good constraint.
        unresolved.sort(
            key=lambda state: (
                len(state.candidates) if state.candidates else 1 << 30,
                state.address,
            )
        )
        plans: list[FollowupPlan] = []
        planned_pairs: set[tuple[int, int]] = set()
        for state in unresolved:
            if len(plans) >= budget:
                break
            for plan in self.candidates_for(state):
                pair = (plan.near_asn, plan.target_asn)
                if pair in already_probed or pair in planned_pairs:
                    continue
                plans.append(plan)
                planned_pairs.add(pair)
                break
        return plans
