"""Assembly of the AS/IXP-to-facility map (Section 3.1).

This is the knowledge base CFS searches over, built *only* from public
data sources:

* **AS -> facilities** — PeeringDB ``netfac`` bootstraps the map; NOC
  website listings fill the gaps Figure 2 quantifies;
* **IXP -> facilities** — PeeringDB ``ixfac`` plus IXP website facility
  lists (which recovered associations for 20 exchanges in the paper);
* **IXP peering LANs** — only exchanges passing the Section 3.1.2
  activeness filter are admitted; their prefixes feed the Step-1
  public-peering test;
* **IXP membership** — confirmed members (two or more sources), used by
  the tethering inference and follow-up targeting;
* **facility directory** — building-level facts (operator, metro,
  campus links) from the facility operators' own public directories.

City strings are canonicalised through the 5-mile metro grouping rule
before facilities are compared across sources.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..datasets.ixp_sources import IxpDataSources
from ..datasets.noc import NocWebsites
from ..datasets.normalize import LocationNormalizer
from ..datasets.peeringdb import PeeringDBSnapshot
from ..topology.addressing import LongestPrefixMatcher
from ..topology.facility import Facility, FacilityOperator

__all__ = ["FacilityDatabase"]


@dataclass(slots=True)
class FacilityDatabase:
    """The assembled search space for Constrained Facility Search."""

    #: AS presence: asn -> facility ids.
    as_facilities: dict[int, frozenset[int]]
    #: IXP partnership: ixp id -> facility ids.
    ixp_facilities: dict[int, frozenset[int]]
    #: Confirmed membership: ixp id -> member ASNs.
    ixp_members: dict[int, frozenset[int]]
    #: Exchanges passing the activeness filter.
    active_ixps: frozenset[int]
    #: Canonical metro per facility.
    facility_metro: dict[int, str]
    #: Cross-connect reach: facility -> facilities on the same campus
    #: (always contains the facility itself).
    campus: dict[int, frozenset[int]]
    #: Peering-LAN lookup for Step 1.
    _ixp_lan_index: LongestPrefixMatcher[int] = field(
        default_factory=LongestPrefixMatcher
    )

    # ------------------------------------------------------------------

    @classmethod
    def assemble(
        cls,
        peeringdb: PeeringDBSnapshot,
        noc: NocWebsites,
        ixp_sources: IxpDataSources,
        normalizer: LocationNormalizer,
        facility_directory: dict[int, Facility],
        operator_directory: dict[int, FacilityOperator],
    ) -> "FacilityDatabase":
        """Build the database from the public sources.

        ``facility_directory``/``operator_directory`` carry only
        building-level facts (names, operators, campuses, coordinates) —
        the public marketing material of colocation companies — never
        tenant lists.
        """
        # --- facility metadata, city-normalised -----------------------
        facility_metro: dict[int, str] = {}
        for row in peeringdb.facilities:
            metro = normalizer.normalize_location(row.city, row.location)
            if metro is None:
                # Fall back to the operator directory's location field.
                directory_row = facility_directory.get(row.facility_id)
                metro = directory_row.metro if directory_row is not None else row.city
            facility_metro[row.facility_id] = metro
        for facility_id, facility in facility_directory.items():
            facility_metro.setdefault(facility_id, facility.metro)

        # --- campus reachability from the operator directory ----------
        campus: dict[int, frozenset[int]] = {}
        for facility_id, facility in facility_directory.items():
            operator = operator_directory.get(facility.operator_id)
            reachable = {facility_id}
            if operator is not None and operator.connects_campus_in(facility.metro):
                for other_id in operator.facility_ids:
                    other = facility_directory.get(other_id)
                    if other is not None and other.metro == facility.metro:
                        reachable.add(other_id)
            campus[facility_id] = frozenset(reachable)
        for facility_id in facility_metro:
            campus.setdefault(facility_id, frozenset((facility_id,)))

        # --- AS -> facilities: PeeringDB then NOC pages ---------------
        as_facilities: dict[int, set[int]] = {}
        for asn, facilities in peeringdb.as_facility_map().items():
            as_facilities.setdefault(asn, set()).update(facilities)
        for asn in noc.asns_with_pages():
            page = noc.page_for(asn)
            if page is not None:
                as_facilities.setdefault(asn, set()).update(page.facility_ids())
        # Detailed exchange websites (the AMS-IX class) publish each
        # member's connection facility; the paper folded these complete
        # lists into its map (Section 6 credits them for the highest
        # validation accuracy).
        for website in ixp_sources.detailed_websites():
            for member in website.member_details:
                if member.facility_id is not None:
                    as_facilities.setdefault(member.asn, set()).add(
                        member.facility_id
                    )

        # --- activeness filter and IXP -> facilities ------------------
        active_ixps = frozenset(ixp_sources.active_ixp_ids())
        ixp_facilities: dict[int, set[int]] = {}
        for ixp_id, facilities in peeringdb.ixp_facility_map().items():
            if ixp_id in active_ixps:
                ixp_facilities.setdefault(ixp_id, set()).update(facilities)
        for ixp_id, website in ixp_sources.websites.items():
            if ixp_id in active_ixps:
                ixp_facilities.setdefault(ixp_id, set()).update(
                    website.facility_ids
                )

        # --- membership ------------------------------------------------
        ixp_members: dict[int, frozenset[int]] = {}
        for ixp_id in active_ixps:
            ixp_members[ixp_id] = frozenset(
                ixp_sources.confirmed_members(ixp_id)
            )

        database = cls(
            as_facilities={
                asn: frozenset(facilities)
                for asn, facilities in as_facilities.items()
            },
            ixp_facilities={
                ixp_id: frozenset(facilities)
                for ixp_id, facilities in ixp_facilities.items()
            },
            ixp_members=ixp_members,
            active_ixps=active_ixps,
            facility_metro=facility_metro,
            campus=campus,
        )
        for ixp_id, prefixes in ixp_sources.pdb_prefixes.items():
            if ixp_id in active_ixps:
                for prefix in prefixes:
                    database._ixp_lan_index.insert(prefix, ixp_id)
        for ixp_id, website in ixp_sources.websites.items():
            if ixp_id in active_ixps:
                for prefix in website.prefixes:
                    database._ixp_lan_index.insert(prefix, ixp_id)
        return database

    @classmethod
    def from_ground_truth(cls, topology) -> "FacilityDatabase":
        """A *complete* database straight from the simulator's truth.

        Used by soundness tests and ablations: with perfect facility
        data every CFS constraint set contains the true facility, so a
        resolved interface can only resolve to the truth.
        """
        as_facilities = {
            asn: frozenset(record.facility_ids)
            for asn, record in topology.ases.items()
        }
        ixp_facilities = {}
        ixp_members = {}
        active = set()
        database = cls(
            as_facilities=as_facilities,
            ixp_facilities=ixp_facilities,
            ixp_members=ixp_members,
            active_ixps=frozenset(),
            facility_metro={
                fid: facility.metro
                for fid, facility in topology.facilities.items()
            },
            campus={
                fid: frozenset(topology.campus_facilities(fid))
                for fid in topology.facilities
            },
        )
        for ixp in topology.ixps.values():
            if not ixp.active:
                continue
            active.add(ixp.ixp_id)
            ixp_facilities[ixp.ixp_id] = frozenset(ixp.facility_ids)
            ixp_members[ixp.ixp_id] = frozenset(ixp.member_asns)
            for lan in ixp.peering_lans:
                database._ixp_lan_index.insert(lan, ixp.ixp_id)
        database.active_ixps = frozenset(active)
        return database

    # ------------------------------------------------------------------
    # Queries used by the CFS steps
    # ------------------------------------------------------------------

    def facilities_of(self, asn: int) -> frozenset[int]:
        """Known facility presence of an AS (may be empty)."""
        return self.as_facilities.get(asn, frozenset())

    def facilities_of_ixp(self, ixp_id: int) -> frozenset[int]:
        """Known partner facilities of an exchange (may be empty)."""
        return self.ixp_facilities.get(ixp_id, frozenset())

    def members_of(self, ixp_id: int) -> frozenset[int]:
        """Confirmed members of an exchange."""
        return self.ixp_members.get(ixp_id, frozenset())

    def ixps_of(self, asn: int) -> frozenset[int]:
        """Exchanges where an AS is a confirmed member."""
        return frozenset(
            ixp_id
            for ixp_id, members in self.ixp_members.items()
            if asn in members
        )

    def ixp_of_address(self, address: int) -> int | None:
        """Exchange owning the peering LAN covering ``address``."""
        return self._ixp_lan_index.lookup(address)

    def campus_of(self, facility_id: int) -> frozenset[int]:
        """Facilities cross-connectable from ``facility_id``."""
        return self.campus.get(facility_id, frozenset((facility_id,)))

    def metro_of(self, facility_id: int) -> str | None:
        """Canonical metro of a facility."""
        return self.facility_metro.get(facility_id)

    def metros_of(self, facilities: set[int] | frozenset[int]) -> set[str]:
        """Distinct metros spanned by a facility set."""
        metros = set()
        for facility_id in facilities:
            metro = self.metro_of(facility_id)
            if metro is not None:
                metros.add(metro)
        return metros

    # ------------------------------------------------------------------
    # Degradation (the Figure 8 robustness sweep)
    # ------------------------------------------------------------------

    def without_facilities(self, removed: set[int]) -> "FacilityDatabase":
        """A copy of the database with ``removed`` facilities erased from
        every association — the Figure 8 experiment's knob."""
        database = FacilityDatabase(
            as_facilities={
                asn: frozenset(f for f in facilities if f not in removed)
                for asn, facilities in self.as_facilities.items()
            },
            ixp_facilities={
                ixp_id: frozenset(f for f in facilities if f not in removed)
                for ixp_id, facilities in self.ixp_facilities.items()
            },
            ixp_members=dict(self.ixp_members),
            active_ixps=self.active_ixps,
            facility_metro={
                fid: metro
                for fid, metro in self.facility_metro.items()
                if fid not in removed
            },
            campus={
                fid: frozenset(f for f in group if f not in removed)
                for fid, group in self.campus.items()
                if fid not in removed
            },
        )
        database._ixp_lan_index = self._ixp_lan_index
        return database

    def all_known_facilities(self) -> frozenset[int]:
        """Every facility referenced by any association."""
        known: set[int] = set()
        for facilities in self.as_facilities.values():
            known.update(facilities)
        for facilities in self.ixp_facilities.values():
            known.update(facilities)
        return frozenset(known)
