"""End-to-end pipeline assembly (the paper's Figure 4).

``build_environment`` wires the full measurement stack over one
generated Internet: vantage-point platforms, hitlists, the public
datasets, the assembled facility database, the IP-to-ASN service and
the alias-resolution prober.  ``run_pipeline`` then executes the study
of Section 5: an initial traceroute campaign toward the target networks
(five content providers and five transit providers by default), followed
by the CFS loop with targeted follow-ups.

Experiments that need several CFS runs over one environment (Figure 7's
platform comparison, Figure 8's dataset degradation, the ablations)
reuse the environment and call :meth:`Environment.run_cfs` with
different knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..alias.midar import MidarConfig, MidarResolver
from ..datasets.cymru import CymruService
from ..datasets.dnsnames import DnsZone
from ..datasets.geolocation import GeoDatabase
from ..datasets.ixp_sources import IxpDataSources, IxpSourcesConfig
from ..datasets.noc import NocConfig, NocWebsites
from ..datasets.normalize import LocationNormalizer
from ..datasets.peeringdb import PeeringDBConfig, PeeringDBSnapshot
from ..exec import ExecFaultSpec, SupervisorConfig
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..measurement.campaign import CampaignConfig, CampaignDriver, Hitlist, TraceCorpus
from ..measurement.ipid import IpidResponder
from ..measurement.platforms import PlatformSet, build_platforms
from ..measurement.rtt import RttModel
from ..measurement.traceroute import TracerouteEngine
from ..obs import Instrumentation
from ..topology.asn import ASRole
from ..topology.builder import TopologyConfig, build_topology
from ..sanitize import armed as sanitizer_armed
from ..topology.topology import Topology
from .cfs import CfsConfig, ConstrainedFacilitySearch
from .facility_db import FacilityDatabase
from .remote import RemotePeeringDetector
from .types import CfsResult

__all__ = ["PipelineConfig", "Environment", "PipelineResult", "build_environment", "run_pipeline", "select_targets"]


@dataclass(slots=True)
class PipelineConfig:
    """Everything needed to reproduce the Section-5 study."""

    topology: TopologyConfig = field(default_factory=TopologyConfig)
    seed: int = 0
    #: Content-provider targets (the Google/Akamai/... analogues).
    n_content_targets: int = 5
    #: Transit-provider targets (the NTT/Level3/... analogues).
    n_transit_targets: int = 5
    campaign: CampaignConfig = field(default_factory=CampaignConfig)
    cfs: CfsConfig = field(default_factory=CfsConfig)
    peeringdb: PeeringDBConfig = field(default_factory=PeeringDBConfig)
    ixp_sources: IxpSourcesConfig = field(default_factory=IxpSourcesConfig)
    noc: NocConfig = field(default_factory=NocConfig)
    #: Restrict both campaign and follow-ups to these platform names
    #: (``None`` = all four platforms).
    platform_filter: tuple[str, ...] | None = None
    #: Fault-injection plan; ``None`` builds no injector at all.  A zero
    #: plan installs the injector but perturbs nothing (byte-identical
    #: output to ``None`` — the chaos smoke test pins this down).
    faults: FaultPlan | None = None
    #: Process-pool width for the initial campaign and Step-2 trace
    #: extraction (1 = serial).  Output is byte-identical at any width;
    #: see ``repro/exec`` and DESIGN.md §5f for the determinism argument.
    workers: int = 1
    #: Supervisor progress deadline per shard, in seconds (``None``
    #: waits forever between completions; dead workers are still
    #: detected).  See DESIGN.md §5g.
    shard_timeout_s: float | None = None
    #: Retries per shard on a rebuilt pool before serial quarantine.
    max_shard_retries: int = 2
    #: Directory for crash-safe stage checkpoints (``None`` = no
    #: checkpointing).
    checkpoint_dir: str | None = None
    #: Load intact stages from ``checkpoint_dir`` instead of
    #: recomputing them (requires ``checkpoint_dir``).
    resume: bool = False
    #: Run with the reprosan runtime sanitizer armed (write tripwires,
    #: RNG provenance assertions); a transient knob — it never changes
    #: output bytes, so it is excluded from the config fingerprint.
    sanitize: bool = False

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(
                f"workers must be at least 1, got {self.workers}"
            )
        if self.shard_timeout_s is not None and self.shard_timeout_s <= 0:
            raise ValueError(
                f"shard_timeout_s must be positive, got {self.shard_timeout_s}"
            )
        if self.max_shard_retries < 0:
            raise ValueError(
                f"max_shard_retries must not be negative, "
                f"got {self.max_shard_retries}"
            )
        if self.resume and self.checkpoint_dir is None:
            raise ValueError("resume=True requires checkpoint_dir")

    @classmethod
    def small(cls, seed: int = 0, workers: int = 1) -> "PipelineConfig":
        """Test-sized pipeline: small Internet, fewer probes."""
        return cls(
            topology=TopologyConfig.small(seed=seed + 1),
            seed=seed,
            campaign=CampaignConfig(
                atlas_sample_per_target=12,
                lg_sample_per_target=5,
                archive_targets_per_node=8,
                followup_traces=3,
            ),
            cfs=CfsConfig(max_iterations=60, followup_budget=10),
            workers=workers,
        )

    @classmethod
    def default(cls, seed: int = 0, workers: int = 1) -> "PipelineConfig":
        """Benchmark-sized pipeline (the figures are produced at this
        scale)."""
        return cls(
            topology=TopologyConfig(seed=seed + 1), seed=seed, workers=workers
        )

    @classmethod
    def large(cls, seed: int = 0, workers: int = 1) -> "PipelineConfig":
        """Stress-sized pipeline over the large generated Internet."""
        return cls(
            topology=TopologyConfig.large(seed=seed + 1),
            seed=seed,
            workers=workers,
        )

    @classmethod
    def xlarge(cls, seed: int = 0, workers: int = 1) -> "PipelineConfig":
        """Scale-out pipeline: ≥10⁶ planned traces.

        Sixty study targets over the double-size Internet, with sample
        widths cranked until the initial campaign plans more than a
        million traceroutes (1,064,240 at seed 0).  This is the scale
        at which the workers-vs-serial speedup curve is meaningful —
        per-fork overhead is fully amortised by the columnar batches.
        """
        return cls(
            topology=TopologyConfig.xlarge(seed=seed + 1),
            seed=seed,
            n_content_targets=20,
            n_transit_targets=40,
            campaign=CampaignConfig(
                atlas_sample_per_target=600,
                lg_sample_per_target=200,
                archive_targets_per_node=40,
            ),
            workers=workers,
        )

    #: Named scales accepted by :meth:`for_scale` (and the CLI).
    SCALES = ("small", "default", "large", "xlarge")

    @classmethod
    def for_scale(
        cls, scale: str, seed: int = 0, workers: int = 1
    ) -> "PipelineConfig":
        """The configuration for one named scale.

        Every scale routes through its constructor classmethod, so the
        topology/campaign/CFS knobs are consistent by construction —
        nothing mutates a config after the fact.
        """
        factories = {
            "small": cls.small,
            "default": cls.default,
            "large": cls.large,
            "xlarge": cls.xlarge,
        }
        try:
            factory = factories[scale]
        except KeyError:
            raise ValueError(
                f"unknown scale {scale!r}; expected one of {cls.SCALES}"
            ) from None
        return factory(seed=seed, workers=workers)


def select_targets(
    topology: Topology, n_content: int, n_transit: int
) -> list[int]:
    """The study targets: largest CDNs plus largest transit backbones,
    mirroring the paper's choice of networks carrying most traffic."""
    content = sorted(
        (a for a in topology.ases.values() if a.role is ASRole.CONTENT),
        key=lambda a: (-len(a.facility_ids), a.asn),
    )
    transit = sorted(
        (
            a
            for a in topology.ases.values()
            if a.role in (ASRole.TIER1, ASRole.TRANSIT)
        ),
        key=lambda a: (a.role is not ASRole.TIER1, -len(a.facility_ids), a.asn),
    )
    chosen = content[:n_content] + transit[:n_transit]
    return [a.asn for a in chosen]


@dataclass(slots=True)
class Environment:
    """One fully wired measurement stack over one generated Internet."""

    config: PipelineConfig
    topology: Topology
    rtt_model: RttModel
    engine: TracerouteEngine
    platforms: PlatformSet
    hitlist: Hitlist
    peeringdb: PeeringDBSnapshot
    noc: NocWebsites
    ixp_sources: IxpDataSources
    normalizer: LocationNormalizer
    facility_db: FacilityDatabase
    cymru: CymruService
    ipid_responder: IpidResponder
    dns: DnsZone
    geodb: GeoDatabase
    target_asns: list[int]
    #: The chaos layer wired through engine/platforms/MIDAR, or ``None``
    #: when the config declared no fault plan.
    fault_injector: FaultInjector | None = None

    # ------------------------------------------------------------------

    def supervision(self) -> SupervisorConfig:
        """The executor supervision policy this config asks for."""
        return SupervisorConfig(
            shard_timeout_s=self.config.shard_timeout_s,
            max_retries=self.config.max_shard_retries,
        )

    def exec_fault_spec(self) -> ExecFaultSpec | None:
        """Seeded executor-fault intensities from the fault plan.

        ``None`` when no injector is installed or neither worker fault
        class is enabled.  Injected hangs sleep 1.5× the shard deadline
        (so they reliably trip it); without a deadline they degrade to a
        harmless 50 ms pause rather than stalling the run.
        """
        injector = self.fault_injector
        if injector is None or not injector.plan.perturbs_workers:
            return None
        timeout = self.config.shard_timeout_s
        return ExecFaultSpec(
            crash=injector.plan.worker_crash,
            hang=injector.plan.worker_hang,
            hang_s=1.5 * timeout if timeout is not None else 0.05,
            seed=injector.seed,
        )

    def new_driver(
        self,
        seed_offset: int = 0,
        instrumentation: Instrumentation | None = None,
    ) -> CampaignDriver:
        """A fresh campaign driver (deterministic per offset)."""
        return CampaignDriver(
            self.platforms,
            self.hitlist,
            config=self.config.campaign,
            seed=self.config.seed + 1000 + seed_offset,
            instrumentation=instrumentation,
            workers=self.config.workers,
            supervision=self.supervision(),
            exec_faults=self.exec_fault_spec(),
        )

    def new_midar(
        self,
        seed_offset: int = 0,
        instrumentation: Instrumentation | None = None,
    ) -> MidarResolver:
        """A fresh MIDAR front-end over the shared IP-ID responder."""
        return MidarResolver(
            self.ipid_responder,
            config=MidarConfig(),
            seed=self.config.seed + 2000 + seed_offset,
            instrumentation=instrumentation,
            fault_injector=self.fault_injector,
        )

    def platform_list(self, names: tuple[str, ...] | None):
        """Platform objects matching ``names`` (None = all)."""
        all_platforms = self.platforms.all_platforms()
        if names is None:
            return all_platforms
        return [p for p in all_platforms if p.name in names]

    def remote_detector(self) -> RemotePeeringDetector:
        """The delay-based remote-peering test tuned to the RTT model."""
        return RemotePeeringDetector(
            metro_local_bound_ms=self.rtt_model.metro_local_bound_ms()
        )

    # ------------------------------------------------------------------

    def run_campaign(
        self,
        platform_filter: tuple[str, ...] | None = None,
        seed_offset: int = 0,
        instrumentation: Instrumentation | None = None,
    ) -> TraceCorpus:
        """The initial Section-5 campaign, optionally platform-filtered."""
        driver = self.new_driver(seed_offset, instrumentation=instrumentation)
        corpus = driver.initial_campaign(self.target_asns)
        names = platform_filter
        if names is None:
            return corpus
        filtered = TraceCorpus()
        filtered.extend([t for t in corpus.traces if t.platform in names])
        return filtered

    def run_cfs(
        self,
        corpus: TraceCorpus,
        cfs_config: CfsConfig | None = None,
        facility_db: FacilityDatabase | None = None,
        platform_filter: tuple[str, ...] | None = None,
        with_followups: bool = True,
        seed_offset: int = 0,
        with_alias_resolution: bool = True,
        instrumentation: Instrumentation | None = None,
    ) -> CfsResult:
        """One CFS run over ``corpus`` with optional knob overrides.

        ``instrumentation`` is shared by the loop, the classifier, the
        MIDAR front-end and the follow-up driver, so one
        ``CfsResult.metrics`` snapshot covers the whole run.
        """
        database = facility_db or self.facility_db
        obs = instrumentation or Instrumentation()
        driver = (
            self.new_driver(seed_offset + 1, instrumentation=obs)
            if with_followups
            else None
        )
        search = ConstrainedFacilitySearch(
            facility_db=database,
            ip_to_asn=self.cymru,
            alias_resolver=(
                self.new_midar(seed_offset, instrumentation=obs)
                if with_alias_resolution
                else None
            ),
            driver=driver,
            remote_detector=self.remote_detector(),
            config=cfs_config or self.config.cfs,
            instrumentation=obs,
            workers=self.config.workers,
            supervision=self.supervision(),
            exec_faults=self.exec_fault_spec(),
        )
        platforms = self.platform_list(platform_filter)
        return search.run(corpus, platforms=platforms)


@dataclass(slots=True)
class PipelineResult:
    """Environment, corpus and the CFS outcome of one full run."""

    environment: Environment
    corpus: TraceCorpus
    cfs_result: CfsResult

    @property
    def topology(self) -> Topology:
        """The ground-truth topology behind this run."""
        return self.environment.topology


def build_environment(config: PipelineConfig | None = None) -> Environment:
    """Wire the full Figure-4 stack for one generated Internet."""
    config = config or PipelineConfig()
    seed = config.seed
    topology = build_topology(config.topology)
    injector = (
        FaultInjector(config.faults, seed=seed + 21)
        if config.faults is not None
        else None
    )
    rtt_model = RttModel(seed=seed + 11)
    engine = TracerouteEngine(
        topology, rtt_model=rtt_model, seed=seed + 12, fault_injector=injector
    )
    platforms = build_platforms(topology, engine, seed=seed + 13)
    if injector is not None:
        # Live platforms only: archives are replayed corpora, immune to
        # vantage-point outages (engine-level hop faults still apply).
        platforms.atlas.fault_injector = injector
        platforms.looking_glasses.fault_injector = injector
    hitlist = Hitlist(topology)
    peeringdb = PeeringDBSnapshot.build(topology, config.peeringdb, seed=seed + 14)
    if injector is not None:
        peeringdb = injector.corrupt_peeringdb(peeringdb)
    noc = NocWebsites.build(topology, config.noc, seed=seed + 15)
    ixp_sources = IxpDataSources.build(
        topology,
        peeringdb.ixp_prefixes(),
        {ixp_id: peeringdb.members_of_ixp(ixp_id) for ixp_id in topology.ixps},
        config.ixp_sources,
        seed=seed + 16,
    )
    normalizer = LocationNormalizer(topology.metros)
    facility_db = FacilityDatabase.assemble(
        peeringdb,
        noc,
        ixp_sources,
        normalizer,
        topology.facilities,
        topology.operators,
    )
    cymru = CymruService(topology, seed=seed + 17)
    responder = IpidResponder(topology, seed=seed + 18)
    dns = DnsZone(topology, seed=seed + 19)
    geodb = GeoDatabase(topology, seed=seed + 20)
    targets = select_targets(
        topology, config.n_content_targets, config.n_transit_targets
    )
    return Environment(
        config=config,
        topology=topology,
        rtt_model=rtt_model,
        engine=engine,
        platforms=platforms,
        hitlist=hitlist,
        peeringdb=peeringdb,
        noc=noc,
        ixp_sources=ixp_sources,
        normalizer=normalizer,
        facility_db=facility_db,
        cymru=cymru,
        ipid_responder=responder,
        dns=dns,
        geodb=geodb,
        target_asns=targets,
        fault_injector=injector,
    )


def _open_store(
    config: PipelineConfig,
    environment: Environment,
    instrumentation: Instrumentation | None,
    progress,
):
    """The run's checkpoint store, with the topology stage verified.

    Returns ``None`` when the config asks for no checkpointing.  A
    resumed store whose topology stage disagrees with the rebuilt
    topology is invalidated wholesale — every later stage derives from
    the topology, so none can be trusted.
    """
    from ..checkpoint import (
        CheckpointStore,
        config_fingerprint,
        encode_topology_stage,
    )

    if config.checkpoint_dir is None:
        return None
    store = CheckpointStore(
        config.checkpoint_dir,
        config_fingerprint(config),
        instrumentation=instrumentation,
        warn=progress,
    )
    topology_stage = encode_topology_stage(environment.topology)
    if config.resume:
        checkpointed = store.load_stage("topology")
        if checkpointed is not None and checkpointed != topology_stage:
            store.invalidate("checkpointed topology does not match config")
    store.write_stage("topology", topology_stage)
    return store


def run_pipeline(
    config: PipelineConfig | None = None,
    instrumentation: Instrumentation | None = None,
    progress=None,
) -> PipelineResult:
    """Build an environment, run the campaign, run CFS.

    With ``config.checkpoint_dir`` set, each completed stage (topology
    digest, campaign corpus + measurement accounting, alias sets, CFS
    result) is durably checkpointed as it finishes; with
    ``config.resume`` also set, intact stages are loaded instead of
    recomputed — and because every stage is deterministic in the
    config, a resumed run's output is byte-identical to an
    uninterrupted one whether a stage was loaded or recomputed.
    Corrupt or missing stages degrade to recompute with a warning.

    ``progress(message)`` receives human-readable stage notices
    (``None`` silences them).

    One caveat on a *fully* resumed run (CFS stage loaded from disk):
    :attr:`PipelineResult.corpus` holds the initial campaign only — the
    follow-up traces CFS appended live inside the loaded result, not
    the corpus.  The exported map, the thing the byte-identity
    guarantee covers, is unaffected.

    With ``config.sanitize`` set, the stages run with the reprosan
    runtime sanitizer armed (see :mod:`repro.sanitize`): RNG substreams
    carry provenance tags asserted at draw chokepoints, and write
    tripwires guard published state.  The sanitizer never changes
    output bytes; a violation raises :class:`SanitizerViolation` and is
    recorded as a ``sanitizer.violation`` event on ``instrumentation``.
    """
    environment = build_environment(config)
    if not environment.config.sanitize:
        return _pipeline_stages(environment, instrumentation, progress)
    with sanitizer_armed(instrumentation):
        return _pipeline_stages(environment, instrumentation, progress)


def _pipeline_stages(
    environment: "Environment",
    instrumentation: Instrumentation | None,
    progress,
) -> "PipelineResult":
    """The checkpointed stage sequence behind :func:`run_pipeline`."""
    from ..checkpoint import (
        decode_alias_stage,
        decode_campaign_stage,
        decode_cfs_stage,
        encode_alias_stage,
        encode_campaign_stage,
        encode_cfs_stage,
    )

    def notify(message: str) -> None:
        if progress is not None:
            progress(message)

    effective = environment.config
    if instrumentation is not None and environment.fault_injector is not None:
        # Fault counters land on the run's metrics snapshot.
        environment.fault_injector.instrumentation = instrumentation
    store = _open_store(effective, environment, instrumentation, progress)

    corpus = None
    if store is not None and effective.resume:
        payload = store.load_stage("campaign")
        if payload is not None:
            try:
                corpus = decode_campaign_stage(
                    payload, environment.engine, environment.platforms
                )
            except (KeyError, TypeError, ValueError) as error:
                notify(f"checkpoint: campaign stage undecodable ({error}); recomputing")
                corpus = None
            else:
                notify(f"resume: loaded campaign stage ({len(corpus)} traces)")
    if corpus is None:
        corpus = environment.run_campaign(
            effective.platform_filter, instrumentation=instrumentation
        )
        if store is not None:
            store.write_stage(
                "campaign",
                encode_campaign_stage(
                    corpus, environment.engine, environment.platforms
                ),
            )
            notify(f"checkpoint: campaign stage written ({len(corpus)} traces)")

    result = None
    if store is not None and effective.resume:
        payload = store.load_stage("cfs")
        if payload is not None:
            alias_sets = None
            alias_payload = store.load_stage("alias")
            if alias_payload is not None:
                try:
                    alias_sets = decode_alias_stage(alias_payload)
                except (KeyError, TypeError, ValueError) as error:
                    notify(f"checkpoint: alias stage undecodable ({error})")
            try:
                result = decode_cfs_stage(payload, alias_sets=alias_sets)
            except (KeyError, TypeError, ValueError) as error:
                notify(f"checkpoint: cfs stage undecodable ({error}); recomputing")
                result = None
            else:
                notify(
                    f"resume: loaded cfs stage "
                    f"({len(result.interfaces)} interfaces)"
                )
    if result is None:
        result = environment.run_cfs(
            corpus,
            platform_filter=effective.platform_filter,
            instrumentation=instrumentation,
        )
        if store is not None:
            store.write_stage("alias", encode_alias_stage(result.alias_sets))
            store.write_stage("cfs", encode_cfs_stage(result))
            notify(
                f"checkpoint: cfs stage written "
                f"({len(result.interfaces)} interfaces)"
            )
    return PipelineResult(
        environment=environment, corpus=corpus, cfs_result=result
    )
