"""The switch proximity heuristic (Section 4.4).

IXP members attached to the same access switch — or to access switches
behind the same backhaul switch — exchange traffic locally, never
touching the core.  So when the near end of a public peering is pinned
to a facility but the far end has several candidate facilities of the
same exchange, the far router is most likely in the candidate facility
*proximate* to the near one.

Detailed switch maps are rarely public, so the paper learns proximity
*probabilistically*: every public crossing whose far end is already
pinned (reverse traceroutes, single-candidate members) votes for a
(near facility -> far facility) association per exchange; unresolved
far ends are then assigned the top-ranked candidate.  Ties (facilities
equidistant in the fabric, e.g. behind one backhaul) are undecidable
and yield no inference — the AS-D case of the paper's Figure 6.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

__all__ = ["SwitchProximityModel"]


@dataclass(slots=True)
class SwitchProximityModel:
    """Probabilistic facility-proximity ranking per exchange."""

    #: (ixp_id, near_facility) -> Counter of far facilities observed.
    _votes: dict[tuple[int, int], Counter] = field(default_factory=dict)
    observations: int = 0

    def learn(self, ixp_id: int, near_facility: int, far_facility: int) -> None:
        """Record one resolved near/far facility pair at an exchange."""
        key = (ixp_id, near_facility)
        counter = self._votes.get(key)
        if counter is None:
            counter = Counter()
            self._votes[key] = counter
        counter[far_facility] += 1
        self.observations += 1

    def rank(self, ixp_id: int, near_facility: int) -> list[tuple[int, int]]:
        """(far facility, votes) ranked by descending proximity."""
        counter = self._votes.get((ixp_id, near_facility))
        if not counter:
            return []
        return sorted(counter.items(), key=lambda item: (-item[1], item[0]))

    def infer(
        self,
        ixp_id: int,
        near_facility: int,
        candidates: frozenset[int] | set[int],
    ) -> int | None:
        """Most proximate candidate facility, or ``None`` on ties/no data.

        Only candidates in ``candidates`` are eligible (the far member
        must actually be present there per the facility map).
        """
        if len(candidates) == 1:
            return next(iter(candidates))
        ranked = [
            (facility, votes)
            for facility, votes in self.rank(ixp_id, near_facility)
            if facility in candidates
        ]
        if not ranked:
            return None
        if len(ranked) > 1 and ranked[0][1] == ranked[1][1]:
            return None  # equal proximity: undecidable (Figure 6, AS D)
        return ranked[0][0]
