"""Section 4.4 calibration: the switch proximity heuristic vs AMS-IX.

The paper validated the heuristic against AMS-IX's published member
interface/facility data: an extra campaign from 50 members connected at
a single AMS-IX facility toward 50 members connected at two facilities
found the exact facility in 77% of cases; failures landed on a facility
behind the same backhaul switch, and members equidistant in the fabric
are undecidable by design.

The reproduction uses the largest detailed exchange website as ground
truth and scores the heuristic over every public peering whose far
member has several candidate facilities at that exchange.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pipeline import Environment
from ..core.types import CfsResult, PeeringKind
from .formatting import format_table

__all__ = ["ProximityValidation", "run_proximity_validation"]


@dataclass(slots=True)
class ProximityValidation:
    """Outcome counts of the heuristic at one detailed exchange."""

    ixp_id: int | None
    exact: int = 0
    wrong: int = 0
    undecided: int = 0

    @property
    def attempted(self) -> int:
        """Cases where the heuristic committed to a facility."""
        return self.exact + self.wrong

    @property
    def accuracy(self) -> float:
        """Exact-facility rate over the decided cases."""
        return self.exact / self.attempted if self.attempted else 0.0

    @property
    def total_cases(self) -> int:
        """Decided plus undecidable cases."""
        return self.exact + self.wrong + self.undecided

    def format(self) -> str:
        """Rendered outcome table."""
        return format_table(
            ["outcome", "count"],
            [
                ["exact facility", self.exact],
                ["wrong facility", self.wrong],
                ["no inference (tie)", self.undecided],
            ],
            title=(
                "Switch proximity heuristic vs detailed exchange data: "
                f"accuracy {self.accuracy:.2f} over {self.attempted} decided cases"
            ),
        )


def run_proximity_validation(
    env: Environment, result: CfsResult
) -> ProximityValidation:
    """Score far-end facility inferences against detailed member data."""
    detailed = env.ixp_sources.detailed_websites()
    if not detailed:
        return ProximityValidation(ixp_id=None)
    truth: dict[tuple[int, int], int] = {}
    detailed_ids: set[int] = set()
    for website in detailed:
        detailed_ids.add(website.ixp_id)
        for member in website.member_details:
            if member.facility_id is not None:
                truth[(website.ixp_id, member.address)] = member.facility_id
    validation = ProximityValidation(ixp_id=None)
    seen: set[tuple[int, int]] = set()
    for link in result.links:
        if link.kind is not PeeringKind.PUBLIC or link.ixp_id not in detailed_ids:
            continue
        if link.ixp_address is None:
            continue
        key = (link.ixp_id, link.ixp_address)
        if key in seen:
            continue
        true_facility = truth.get(key)
        if true_facility is None:
            continue
        # Only the ambiguous cases exercise the heuristic: members whose
        # known presence intersects the exchange in several facilities —
        # the analogue of the paper's 50 two-facility AMS-IX members.
        candidates = env.facility_db.facilities_of(
            link.far_asn
        ) & env.facility_db.facilities_of_ixp(link.ixp_id)
        if len(candidates) < 2:
            continue
        seen.add(key)
        if link.far_facility is None:
            validation.undecided += 1
        elif link.far_facility == true_facility:
            validation.exact += 1
        else:
            validation.wrong += 1
    return validation
