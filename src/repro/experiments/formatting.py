"""Plain-text table and bar-chart rendering for experiment reports."""

from __future__ import annotations

__all__ = ["format_table", "format_bars"]


def format_table(headers: list[str], rows: list[list[object]], title: str | None = None) -> str:
    """Render an aligned monospace table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def render(row: list[str]) -> str:
        return "  ".join(value.ljust(widths[i]) for i, value in enumerate(row)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render(headers))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render(row) for row in cells)
    return "\n".join(lines)


def format_bars(
    series: list[tuple[str, float]],
    title: str | None = None,
    width: int = 40,
    value_format: str = "{:.2f}",
) -> str:
    """Render labelled values as a horizontal ASCII bar chart.

    The longest bar spans ``width`` characters; zero and negative values
    render as empty bars.  Positive values floor to whole characters but
    never below one (so tiny non-zero values stay visible) and never
    above ``width`` — ``round()`` here used to promote near-peak values
    to a full-width bar, making them indistinguishable from the peak.
    Used by the figure harnesses to echo the paper's bar charts
    (Figures 2, 3, 9) in terminal output.
    """
    if not series:
        return title or ""
    label_width = max(len(label) for label, _ in series)
    peak = max(max(value for _, value in series), 0.0)
    lines = [title] if title else []
    for label, value in series:
        filled = 0
        if peak > 0 and value > 0:
            filled = min(width, max(1, int(width * value / peak)))
        bar = "#" * filled
        lines.append(
            f"{label.ljust(label_width)}  {bar.ljust(width)}  "
            f"{value_format.format(value)}"
        )
    return "\n".join(lines)
