"""Experiment harnesses: one module per paper table/figure.

=====================  =======================================
module                 reproduces
=====================  =======================================
:mod:`table1`          Table 1 (measurement platforms)
:mod:`fig2`            Figure 2 (NOC sites vs PeeringDB)
:mod:`fig3`            Figure 3 (facilities per metro)
:mod:`fig7`            Figure 7 (CFS convergence per platform)
:mod:`fig8`            Figure 8 (missing-facility robustness)
:mod:`fig9`            Figure 9 (validation accuracy)
:mod:`fig10`           Figure 10 (per-target peering mix)
:mod:`proximity_exp`   Section 4.4 heuristic calibration
:mod:`multirole`       Section 5 router-role census
:mod:`cost`            Section 3.2 probing-cost accounting
:mod:`coverage`        Section 8 incremental map construction
:mod:`ablation`        DESIGN.md ablations
=====================  =======================================
"""

from .ablation import AblationResult, AblationRow, run_ablation
from .context import clone_corpus, experiment_environment, experiment_run
from .cost import MeasurementCost, run_measurement_cost
from .coverage import CoveragePoint, CoverageResult, run_coverage_growth
from .fig2 import Fig2Result, Fig2Row, run_fig2
from .fig3 import Fig3Result, run_fig3
from .fig7 import Fig7Result, Fig7Series, run_fig7
from .fig8 import Fig8Point, Fig8Result, run_fig8
from .fig9 import Fig9Result, run_fig9
from .fig10 import Fig10Result, Fig10Row, role_contrast, run_fig10
from .formatting import format_table
from .multirole import MultiRoleCensus, run_multirole_census
from .proximity_exp import ProximityValidation, run_proximity_validation
from .stats import (
    AliasCensus,
    AsConnectivityStats,
    run_alias_census,
    run_as_connectivity_stats,
)
from .table1 import Table1Result, run_table1

__all__ = [
    "AblationResult",
    "AblationRow",
    "clone_corpus",
    "CoveragePoint",
    "CoverageResult",
    "experiment_environment",
    "experiment_run",
    "MeasurementCost",
    "run_coverage_growth",
    "run_measurement_cost",
    "AliasCensus",
    "AsConnectivityStats",
    "run_alias_census",
    "run_as_connectivity_stats",
    "Fig10Result",
    "Fig10Row",
    "Fig2Result",
    "Fig2Row",
    "Fig3Result",
    "Fig7Result",
    "Fig7Series",
    "Fig8Point",
    "Fig8Result",
    "Fig9Result",
    "format_table",
    "MultiRoleCensus",
    "ProximityValidation",
    "role_contrast",
    "run_ablation",
    "run_fig10",
    "run_fig2",
    "run_fig3",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_multirole_census",
    "run_proximity_validation",
    "run_table1",
    "Table1Result",
]
