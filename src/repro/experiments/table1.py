"""Table 1: characteristics of the four measurement platforms.

Paper row shape (vantage points / ASNs / countries):

=============  ======  =====  =========
platform       VPs     ASNs   countries
=============  ======  =====  =========
RIPE Atlas      6385    2410    160
LGs             1877     438     79
iPlane           147     117     35
Ark              107      71     41
total unique    8517    2638    170
=============  ======  =====  =========

The reproduced table preserves the *shape*: Atlas contributes an order
of magnitude more vantage points and AS coverage than the others, the
looking glasses cover fewer ASes but many backbone locations, and the
two archived platforms are small.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pipeline import Environment
from ..measurement.platforms import PlatformStats
from .formatting import format_table

__all__ = ["Table1Result", "run_table1"]


@dataclass(slots=True)
class Table1Result:
    """The reproduced Table 1."""

    rows: list[PlatformStats]

    def row(self, platform: str) -> PlatformStats:
        """The stats row for ``platform`` (KeyError if unknown)."""
        for stats in self.rows:
            if stats.platform == platform:
                return stats
        raise KeyError(platform)

    def shape_holds(self) -> bool:
        """The paper's ordering: Atlas dominates VPs and AS coverage;
        the archives are the smallest populations."""
        atlas = self.row("ripe-atlas")
        lgs = self.row("looking-glass")
        iplane = self.row("iplane")
        ark = self.row("ark")
        return (
            atlas.vantage_points > lgs.vantage_points
            and atlas.asns > lgs.asns
            and lgs.vantage_points > iplane.vantage_points
            and lgs.vantage_points > ark.vantage_points
        )

    def format(self) -> str:
        """Rendered Table 1."""
        return format_table(
            ["platform", "vantage points", "ASNs", "countries"],
            [
                [row.platform, row.vantage_points, row.asns, row.countries]
                for row in self.rows
            ],
            title="Table 1: traceroute measurement platforms",
        )


def run_table1(env: Environment) -> Table1Result:
    """Build the reproduced Table 1 from the environment's platforms."""
    return Table1Result(rows=env.platforms.table1())
