"""Figure 2: NOC-website facility counts vs PeeringDB coverage.

The paper checked 152 ASes that publish their colocation footprint on
NOC pages and compared against PeeringDB: 61 ASes had missing
AS-to-facility links (1,424 links in total) and 4 listed no facility at
all — yet the same operators documented everything on their own sites.

The reproduced figure reports, per NOC-publishing AS: the number of
facilities on its website, and the fraction of those present in the
PeeringDB snapshot, sorted by facility count (the paper's x-axis).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pipeline import Environment
from .formatting import format_table

__all__ = ["Fig2Row", "Fig2Result", "run_fig2"]


@dataclass(frozen=True, slots=True)
class Fig2Row:
    """One AS on the Figure 2 x-axis."""

    asn: int
    website_facilities: int
    in_peeringdb: int

    @property
    def pdb_fraction(self) -> float:
        """Share of the website's facilities present in PeeringDB."""
        if self.website_facilities == 0:
            return 0.0
        return self.in_peeringdb / self.website_facilities


@dataclass(slots=True)
class Fig2Result:
    """The reproduced Figure 2 plus its headline summary numbers."""

    rows: list[Fig2Row]

    @property
    def ases_checked(self) -> int:
        """Number of NOC-publishing ASes compared."""
        return len(self.rows)

    @property
    def ases_with_missing_links(self) -> int:
        """ASes whose PeeringDB record misses links."""
        return sum(1 for row in self.rows if row.in_peeringdb < row.website_facilities)

    @property
    def total_missing_links(self) -> int:
        """AS-to-facility links absent from PeeringDB."""
        return sum(
            row.website_facilities - row.in_peeringdb for row in self.rows
        )

    @property
    def ases_absent_from_pdb(self) -> int:
        """ASes whose PeeringDB record lists no facility at all."""
        return sum(1 for row in self.rows if row.in_peeringdb == 0)

    def format(self, limit: int = 25) -> str:
        """Rendered Figure 2 table plus the summary line."""
        table = format_table(
            ["ASN", "website facilities", "in PeeringDB", "fraction"],
            [
                [row.asn, row.website_facilities, row.in_peeringdb, f"{row.pdb_fraction:.2f}"]
                for row in self.rows[:limit]
            ],
            title="Figure 2: NOC-website facilities vs PeeringDB coverage",
        )
        summary = (
            f"\nchecked {self.ases_checked} ASes with NOC pages; "
            f"{self.ases_with_missing_links} have missing PeeringDB links "
            f"({self.total_missing_links} links); "
            f"{self.ases_absent_from_pdb} list no facility in PeeringDB"
        )
        return table + summary


def run_fig2(env: Environment) -> Fig2Result:
    """Compare every NOC page against the PeeringDB snapshot."""
    pdb_map = env.peeringdb.as_facility_map()
    rows = []
    for asn in sorted(env.noc.asns_with_pages()):
        page = env.noc.page_for(asn)
        assert page is not None
        website = page.facility_ids()
        if not website:
            continue
        in_pdb = len(website & pdb_map.get(asn, set()))
        rows.append(
            Fig2Row(
                asn=asn,
                website_facilities=len(website),
                in_peeringdb=in_pdb,
            )
        )
    rows.sort(key=lambda row: (-row.website_facilities, row.asn))
    return Fig2Result(rows=rows)
