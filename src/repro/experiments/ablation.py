"""Ablations of the design choices DESIGN.md calls out.

Four switches, each removing one ingredient of the method:

* ``no-alias-step``    — Step 3 constraint propagation off;
* ``no-asn-repair``    — raw longest-prefix IP-to-ASN (no majority vote);
* ``no-followups``     — passive CFS over the initial corpus (Step 4 off);
* ``no-proximity``     — far ends limited to reverse/intersection data.

Expected shape: follow-ups dominate completeness (the Figure 7 curve
flattens immediately without them); alias propagation adds resolution
*and* accuracy; ASN repair mostly protects correctness around shared
point-to-point subnets; proximity only affects far-end yield.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.cfs import CfsConfig
from ..core.pipeline import Environment
from ..measurement.campaign import TraceCorpus
from ..validation.metrics import score_interfaces
from .context import clone_corpus
from .formatting import format_table

__all__ = ["AblationRow", "AblationResult", "run_ablation"]


@dataclass(frozen=True, slots=True)
class AblationRow:
    """One ablation variant's outcome."""

    variant: str
    resolved_fraction: float
    facility_accuracy: float
    city_accuracy: float
    far_ends_resolved: int


@dataclass(slots=True)
class AblationResult:
    """All ablation variants' outcomes."""
    rows: list[AblationRow]

    def row(self, variant: str) -> AblationRow:
        """The row for ``variant`` (KeyError if unknown)."""
        for row in self.rows:
            if row.variant == variant:
                return row
        raise KeyError(variant)

    def format(self) -> str:
        """Rendered ablation table."""
        return format_table(
            ["variant", "resolved", "facility acc", "city acc", "far ends"],
            [
                [
                    row.variant,
                    f"{row.resolved_fraction:.3f}",
                    f"{row.facility_accuracy:.3f}",
                    f"{row.city_accuracy:.3f}",
                    row.far_ends_resolved,
                ]
                for row in self.rows
            ],
            title="Ablations: CFS ingredients",
        )


def run_ablation(
    env: Environment,
    base_corpus: TraceCorpus,
    cfs_config: CfsConfig | None = None,
) -> AblationResult:
    """Run every variant over clones of ``base_corpus``."""
    base = cfs_config or env.config.cfs
    variants: list[tuple[str, CfsConfig, bool]] = [
        ("full", base, True),
        ("no-alias-step", base.replace(use_alias_constraints=False), True),
        ("no-asn-repair", base.replace(use_asn_repair=False), True),
        ("no-followups", base.replace(use_followups=False), True),
        ("random-targets", base.replace(followup_strategy="random"), True),
        ("no-proximity", base.replace(use_proximity=False), True),
        (
            "mirror-far-side",
            base.replace(constrain_private_far_side=True),
            True,
        ),
    ]
    rows: list[AblationRow] = []
    for offset, (name, config, with_followups) in enumerate(variants):
        corpus = clone_corpus(base_corpus)
        result = env.run_cfs(
            corpus,
            cfs_config=config,
            with_followups=with_followups and config.use_followups,
            seed_offset=100 + offset,
        )
        report = score_interfaces(env.topology, result)
        far_ends = sum(
            1 for link in result.links if link.far_facility is not None
        )
        rows.append(
            AblationRow(
                variant=name,
                resolved_fraction=result.resolved_fraction(),
                facility_accuracy=report.facility_accuracy,
                city_accuracy=report.city_accuracy,
                far_ends_resolved=far_ends,
            )
        )
    return AblationResult(rows=rows)
