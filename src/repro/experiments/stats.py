"""Small in-text statistics from Sections 3.1 and 4.1.

Two census harnesses for numbers the paper quotes in prose:

* **AS connectivity** (§3.1.1): "54% of the ASes in our dataset
  connected to more than one IXP and 66% of the ASes connected at more
  than one interconnection facility" — and the observation that
  presence at one multi-IXP facility lets a small-footprint AS reach
  several exchanges.
* **Alias resolution** (§4.1): "We resolved 25,756 peering interfaces
  and found 2,895 alias sets containing 10,952 addresses, and 240 alias
  sets that included 1,138 interfaces with conflicting IP to ASN
  mapping."
"""

from __future__ import annotations

from dataclasses import dataclass

from ..alias.midar import AliasSets
from ..core.pipeline import Environment
from ..measurement.campaign import TraceCorpus
from .formatting import format_table

__all__ = [
    "AsConnectivityStats",
    "AliasCensus",
    "run_as_connectivity_stats",
    "run_alias_census",
]


@dataclass(frozen=True, slots=True)
class AsConnectivityStats:
    """Membership/presence distribution over the assembled dataset."""

    ases: int
    multi_ixp_fraction: float
    multi_facility_fraction: float
    #: ASes reaching more exchanges than they have facilities — the
    #: §3.1.1 "opposite behaviour" enabled by multi-IXP facilities and
    #: remote peering.
    more_ixps_than_facilities: int

    def format(self) -> str:
        """Rendered statistics table."""
        return format_table(
            ["metric", "value"],
            [
                ["ASes with facility data", self.ases],
                ["member of > 1 IXP", f"{self.multi_ixp_fraction:.1%}"],
                ["present at > 1 facility", f"{self.multi_facility_fraction:.1%}"],
                [
                    "more IXPs than facilities",
                    self.more_ixps_than_facilities,
                ],
            ],
            title="Section 3.1.1: AS connectivity distribution",
        )


def run_as_connectivity_stats(env: Environment) -> AsConnectivityStats:
    """Compute the §3.1.1 distribution over the assembled facility map."""
    database = env.facility_db
    asns = sorted(database.as_facilities)
    multi_ixp = 0
    multi_facility = 0
    inverted = 0
    for asn in asns:
        facilities = database.facilities_of(asn)
        ixps = database.ixps_of(asn)
        if len(ixps) > 1:
            multi_ixp += 1
        if len(facilities) > 1:
            multi_facility += 1
        if len(ixps) > len(facilities):
            inverted += 1
    total = max(1, len(asns))
    return AsConnectivityStats(
        ases=len(asns),
        multi_ixp_fraction=multi_ixp / total,
        multi_facility_fraction=multi_facility / total,
        more_ixps_than_facilities=inverted,
    )


@dataclass(frozen=True, slots=True)
class AliasCensus:
    """§4.1-style alias-resolution summary over one corpus."""

    interfaces_probed: int
    alias_sets: int
    aliased_addresses: int
    conflicting_sets: int
    conflicting_addresses: int

    def format(self) -> str:
        """Rendered statistics table."""
        return format_table(
            ["metric", "value"],
            [
                ["interfaces probed", self.interfaces_probed],
                ["alias sets", self.alias_sets],
                ["addresses in alias sets", self.aliased_addresses],
                ["sets with conflicting IP-to-ASN", self.conflicting_sets],
                ["conflicting addresses", self.conflicting_addresses],
            ],
            title="Section 4.1: alias resolution census",
        )


def run_alias_census(
    env: Environment, corpus: TraceCorpus, seed_offset: int = 900
) -> AliasCensus:
    """Resolve the corpus's observed addresses and count conflicts.

    A set "conflicts" when its members' longest-prefix IP-to-ASN answers
    disagree — the shared point-to-point subnets that Section 4.1's
    majority vote repairs.
    """
    addresses = sorted(corpus.observed_addresses())
    resolver = env.new_midar(seed_offset)
    alias_sets: AliasSets = resolver.resolve(addresses)
    mapping = {address: env.cymru.lookup(address) for address in addresses}
    conflicting_sets = 0
    conflicting_addresses = 0
    aliased = 0
    for alias_set in alias_sets.sets:
        aliased += len(alias_set)
        answers = {
            mapping.get(address)
            for address in alias_set
            if mapping.get(address) is not None
        }
        if len(answers) > 1:
            conflicting_sets += 1
            conflicting_addresses += len(alias_set)
    return AliasCensus(
        interfaces_probed=len(addresses),
        alias_sets=len(alias_sets.sets),
        aliased_addresses=aliased,
        conflicting_sets=conflicting_sets,
        conflicting_addresses=conflicting_addresses,
    )
