"""Figure 10: peering interfaces per target network, by type and region.

For each of the ten study targets (five CDNs, five transit backbones)
the paper counts the peering interfaces inferred on the target's
interconnections, split into public-local / public-remote /
cross-connect / tethering, in total and per region (Europe, North
America, Asia).  The qualitative contrasts to reproduce:

* CDNs establish most of their interconnections over public peering
  fabrics, Tier-1 backbones skew heavily private;
* peering strategy varies markedly even among Tier-1s;
* Europe yields more inferred interfaces than other regions (vantage
  point and facility-data density).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.pipeline import Environment
from ..core.types import CfsResult, InferredType, PeeringKind
from ..topology.asn import ASRole
from .formatting import format_table

__all__ = ["Fig10Row", "Fig10Result", "run_fig10"]

_REGIONS = ("Europe", "North America", "Asia")


@dataclass(slots=True)
class Fig10Row:
    """Type mix for one target, overall or within one region."""

    asn: int
    role: str
    region: str  # "total" or a continental region
    counts: dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        """Total interfaces counted for this row."""
        return sum(self.counts.values())

    def fraction(self, inferred_type: InferredType) -> float:
        """Share of this row's interfaces of the given type."""
        if self.total == 0:
            return 0.0
        return self.counts.get(inferred_type.value, 0) / self.total

    @property
    def public_fraction(self) -> float:
        """Share riding an exchange fabric (local or remote)."""
        return self.fraction(InferredType.PUBLIC_LOCAL) + self.fraction(
            InferredType.PUBLIC_REMOTE
        )


@dataclass(slots=True)
class Fig10Result:
    """All rows: one per (target, region) plus per-target totals."""

    rows: list[Fig10Row]

    def row(self, asn: int, region: str = "total") -> Fig10Row | None:
        """The row for one target and region, if present."""
        for row in self.rows:
            if row.asn == asn and row.region == region:
                return row
        return None

    def mean_public_fraction(self, role: str) -> float:
        """Mean public share across targets of one role."""
        rows = [
            row
            for row in self.rows
            if row.role == role and row.region == "total" and row.total
        ]
        if not rows:
            return 0.0
        return sum(row.public_fraction for row in rows) / len(rows)

    def format(self) -> str:
        """Rendered per-target table (totals only)."""
        type_names = [t.value for t in InferredType if t is not InferredType.UNKNOWN]
        rows = []
        for row in self.rows:
            if row.region != "total":
                continue
            rows.append(
                [row.asn, row.role]
                + [row.counts.get(name, 0) for name in type_names]
                + [row.total]
            )
        return format_table(
            ["target", "role"] + type_names + ["total"],
            rows,
            title="Figure 10: peering interfaces per target, by inferred type",
        )


def run_fig10(env: Environment, result: CfsResult) -> Fig10Result:
    """Attribute inferred peering interfaces to the study targets."""
    targets = set(env.target_asns)
    # (target, region, type) -> set of interface addresses (dedup: one
    # interface can appear on many route-server sessions).
    buckets: dict[tuple[int, str], dict[str, set[int]]] = {}

    def bucket(asn: int, region: str) -> dict[str, set[int]]:
        return buckets.setdefault((asn, region), {})

    def region_of(facility: int | None) -> str | None:
        if facility is None:
            return None
        metro_name = env.facility_db.metro_of(facility)
        if metro_name is None:
            return None
        metro = env.topology.metros.get(metro_name)
        return metro.region if metro is not None else None

    for link in result.links:
        if link.inferred_type is InferredType.UNKNOWN:
            continue
        sides: list[tuple[int, int, int | None]] = []  # (asn, address, facility)
        if link.near_asn in targets:
            sides.append((link.near_asn, link.near_address, link.near_facility))
        if link.far_asn in targets:
            far_address = (
                link.ixp_address
                if link.kind is PeeringKind.PUBLIC
                else link.far_address
            )
            if far_address is not None:
                sides.append((link.far_asn, far_address, link.far_facility))
        for asn, address, facility in sides:
            type_name = _side_type(result, link, address)
            bucket(asn, "total").setdefault(type_name, set()).add(address)
            region = region_of(facility)
            if region in _REGIONS:
                bucket(asn, region).setdefault(type_name, set()).add(address)

    rows = []
    for asn in env.target_asns:
        role = env.topology.ases[asn].role.value
        for region in ("total",) + _REGIONS:
            counts = {
                name: len(addresses)
                for name, addresses in buckets.get((asn, region), {}).items()
            }
            rows.append(Fig10Row(asn=asn, role=role, region=region, counts=counts))
    return Fig10Result(rows=rows)


def _side_type(result: CfsResult, link, address: int) -> str:
    """Engineering type from the perspective of ``address``'s side."""
    if link.kind is PeeringKind.PRIVATE:
        return link.inferred_type.value
    state = result.interfaces.get(address)
    if state is not None and state.remote:
        return InferredType.PUBLIC_REMOTE.value
    return InferredType.PUBLIC_LOCAL.value


def role_contrast(result: Fig10Result) -> tuple[float, float]:
    """(mean CDN public fraction, mean Tier-1 public fraction) — the
    paper's headline contrast."""
    return (
        result.mean_public_fraction(ASRole.CONTENT.value),
        result.mean_public_fraction(ASRole.TIER1.value),
    )
