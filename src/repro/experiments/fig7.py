"""Figure 7: CFS convergence per iteration, by measurement platform.

Paper series: the fraction of peering interfaces resolved to a single
facility versus CFS iteration, for (i) all platforms, (ii) RIPE Atlas
alone, (iii) looking glasses alone.  Headlines to reproduce in shape:

* ~40% of interfaces resolve within the first 10 iterations and returns
  diminish after ~40; 70.65% resolve by the 100-iteration timeout;
* Atlas resolves about twice as many interfaces per iteration as the
  looking glasses;
* yet 46% of LG-resolved interfaces (transit backbones) are invisible
  to Atlas probes;
* DNS-based geolocation (DRoP) covers fewer interfaces than CFS's first
  five iterations, at coarser granularity (~32% in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.drop import DropGeolocator
from ..core.pipeline import Environment
from ..core.types import CfsResult
from .formatting import format_table

__all__ = ["Fig7Series", "Fig7Result", "run_fig7"]


@dataclass(slots=True)
class Fig7Series:
    """One convergence curve."""

    name: str
    #: (iteration, resolved count, total interfaces) per iteration.
    points: list[tuple[int, int, int]]

    def fractions(self) -> list[tuple[int, float]]:
        """(iteration, resolved fraction) pairs."""
        return [
            (iteration, resolved / total if total else 0.0)
            for iteration, resolved, total in self.points
        ]

    def final_fraction(self) -> float:
        """Resolved fraction at the last recorded iteration."""
        if not self.points:
            return 0.0
        _, resolved, total = self.points[-1]
        return resolved / total if total else 0.0

    def fraction_at(self, iteration: int) -> float:
        """Resolved fraction at or before ``iteration``."""
        best = 0.0
        for it, resolved, total in self.points:
            if it <= iteration and total:
                best = resolved / total
        return best


@dataclass(slots=True)
class Fig7Result:
    """All three curves plus the DNS-geolocation yardstick."""

    series: dict[str, Fig7Series]
    results: dict[str, CfsResult]
    #: Fraction of all-platform interfaces DRoP could locate (city level).
    dns_located_fraction: float
    #: Fraction of LG-resolved interfaces never seen by Atlas.
    lg_unique_fraction: float

    def format(self, step: int = 10) -> str:
        """Rendered convergence table with the baseline footnotes."""
        iterations = sorted(
            {
                point[0]
                for curve in self.series.values()
                for point in curve.points
                if point[0] % step == 0 or point[0] == 1
            }
        )
        names = sorted(self.series)
        rows = []
        for iteration in iterations:
            rows.append(
                [iteration]
                + [f"{self.series[name].fraction_at(iteration):.3f}" for name in names]
            )
        table = format_table(
            ["iteration"] + names,
            rows,
            title="Figure 7: fraction of interfaces resolved vs CFS iteration",
        )
        return (
            table
            + f"\nDNS geolocation locates {self.dns_located_fraction:.3f} of interfaces"
            + f"\n{self.lg_unique_fraction:.3f} of LG-resolved interfaces are invisible to Atlas"
        )


def _curve(name: str, result: CfsResult) -> Fig7Series:
    return Fig7Series(
        name=name,
        points=[
            (stats.iteration, stats.resolved, stats.total_interfaces)
            for stats in result.history
        ],
    )


def run_fig7(env: Environment) -> Fig7Result:
    """Run the three platform variants plus the DNS baseline."""
    variants: dict[str, tuple[str, ...] | None] = {
        "all": None,
        "ripe-atlas": ("ripe-atlas",),
        "looking-glass": ("looking-glass",),
    }
    series: dict[str, Fig7Series] = {}
    results: dict[str, CfsResult] = {}
    seen_by_atlas: set[int] = set()
    resolved_by_lg: set[int] = set()
    for offset, (name, platform_filter) in enumerate(variants.items()):
        corpus = env.run_campaign(platform_filter, seed_offset=offset * 10)
        result = env.run_cfs(
            corpus,
            platform_filter=platform_filter,
            seed_offset=offset * 10,
        )
        series[name] = _curve(name, result)
        results[name] = result
        if name == "ripe-atlas":
            seen_by_atlas = set(result.interfaces)
        if name == "looking-glass":
            resolved_by_lg = set(result.resolved_interfaces())

    lg_unique = 0.0
    if resolved_by_lg:
        lg_unique = len(resolved_by_lg - seen_by_atlas) / len(resolved_by_lg)

    all_addresses = list(results["all"].interfaces)
    drop = DropGeolocator(env.topology.metros, env.dns)
    report = drop.coverage_report(all_addresses)
    dns_fraction = report["located"] / report["total"] if report["total"] else 0.0
    return Fig7Result(
        series=series,
        results=results,
        dns_located_fraction=dns_fraction,
        lg_unique_fraction=lg_unique,
    )
