"""Section 3.2 measurement-cost accounting.

The paper quantifies the probing economics that shape CFS's Step-4
scheduling: a full RIPE Atlas campaign toward one target completes in
about five minutes, while the largest looking glass — 120 locations
behind a mandatory 60-second per-query pause — needs up to ~180 minutes
for a single target.  The looking glasses are therefore reserved for
*targeted* queries.

This harness issues a one-target campaign per platform and reports the
simulated wall-clock cost of each, using the engine's per-LG rate-limit
accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..core.pipeline import Environment
from .formatting import format_table

__all__ = ["MeasurementCost", "run_measurement_cost"]

#: A full Atlas campaign takes ~5 minutes per target (Section 3.2): the
#: probes fire concurrently, so the time is per-campaign, not per-probe.
_ATLAS_CAMPAIGN_MINUTES = 5.0


@dataclass(slots=True)
class MeasurementCost:
    """Simulated probing cost of a one-target campaign per platform."""

    atlas_traces: int
    atlas_minutes: float
    lg_traces: int
    lg_locations_queried: int
    lg_wait_minutes: float

    @property
    def lg_to_atlas_cost_ratio(self) -> float:
        """How many times costlier the LG sweep is than Atlas."""
        if self.atlas_minutes == 0:
            return 0.0
        return self.lg_wait_minutes / self.atlas_minutes

    def format(self) -> str:
        """Rendered cost table."""
        return format_table(
            ["platform", "traces", "simulated minutes"],
            [
                ["ripe-atlas", self.atlas_traces, f"{self.atlas_minutes:.1f}"],
                [
                    "looking-glass",
                    self.lg_traces,
                    f"{self.lg_wait_minutes:.1f}",
                ],
            ],
            title="Section 3.2: one-target campaign cost per platform",
        )


def run_measurement_cost(
    env: Environment, target_asn: int | None = None, seed: int = 0
) -> MeasurementCost:
    """Probe one target from every Atlas probe and every LG location,
    and account the simulated probing cost of each platform.

    The looking-glass figure is the *aggregate enforced waiting* across
    all rate-limited LGs; per-LG sequential cost is what the paper's
    180-minute worst case describes.
    """
    if target_asn is None:
        target_asn = env.target_asns[0]
    targets = env.hitlist.targets_for(target_asn)
    if not targets:
        raise ValueError(f"AS{target_asn} has no responsive targets")
    destination = targets[0]

    atlas = env.platforms.atlas
    atlas_traces = 0
    for vp in atlas.vantage_points:
        atlas.trace(vp, destination)
        atlas_traces += 1

    lgs = env.platforms.looking_glasses
    wait_before = lgs.simulated_wait_s
    lg_traces = 0
    for vp in lgs.vantage_points:
        lgs.trace(vp, destination)
        lg_traces += 1
    lg_wait_minutes = (lgs.simulated_wait_s - wait_before) / 60.0

    return MeasurementCost(
        atlas_traces=atlas_traces,
        atlas_minutes=_ATLAS_CAMPAIGN_MINUTES,
        lg_traces=lg_traces,
        lg_locations_queried=lg_traces,
        lg_wait_minutes=lg_wait_minutes,
    )
