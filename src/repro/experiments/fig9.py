"""Figure 9: validation accuracy per ground-truth source and link type.

Paper headline: over 90% of validated inferences are correct at the
facility level, across all four sources —

* direct feedback: 474/540 facility level (88%), 95% at city level;
* BGP communities: 76/83 public (92%), 94/106 cross-connect (89%);
* DNS records: 91/100 public (91%), 191/213 cross-connect (89%);
* IXP websites: 322/325 public (99.1%), 44/48 remote peers (91.7%) —
  the best-covered source, because those exchanges publish complete
  member/facility lists;

and when an inference disagrees, the true facility is almost always in
the same city.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pipeline import Environment
from ..core.types import CfsResult
from ..validation.metrics import ValidationCell, validate_against_sources
from ..validation.sources import build_all_sources
from .formatting import format_bars, format_table

__all__ = ["Fig9Result", "run_fig9"]


@dataclass(slots=True)
class Fig9Result:
    """All Figure 9 cells."""

    cells: list[ValidationCell]

    def overall_accuracy(self) -> float:
        """Matched/total pooled over every cell."""
        matched = sum(cell.matched for cell in self.cells)
        total = sum(cell.total for cell in self.cells)
        return matched / total if total else 0.0

    def cell(self, source: str, link_type: str) -> ValidationCell | None:
        """The cell for one (source, link type) pair, if present."""
        for candidate in self.cells:
            if candidate.source == source and candidate.link_type == link_type:
                return candidate
        return None

    def format_chart(self) -> str:
        """The Figure 9 bars (accuracy per source and link type)."""
        return format_bars(
            [
                (f"{cell.source}/{cell.link_type} {cell.label()}", cell.accuracy)
                for cell in self.cells
                if cell.total > 0
            ],
            title="Figure 9: validation accuracy",
        )

    def format(self) -> str:
        """Rendered Figure 9 table with the overall line."""
        table = format_table(
            ["source", "link type", "matched/total", "accuracy"],
            [
                [cell.source, cell.link_type, cell.label(), f"{cell.accuracy:.3f}"]
                for cell in self.cells
                if cell.total > 0
            ],
            title="Figure 9: validation accuracy by source and link type",
        )
        return table + f"\noverall: {self.overall_accuracy():.3f}"


def run_fig9(env: Environment, result: CfsResult) -> Fig9Result:
    """Validate a finished CFS run against the four Section-6 sources."""
    sources = build_all_sources(
        env.topology,
        env.dns,
        env.ixp_sources,
        env.target_asns,
        seed=env.config.seed + 60,
    )
    cells = validate_against_sources(result, sources)
    return Fig9Result(cells=cells)
