"""Incremental map construction (the paper's concluding claim).

Section 8: "by utilizing results for individual interconnections and
others inferred in the process, it is possible to incrementally
construct a more detailed map of interconnections."  This experiment
quantifies that: study targets are added one at a time, CFS runs over
the accumulated corpus after each addition, and we track the cumulative
number of distinct facility-pinned interconnections.

Shape: coverage grows with every target; early targets contribute the
most (their traceroutes also cross other networks' peerings), so growth
is concave.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pipeline import Environment
from ..measurement.campaign import TraceCorpus
from .formatting import format_table

__all__ = ["CoveragePoint", "CoverageResult", "run_coverage_growth"]


@dataclass(frozen=True, slots=True)
class CoveragePoint:
    """Cumulative map size after adding the n-th target."""

    targets: int
    traces: int
    interfaces_seen: int
    links_observed: int
    links_pinned: int


@dataclass(slots=True)
class CoverageResult:
    """The coverage-growth curve."""
    points: list[CoveragePoint]

    def is_monotone(self) -> bool:
        """True when pinned-link counts never shrink."""
        pinned = [point.links_pinned for point in self.points]
        return all(b >= a for a, b in zip(pinned, pinned[1:]))

    def format(self) -> str:
        """Rendered coverage table."""
        return format_table(
            ["targets", "traces", "interfaces", "links seen", "links pinned"],
            [
                [p.targets, p.traces, p.interfaces_seen, p.links_observed, p.links_pinned]
                for p in self.points
            ],
            title="Incremental map construction (Section 8)",
        )


def run_coverage_growth(
    env: Environment,
    max_targets: int | None = None,
    seed_offset: int = 700,
) -> CoverageResult:
    """Grow the map one study target at a time.

    Each step appends the new target's campaign traces to the cumulative
    corpus and replays CFS passively (follow-up probing is held to the
    per-target campaigns so the growth attribution stays clean).
    """
    targets = env.target_asns[: max_targets or len(env.target_asns)]
    driver = env.new_driver(seed_offset)
    corpus = TraceCorpus()
    points: list[CoveragePoint] = []
    for index, asn in enumerate(targets, start=1):
        # Archived sweeps are background data: fold them in once.
        corpus.extend(
            driver.initial_campaign([asn], include_archives=(index == 1)).traces
        )
        result = env.run_cfs(
            corpus,
            with_followups=False,
            seed_offset=seed_offset + index,
        )
        pinned = sum(
            1 for link in result.links if link.near_facility is not None
        )
        points.append(
            CoveragePoint(
                targets=index,
                traces=len(corpus),
                interfaces_seen=result.peering_interfaces_seen,
                links_observed=len(result.links),
                links_pinned=pinned,
            )
        )
    return CoverageResult(points=points)
