"""Figure 3: metropolitan areas ranked by interconnection facilities.

The paper's skyline: London leads with ~45 facilities, followed by New
York, Paris, Frankfurt, Amsterdam...; 33 metros host at least 10.  The
shape to preserve is the heavy tail — a handful of global hubs followed
by a long gentle decline — and the Europe/North-America dominance of
the top ranks.  The paper also notes a metro has about 3x more
facilities than IXPs on average.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..topology.topology import Topology
from .formatting import format_bars, format_table

__all__ = ["Fig3Result", "run_fig3"]


@dataclass(slots=True)
class Fig3Result:
    """Facility (and IXP) counts per metro, descending."""

    rows: list[tuple[str, int, int]]  # (metro, facilities, ixps)

    def metros_with_at_least(self, threshold: int) -> list[str]:
        """Metros hosting at least ``threshold`` facilities."""
        return [metro for metro, count, _ in self.rows if count >= threshold]

    @property
    def facility_to_ixp_ratio(self) -> float:
        """Mean facilities-per-IXP over metros hosting any IXP."""
        with_ixps = [(f, x) for _, f, x in self.rows if x > 0]
        if not with_ixps:
            return 0.0
        return sum(f / x for f, x in with_ixps) / len(with_ixps)

    def is_heavy_tailed(self) -> bool:
        """Top metro should hold several times the median metro's count."""
        counts = sorted((count for _, count, _ in self.rows), reverse=True)
        if len(counts) < 4:
            return False
        median = counts[len(counts) // 2]
        return counts[0] >= max(3, 3 * max(1, median))

    def format_chart(self, limit: int = 15) -> str:
        """The Figure 3 skyline as an ASCII bar chart."""
        return format_bars(
            [(metro, float(count)) for metro, count, _ in self.rows[:limit]],
            title="Figure 3: facilities per metro",
            value_format="{:.0f}",
        )

    def format(self, limit: int = 30) -> str:
        """Rendered Figure 3 ranking table."""
        return format_table(
            ["metro", "facilities", "IXPs"],
            [[metro, fac, ixp] for metro, fac, ixp in self.rows[:limit]],
            title="Figure 3: metros ranked by interconnection facilities",
        )


def run_fig3(topology: Topology) -> Fig3Result:
    """Count facilities and active IXPs per metro (ground truth plant)."""
    facility_counts: dict[str, int] = {}
    for facility in topology.facilities.values():
        facility_counts[facility.metro] = facility_counts.get(facility.metro, 0) + 1
    ixp_counts: dict[str, int] = {}
    for ixp in topology.ixps.values():
        if ixp.active:
            ixp_counts[ixp.metro] = ixp_counts.get(ixp.metro, 0) + 1
    rows = [
        (metro, count, ixp_counts.get(metro, 0))
        for metro, count in facility_counts.items()
    ]
    rows.sort(key=lambda row: (-row[1], row[0]))
    return Fig3Result(rows=rows)
