"""Section 5 router-role census: multi-role and multi-IXP routers.

Paper headlines:

* 39% of observed routers implement **both** public and private peering
  — public and private interconnections share equipment and therefore
  share points of congestion and failure;
* 11.9% of routers used for public peering establish sessions over two
  or three exchanges (facilities hosting several IXPs make one router's
  port reachable from all of them).

The census groups the observed peering interfaces into routers and
counts the roles each router plays.  Interface-to-router grouping uses
ground truth (the simulator's registry); the paper used MIDAR alias
sets, which our alias substrate reproduces with high recall, so either
grouping yields the same qualitative census.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pipeline import Environment
from ..core.types import CfsResult, PeeringKind
from .formatting import format_table

__all__ = ["MultiRoleCensus", "run_multirole_census"]


@dataclass(slots=True)
class MultiRoleCensus:
    """Role statistics over observed peering routers."""

    routers_observed: int
    public_routers: int
    private_routers: int
    both_roles: int
    multi_ixp_routers: int

    @property
    def both_roles_fraction(self) -> float:
        """Share of observed routers doing public AND private peering."""
        if not self.routers_observed:
            return 0.0
        return self.both_roles / self.routers_observed

    @property
    def multi_ixp_fraction(self) -> float:
        """Among public-peering routers, the share spanning >= 2 IXPs."""
        if not self.public_routers:
            return 0.0
        return self.multi_ixp_routers / self.public_routers

    def format(self) -> str:
        """Rendered census table."""
        return format_table(
            ["metric", "value"],
            [
                ["peering routers observed", self.routers_observed],
                ["public-peering routers", self.public_routers],
                ["private-peering routers", self.private_routers],
                [
                    "both public and private",
                    f"{self.both_roles} ({self.both_roles_fraction:.1%})",
                ],
                [
                    "public routers on >= 2 IXPs",
                    f"{self.multi_ixp_routers} ({self.multi_ixp_fraction:.1%})",
                ],
            ],
            title="Multi-role router census (Section 5)",
        )


def run_multirole_census(env: Environment, result: CfsResult) -> MultiRoleCensus:
    """Count public/private/multi-IXP roles per observed router."""
    public_roles: dict[int, set[int]] = {}  # router -> ixp ids
    private_roles: set[int] = set()

    def router_of(address: int) -> int | None:
        interface = env.topology.interfaces.get(address)
        return interface.router_id if interface is not None else None

    for link in result.links:
        if link.kind is PeeringKind.PUBLIC:
            assert link.ixp_id is not None
            for address in (link.near_address, link.ixp_address):
                if address is None:
                    continue
                router = router_of(address)
                if router is None:
                    continue
                # The near interface belongs to the near border router,
                # which holds the near side's port at this exchange.
                public_roles.setdefault(router, set()).add(link.ixp_id)
        else:
            for address in (link.near_address, link.far_address):
                if address is None:
                    continue
                router = router_of(address)
                if router is not None:
                    private_roles.add(router)

    observed = set(public_roles) | private_roles
    both = set(public_roles) & private_roles
    multi_ixp = sum(1 for ixps in public_roles.values() if len(ixps) >= 2)
    return MultiRoleCensus(
        routers_observed=len(observed),
        public_routers=len(public_roles),
        private_routers=len(private_roles),
        both_roles=len(both),
        multi_ixp_routers=multi_ixp,
    )
