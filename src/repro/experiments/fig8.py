"""Figure 8: robustness of CFS to missing facility data.

The paper iteratively removed up to 1,400 of the 1,694 facilities from
the *dataset* (ground truth unchanged) and re-ran CFS, 20 repetitions:

* removing ~50% of facilities un-resolves ~30% of previously resolved
  interfaces; removing 80% un-resolves ~60% — completeness degrades
  smoothly and stays comparable to DNS geolocation even then;
* removing ~30% makes ~20% of interfaces converge to a *different*
  facility (changed inference); the changed-inference curve is not
  monotonic, because heavy removal destroys the constraints needed to
  converge at all.

The reproduced experiment removes the same *fractions* of the known
facility set and replays CFS passively over a fixed corpus (follow-up
probing held constant so only the dataset varies).
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from ..alias.midar import MidarResolver
from ..core.pipeline import Environment
from ..measurement.campaign import TraceCorpus
from .formatting import format_table

__all__ = ["Fig8Point", "Fig8Result", "run_fig8"]


@dataclass(frozen=True, slots=True)
class Fig8Point:
    """Mean outcome at one removal level."""

    removed: int
    removed_fraction: float
    unresolved_fraction: float
    changed_fraction: float


@dataclass(slots=True)
class Fig8Result:
    """The two Figure 8 curves."""

    baseline_resolved: int
    points: list[Fig8Point]

    def unresolved_is_monotonic(self, slack: float = 0.05) -> bool:
        """Completeness loss should grow with removals (within noise)."""
        values = [point.unresolved_fraction for point in self.points]
        return all(b >= a - slack for a, b in zip(values, values[1:]))

    def format(self) -> str:
        """Rendered Figure 8 table."""
        return format_table(
            ["removed", "fraction", "unresolved", "changed inference"],
            [
                [
                    point.removed,
                    f"{point.removed_fraction:.2f}",
                    f"{point.unresolved_fraction:.3f}",
                    f"{point.changed_fraction:.3f}",
                ]
                for point in self.points
            ],
            title="Figure 8: effect of removing facilities from the dataset",
        )


def run_fig8(
    env: Environment,
    corpus: TraceCorpus,
    removal_fractions: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.65, 0.8),
    repeats: int = 3,
    seed: int = 0,
) -> Fig8Result:
    """Replay CFS over ``corpus`` with progressively degraded datasets.

    ``corpus`` should be a completed study corpus (follow-up traces
    included) so the passive replays see identical measurements.
    """
    rng = Random(seed)
    shared_resolver: MidarResolver = env.new_midar(seed_offset=500)

    def passive_run(facility_db):
        search_db = facility_db
        from ..core.cfs import CfsConfig, ConstrainedFacilitySearch

        search = ConstrainedFacilitySearch(
            facility_db=search_db,
            ip_to_asn=env.cymru,
            alias_resolver=shared_resolver,
            driver=None,
            remote_detector=env.remote_detector(),
            config=CfsConfig(max_iterations=10, use_followups=False),
        )
        return search.run(corpus)

    baseline = passive_run(env.facility_db)
    baseline_resolved = baseline.resolved_interfaces()

    known = sorted(env.facility_db.all_known_facilities())
    points: list[Fig8Point] = []
    for fraction in removal_fractions:
        n_remove = int(len(known) * fraction)
        unresolved_acc = 0.0
        changed_acc = 0.0
        for _ in range(repeats):
            removed = set(rng.sample(known, n_remove))
            degraded = env.facility_db.without_facilities(removed)
            replay = passive_run(degraded)
            replay_resolved = replay.resolved_interfaces()
            unresolved = 0
            changed = 0
            for address, facility in baseline_resolved.items():
                new_facility = replay_resolved.get(address)
                if new_facility is None:
                    unresolved += 1
                elif new_facility != facility:
                    changed += 1
            total = max(1, len(baseline_resolved))
            unresolved_acc += unresolved / total
            changed_acc += changed / total
        points.append(
            Fig8Point(
                removed=n_remove,
                removed_fraction=fraction,
                unresolved_fraction=unresolved_acc / repeats,
                changed_fraction=changed_acc / repeats,
            )
        )
    return Fig8Result(
        baseline_resolved=len(baseline_resolved), points=points
    )
