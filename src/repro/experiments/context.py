"""Shared, cached experiment contexts.

Several benchmarks reproduce different figures over the *same* study run
(the paper's Section-5 campaign).  Building the environment and running
the full pipeline once per process and sharing it keeps the benchmark
suite honest (identical data behind every figure) and fast.
"""

from __future__ import annotations

from ..core.pipeline import Environment, PipelineConfig, build_environment
from ..core.types import CfsResult
from ..measurement.campaign import TraceCorpus

__all__ = ["experiment_environment", "experiment_run", "clone_corpus"]

_ENVIRONMENTS: dict[tuple[int, bool], Environment] = {}
_RUNS: dict[tuple[int, bool], tuple[TraceCorpus, CfsResult]] = {}


def experiment_environment(seed: int = 0, small: bool = False) -> Environment:
    """The cached environment for (seed, scale)."""
    key = (seed, small)
    if key not in _ENVIRONMENTS:
        config = PipelineConfig.small(seed) if small else PipelineConfig.default(seed)
        _ENVIRONMENTS[key] = build_environment(config)
    return _ENVIRONMENTS[key]


def experiment_run(
    seed: int = 0, small: bool = False
) -> tuple[Environment, TraceCorpus, CfsResult]:
    """The cached full study run (campaign + CFS) for (seed, scale)."""
    key = (seed, small)
    env = experiment_environment(seed, small)
    if key not in _RUNS:
        corpus = env.run_campaign()
        result = env.run_cfs(corpus)
        _RUNS[key] = (corpus, result)
    corpus, result = _RUNS[key]
    return env, corpus, result


def clone_corpus(corpus: TraceCorpus) -> TraceCorpus:
    """An independent corpus copy (CFS follow-ups append in place)."""
    clone = TraceCorpus()
    clone.extend(list(corpus.traces))
    return clone
