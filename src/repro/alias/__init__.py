"""Alias resolution (MIDAR-style monotonic bounds testing)."""

from .midar import (
    AliasSets,
    MidarConfig,
    MidarResolver,
    UnionFind,
    monotonic_mod_sequence,
    repair_ip_to_asn,
    velocity_estimate,
)

__all__ = [
    "AliasSets",
    "MidarConfig",
    "MidarResolver",
    "monotonic_mod_sequence",
    "repair_ip_to_asn",
    "UnionFind",
    "velocity_estimate",
]
