"""MIDAR-style alias resolution via the monotonic bounds test.

Section 4.1 resolves 25,756 peering interfaces into routers with MIDAR
(Keys et al., ToN 2013).  The idea: many routers stamp outgoing packets
from one shared, monotonically increasing IP-ID counter.  If interleaved
probe responses from two addresses are consistent with a *single*
increasing (mod 2^16) counter of plausible velocity, the addresses are
aliases of one router.

Pipeline stages, mirroring MIDAR:

1. **Estimation** — probe each address with a short train; discard
   unresponsive targets, constant-zero responders, and targets whose
   implied counter velocity is implausibly high (random IP-IDs).
2. **Sieving** — only pairs with overlapping velocity ranges are worth
   the pairwise test (keeps probing sub-quadratic in spirit).
3. **Elimination** — interleaved probe trains per candidate pair; the
   monotonic bounds test must pass in *every* round.
4. **Corroboration** — union-find merge of surviving pairs into alias
   sets.

The resolver also performs the IP-to-ASN repair of Section 4.1: alias
sets whose members longest-prefix-map to different ASNs (shared
point-to-point subnets) are reassigned to the majority ASN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random

from typing import TYPE_CHECKING

from ..measurement.ipid import IPID_MODULUS, IpidResponder
from ..obs import Instrumentation

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..faults.injector import FaultInjector

__all__ = [
    "monotonic_mod_sequence",
    "velocity_estimate",
    "UnionFind",
    "AliasSets",
    "MidarConfig",
    "MidarResolver",
    "repair_ip_to_asn",
]


def monotonic_mod_sequence(samples: list[int], modulus: int = IPID_MODULUS) -> bool:
    """True if ``samples`` can be one increasing counter mod ``modulus``.

    The counter may wrap, but the *total* advance across the train must
    stay under one full cycle — the monotonic bounds test's core check.
    A train shorter than two samples is vacuously monotonic.
    """
    if len(samples) < 2:
        return True
    total_advance = 0
    for previous, current in zip(samples, samples[1:]):
        step = (current - previous) % modulus
        if step == 0:
            return False  # a shared counter always advances between probes
        total_advance += step
        if total_advance >= modulus:
            return False
    return True


def velocity_estimate(samples: list[int], modulus: int = IPID_MODULUS) -> float | None:
    """Mean IP-ID advance per probe, or ``None`` if not monotonic."""
    if len(samples) < 2:
        return None
    if not monotonic_mod_sequence(samples, modulus):
        return None
    total = sum(
        (current - previous) % modulus
        for previous, current in zip(samples, samples[1:])
    )
    return total / (len(samples) - 1)


class UnionFind:
    """Disjoint sets over arbitrary hashable items (path compression)."""

    def __init__(self) -> None:
        self._parent: dict[object, object] = {}
        self._rank: dict[object, int] = {}

    def add(self, item: object) -> None:
        """Ensure ``item`` is tracked as its own set if unseen."""
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0

    def find(self, item: object) -> object:
        """Representative of ``item``'s set (path-compressed)."""
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: object, b: object) -> None:
        """Merge the sets containing ``a`` and ``b``."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return
        if self._rank[root_a] < self._rank[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        if self._rank[root_a] == self._rank[root_b]:
            self._rank[root_a] += 1

    def groups(self) -> list[set]:
        """All disjoint sets as a list of membership sets."""
        by_root: dict[object, set] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), set()).add(item)
        return list(by_root.values())


@dataclass(slots=True)
class AliasSets:
    """Resolved alias sets plus a per-address index."""

    sets: list[frozenset[int]] = field(default_factory=list)
    _index: dict[int, int] = field(default_factory=dict)

    @classmethod
    def from_groups(cls, groups: list[set[int]]) -> "AliasSets":
        """Build alias sets from raw groups, dropping singletons."""
        result = cls()
        for group in sorted(groups, key=lambda g: min(g)):
            if len(group) < 2:
                continue
            set_id = len(result.sets)
            result.sets.append(frozenset(group))
            for address in group:
                result._index[address] = set_id
        return result

    def aliases_of(self, address: int) -> frozenset[int]:
        """All known aliases of ``address`` (including itself)."""
        set_id = self._index.get(address)
        if set_id is None:
            return frozenset((address,))
        return self.sets[set_id]

    def are_aliases(self, a: int, b: int) -> bool:
        """True if both addresses sit in the same alias set."""
        set_a = self._index.get(a)
        return set_a is not None and set_a == self._index.get(b)

    def __len__(self) -> int:
        return len(self.sets)


@dataclass(frozen=True, slots=True)
class MidarConfig:
    """Probing and acceptance knobs."""

    #: Probes per address in the estimation stage.
    estimation_train: int = 5
    #: Interleaved rounds per candidate pair in elimination.
    elimination_rounds: int = 3
    #: Probes per address per elimination round.
    elimination_train: int = 4
    #: Velocity ratio above which two addresses cannot share a counter.
    #: Aliases observe the *same* counter, so their measured velocities
    #: match closely; a tight bound keeps pairwise probing tractable.
    velocity_ratio_bound: float = 1.15
    #: Velocities above this are treated as random IP-ID (not usable).
    max_plausible_velocity: float = 2000.0


class MidarResolver:
    """Runs the MIDAR stages against an :class:`IpidResponder`."""

    def __init__(
        self,
        responder: IpidResponder,
        config: MidarConfig | None = None,
        seed: int = 0,
        instrumentation: Instrumentation | None = None,
        fault_injector: "FaultInjector | None" = None,
    ) -> None:
        self._responder = responder
        self.config = config or MidarConfig()
        self._rng = Random(seed)
        self._obs = instrumentation or Instrumentation()
        self._faults = fault_injector
        self.probes_sent = 0
        # Pair verdicts persist across resolve() calls: re-running the
        # pipeline's periodic alias refresh only probes pairs involving
        # newly observed addresses (MIDAR similarly reuses run state
        # between its corroboration rounds).
        self._rejected_pairs: set[tuple[int, int]] = set()
        self._accepted_pairs: set[tuple[int, int]] = set()

    # -- stage 1 -------------------------------------------------------

    def _estimate(self, addresses: list[int]) -> dict[int, float]:
        """Velocity per usable address; unusable addresses are dropped."""
        velocities: dict[int, float] = {}
        for address in addresses:
            train = self._responder.probe_train(
                address, self.config.estimation_train
            )
            self.probes_sent += len(train)
            samples = [s for s in train if s is not None]
            if len(samples) < self.config.estimation_train:
                continue  # unresponsive (Google-style) targets
            if all(s == samples[0] for s in samples):
                continue  # constant IP-ID
            velocity = velocity_estimate(samples)
            if velocity is None or velocity > self.config.max_plausible_velocity:
                continue  # random IP-ID
            velocities[address] = velocity
        return velocities

    # -- stage 2 -------------------------------------------------------

    def _sieve(self, velocities: dict[int, float]) -> list[tuple[int, int]]:
        """Candidate pairs whose velocities could share one counter.

        A sliding window over velocity-sorted addresses: only pairs
        within the configured ratio are worth probing, which keeps the
        elimination stage far below the naive quadratic probe count.
        """
        ranked = sorted(velocities.items(), key=lambda item: (item[1], item[0]))
        bound = self.config.velocity_ratio_bound
        candidates: list[tuple[int, int]] = []
        for i, (address_a, velocity_a) in enumerate(ranked):
            ceiling = velocity_a * bound
            for address_b, velocity_b in ranked[i + 1 :]:
                if velocity_b > ceiling:
                    break
                candidates.append((address_a, address_b))
        return candidates

    # -- stage 3 -------------------------------------------------------

    def _eliminate(self, a: int, b: int, velocity_a: float, velocity_b: float) -> bool:
        """Interleaved monotonic bounds test; all rounds must pass.

        Besides pure monotonicity, the bounds test checks *velocity
        consistency*: when two addresses share one counter, probing them
        alternately makes each address's own samples advance at the
        combined rate ``velocity_a + velocity_b`` (every probe to either
        address ticks the shared counter).  Two independent counters that
        happen to be phase-aligned pass plain monotonicity, but each
        address still advances at its own solo rate — this check is what
        keeps MIDAR's false-positive rate negligible at scale.
        """
        expected_stride = velocity_a + velocity_b
        tolerance = 0.8 + 0.05 * expected_stride
        for _ in range(self.config.elimination_rounds):
            interleaved: list[int] = []
            per_address: dict[int, list[int]] = {a: [], b: []}
            total_advance = 0
            for _ in range(self.config.elimination_train):
                for address in (a, b):
                    sample = self._responder.probe(address)
                    self.probes_sent += 1
                    if sample is None:
                        return False
                    # Incremental bounds check: abort the train as soon
                    # as monotonicity is violated (most non-alias pairs
                    # fail within the first few probes).
                    if interleaved:
                        step = (sample - interleaved[-1]) % IPID_MODULUS
                        if step == 0:
                            return False
                        total_advance += step
                        if total_advance >= IPID_MODULUS:
                            return False
                    interleaved.append(sample)
                    per_address[address].append(sample)
            for samples in per_address.values():
                stride = velocity_estimate(samples)
                if stride is None or abs(stride - expected_stride) > tolerance:
                    return False
        return True

    # -- pipeline ------------------------------------------------------

    def resolve(self, addresses: list[int]) -> AliasSets:
        """Group ``addresses`` into alias sets."""
        probes_before = self.probes_sent
        velocities = self._estimate(sorted(set(addresses)))
        union_find = UnionFind()
        for address in velocities:
            union_find.add(address)
        for pair in self._accepted_pairs:
            if pair[0] in velocities and pair[1] in velocities:
                union_find.union(*pair)
        for a, b in self._sieve(velocities):
            pair = (a, b) if a < b else (b, a)
            if pair in self._rejected_pairs or pair in self._accepted_pairs:
                # Verdict cached from an earlier refresh: no re-probing.
                self._obs.count("midar.pair_cache_hits")
                continue
            # Corroboration shortcut: if already merged transitively,
            # skip the probes (MIDAR does the same to bound probing).
            if union_find.find(a) == union_find.find(b):
                continue
            self._obs.count("midar.pairs_probed")
            if self._eliminate(a, b, velocities[a], velocities[b]):
                # Chaos layer: congestion can break an elimination train
                # and turn a true alias pair into a (cached!) rejection.
                if self._faults is not None and self._faults.alias_false_negative():
                    self._rejected_pairs.add(pair)
                    self._obs.count("midar.fault_false_negatives")
                    continue
                union_find.union(a, b)
                self._accepted_pairs.add(pair)
                self._obs.count("midar.pairs_accepted")
            else:
                self._rejected_pairs.add(pair)
        self._obs.count("midar.probes_sent", self.probes_sent - probes_before)
        result = AliasSets.from_groups(union_find.groups())
        self._obs.emit(
            "midar.resolve",
            addresses=len(addresses),
            usable=len(velocities),
            alias_sets=len(result),
            probes=self.probes_sent - probes_before,
        )
        return result


def repair_ip_to_asn(
    alias_sets: AliasSets, ip_to_asn: dict[int, int | None]
) -> dict[int, int | None]:
    """Majority-vote repair of IP-to-ASN conflicts within alias sets.

    Interfaces of one router must belong to one operator; when the
    longest-prefix mapping disagrees inside an alias set (shared
    point-to-point subnets), every member is reassigned to the ASN held
    by the majority of members, as proposed by Chang et al. and adopted
    in Section 4.1.  Ties keep the original mapping.
    """
    repaired = dict(ip_to_asn)
    for alias_set in alias_sets.sets:
        votes: dict[int, int] = {}
        for address in alias_set:
            asn = ip_to_asn.get(address)
            if asn is not None:
                votes[asn] = votes.get(asn, 0) + 1
        if len(votes) <= 1:
            continue
        ranked = sorted(votes.items(), key=lambda item: (-item[1], item[0]))
        if len(ranked) > 1 and ranked[0][1] == ranked[1][1]:
            continue  # tie: no repair
        majority = ranked[0][0]
        for address in alias_set:
            if ip_to_asn.get(address) is not None:
                repaired[address] = majority
    return repaired
